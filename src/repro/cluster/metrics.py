"""Cluster metrics: the coordinator's ledger.

The latency primitives (:class:`LatencySeries`, the exact nearest-rank
rule) live in :mod:`repro.control.signals` and are re-exported here for
backward compatibility — this ledger and ``repro.serve.metrics`` both
emit the unified envelope from :mod:`repro.control.envelope`, so there
is exactly one percentile implementation and one snapshot shape.

:class:`ClusterMetrics` is the coordinator-side ledger: per-request-type
admission/latency accounting, per-worker fresh-verification load (the
input :class:`~repro.cluster.placement.HotSplit` rebalances on),
epoch/reuse counters plus per-epoch wall-clock and coalesced-batch
sizes, reshard history (keys moved, cache entries migrated), and the
verdict-parity self-check tallies the CI cluster smoke job gates on.
``snapshot()`` emits a schema-versioned JSON document.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.control.envelope import TypeMetrics, envelope, placement_section
from repro.control.signals import PERCENTILES, LatencySeries

__all__ = [
    "ClusterMetrics",
    "LatencySeries",
    "PERCENTILES",
    "SCHEMA",
    "SCHEMA_VERSION",
]

SCHEMA = "repro.cluster/metrics"
#: version 4 added the durability records: ``replacements`` (rolling
#: worker replacement) and ``recoveries`` (journal replay on restart)
#: in the extra section, plus the Cluster-level ``journal`` section
#: when a write-ahead journal is configured.  Version 3 moved onto the
#: unified envelope (``repro.control``): the ``requests`` records
#: gained ``dropped``/``throughput_rps``/``queue_delay``/
#: ``service_time``, ``epochs`` gained per-epoch ``wall`` and
#: ``coalesced_batches`` stats, ``placement`` gained the canonical
#: ``load`` map (``events_per_worker`` stays as a deprecated alias),
#: and a ``control`` section carries the controller snapshot when the
#: control plane is enabled.  Version 2 added the per-worker
#: ``workers`` section and ``respawns``.
SCHEMA_VERSION = 4

# kept importable under the old private name for callers that reached in
_TypeMetrics = TypeMetrics


class ClusterMetrics:
    """The cluster coordinator's service-wide ledger."""

    def __init__(self) -> None:
        self.started = time.perf_counter()
        self._types: Dict[str, TypeMetrics] = {}
        # the epoch pipeline
        self.epochs = 0
        self.events = 0
        self.verified = 0
        self.reused = 0
        self.violations = 0
        self.deferred = 0
        self.probes = 0
        self.probe_violations = 0
        #: churn requests that shared an epoch sequence with at least
        #: one other request (epoch pipelining's coalescing win)
        self.coalesced_requests = 0
        #: coordinator-side wall clock per epoch drive
        self.epoch_wall = LatencySeries()
        #: sizes of the coalesced churn groups (first epochs only)
        self.batch_sizes: List[int] = []
        # placement
        self.worker_events: Dict[int, int] = {}
        self.reshards: List[Dict[str, object]] = []
        # per-worker streaming-slice execution
        self.slice_latency: Dict[int, LatencySeries] = {}
        self.slice_events: Dict[int, int] = {}
        self.backfilled: Dict[int, int] = {}
        # failure tolerance
        self.respawns: List[Dict[str, object]] = []
        # durability: planned drain-and-respawn of live workers, and
        # journal replays a restarted coordinator ran
        self.replacements: List[Dict[str, object]] = []
        self.recoveries: List[Dict[str, object]] = []
        # verdict-parity self-checks (CI gates on failed == 0)
        self.parity_checked = 0
        self.parity_failed = 0
        #: the controller, when the control plane is enabled (set by
        #: the Cluster so ``snapshot()`` can embed its decision log)
        self.control = None

    def type_metrics(self, kind: str) -> TypeMetrics:
        return self._types.setdefault(kind, TypeMetrics())

    # -- admission ----------------------------------------------------------

    def admit(self, kind: str) -> None:
        self.type_metrics(kind).admitted += 1

    def reject(self, kind: str) -> None:
        self.type_metrics(kind).rejected += 1

    def shed(self, kind: str) -> None:
        self.type_metrics(kind).shed += 1

    def complete(
        self,
        kind: str,
        latency: float,
        queue_delay: "float | None" = None,
        service: "float | None" = None,
    ) -> None:
        self.type_metrics(kind).note_complete(latency, queue_delay, service)

    # -- the epoch pipeline -------------------------------------------------

    def note_epoch(self, report, *, coalesced: int = 0) -> None:
        """Absorb one :class:`~repro.audit.events.EpochReport`.
        ``coalesced`` is how many churn requests this epoch served at
        once (0 for epochs that are not a group's first)."""
        self.epochs += 1
        self.events += len(report.events)
        self.verified += report.verified
        self.reused += report.reused
        self.violations += len(report.violations())
        self.deferred += len(report.deferred)
        if report.wall_seconds:
            self.epoch_wall.add(report.wall_seconds)
        if coalesced > 0:
            self.batch_sizes.append(coalesced)
        if coalesced > 1:
            self.coalesced_requests += coalesced

    def note_slice(self, stats) -> None:
        """Absorb one :class:`~repro.audit.events.SliceStats`."""
        series = self.slice_latency.setdefault(
            stats.worker, LatencySeries()
        )
        series.add(stats.wall_seconds)
        self.slice_events[stats.worker] = (
            self.slice_events.get(stats.worker, 0) + stats.events
        )
        if stats.backfilled:
            self.backfilled[stats.worker] = (
                self.backfilled.get(stats.worker, 0) + stats.backfilled
            )

    def note_respawn(
        self, *, worker: int, reason: str, installed: int
    ) -> None:
        self.respawns.append({
            "worker": worker,
            "reason": reason,
            "installed_cache_entries": installed,
        })

    def note_replacement(self, *, worker: int, installed: int) -> None:
        self.replacements.append({
            "worker": worker,
            "installed_cache_entries": installed,
        })

    def note_recovery(
        self,
        *,
        records: int,
        truncated: int,
        committed: int,
        epoch: int,
        adopted: int,
        spawned: int,
    ) -> None:
        self.recoveries.append({
            "replayed_records": records,
            "truncated_records": truncated,
            "committed_requests": committed,
            "epoch": epoch,
            "adopted_workers": adopted,
            "spawned_workers": spawned,
        })

    def note_probes(self, events) -> None:
        self.probes += len(events)
        self.probe_violations += sum(1 for e in events if e.violation_found())

    def note_worker(self, worker: int, fresh: int) -> None:
        self.worker_events[worker] = (
            self.worker_events.get(worker, 0) + fresh
        )

    def note_reshard(
        self,
        *,
        moved: int,
        tracked: int,
        migrated_entries: int,
        placement: Dict[str, object],
    ) -> None:
        self.reshards.append({
            "moved_pairs": moved,
            "tracked_pairs": tracked,
            "moved_fraction": (moved / tracked) if tracked else 0.0,
            "migrated_cache_entries": migrated_entries,
            "placement": placement,
        })

    def note_parity(self, checked: int, failed: int) -> None:
        self.parity_checked += checked
        self.parity_failed += failed

    # -- reporting ----------------------------------------------------------

    def epochs_section(self) -> Dict[str, object]:
        sizes = self.batch_sizes
        return {
            "count": self.epochs,
            "events": self.events,
            "verified": self.verified,
            "reused": self.reused,
            "violations": self.violations,
            "deferred": self.deferred,
            "coalesced_requests": self.coalesced_requests,
            "wall": self.epoch_wall.summary(),
            "coalesced_batches": {
                "count": len(sizes),
                "max_size": max(sizes) if sizes else None,
                "mean_size": (sum(sizes) / len(sizes)) if sizes else None,
            },
        }

    def snapshot(self, placement=None, admission=None) -> Dict[str, object]:
        """The schema-versioned, JSON-serializable metrics document."""
        window = time.perf_counter() - self.started
        spec = placement.describe() if placement is not None else None
        placed = placement_section(
            spec=spec, load=self.worker_events, reshards=self.reshards
        )
        # deprecated alias of placement.load, kept one schema version
        placed["events_per_worker"] = placed["load"]
        return envelope(
            schema=SCHEMA,
            schema_version=SCHEMA_VERSION,
            window_seconds=window,
            types=self._types,
            epochs=self.epochs_section(),
            probes={
                "count": self.probes,
                "violations": self.probe_violations,
            },
            placement=placed,
            admission=(
                admission.describe() if admission is not None else None
            ),
            control=(
                self.control.snapshot() if self.control is not None else None
            ),
            parity={
                "checked": self.parity_checked,
                "failed": self.parity_failed,
            },
            extra={
                "workers": {
                    str(worker): {
                        "slice_events": self.slice_events.get(worker, 0),
                        "backfilled": self.backfilled.get(worker, 0),
                        "slice_latency": series.summary(),
                    }
                    for worker, series in sorted(self.slice_latency.items())
                },
                "respawns": list(self.respawns),
                "replacements": list(self.replacements),
                "recoveries": list(self.recoveries),
            },
        )
