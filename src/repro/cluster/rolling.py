"""Rolling worker replacement: drain-and-respawn, one worker per step.

Long-lived clusters eventually want every worker process recycled —
leak hygiene, kernel upgrades, a new binary — without taking the
service down or perturbing the evidence trail.  :class:`RollingReplacer`
walks the fleet one worker per step (intended cadence: one per served
request/epoch), calling
:meth:`~repro.cluster.cluster.Cluster.replace_worker` which drains the
worker through the shared bootstrap path (it donates its own streamed
snapshot, so replica and planning state carry over exactly) and
re-installs its owned cache entries from the coordinator's mirror —
the trail stays byte-identical to a run that never replaced anything.

The walk respects the failure budget: a step taken right after an
*unplanned* respawn (a real worker death consumed
``spec.max_failures_per_epoch`` headroom) is deferred, so planned
replacement never stacks on top of live failure recovery.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

__all__ = ["RollingReplacer"]


class RollingReplacer:
    """Replace every worker of ``cluster``, one :meth:`step` at a time.

    ``workers`` narrows the walk to specific indices (default: the
    whole fleet at construction time, in index order).  ``replaced``
    records the completed replacements; ``deferred`` counts steps that
    yielded to unplanned failure recovery.
    """

    def __init__(
        self, cluster, *, workers: Optional[Sequence[int]] = None
    ) -> None:
        self.cluster = cluster
        self.queue: Deque[int] = deque(
            sorted(workers) if workers is not None
            else range(cluster.workers)
        )
        self.replaced: List[int] = []
        self.deferred = 0
        self._respawns_seen = len(cluster.metrics.respawns)

    @property
    def pending(self) -> int:
        return len(self.queue)

    def done(self) -> bool:
        return not self.queue

    def step(self) -> Optional[int]:
        """Replace the next queued worker; returns its index, or
        ``None`` when the walk is done or this step deferred to an
        unplanned respawn that just consumed the failure budget."""
        if not self.queue:
            return None
        respawns = len(self.cluster.metrics.respawns)
        if respawns > self._respawns_seen:
            self._respawns_seen = respawns
            self.deferred += 1
            return None
        index = self.queue.popleft()
        self.cluster.replace_worker(index)
        self.replaced.append(index)
        return index

    def run(self) -> List[int]:
        """Drive :meth:`step` until the walk completes (deferred steps
        retry immediately — outside a request loop there is no epoch
        cadence to wait for)."""
        while self.queue:
            if self.step() is None and self.queue:
                # the deferral consumed the observed-respawn delta;
                # the next step proceeds
                continue
        return list(self.replaced)
