"""The declarative cluster description: :class:`ClusterSpec`.

A spec is everything needed to stand up — or *re*-stand up — a
verification cluster: how to build the network substrate, which promise
policies to register, how the policy space is placed across workers,
what the admission plane does under load, and how workers are isolated
(``"process"`` for real OS processes over multiprocessing pipes,
``"inline"`` for same-process workers speaking the identical command
protocol — the deterministic configuration tests and benchmarks pin
against).

The same spec also builds the *unsharded reference*
(:meth:`ClusterSpec.build_monitor`): one plain
:class:`~repro.audit.monitor.Monitor` over an identically constructed
network — the byte-parity oracle every cluster trail is checked
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Tuple

from repro.audit.monitor import Monitor
from repro.audit.store import EvidenceStore
from repro.crypto.keystore import KeyStore

from repro.cluster.admission import AdmissionPolicy, make_admission
from repro.cluster.placement import Placement, make_placement

__all__ = ["ChaosSpec", "ClusterSpec", "PolicySpec"]


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic failure injection: one worker fails at one epoch.

    ``after`` counts the worker's *streamed* slice events before it
    fails — ``0`` dies right after planning (nothing streamed), ``2``
    dies with two events already folded (the rest is backfilled).
    ``mode="kill"`` dies instantly (SIGKILL on the process transport, a
    :class:`~repro.cluster.worker.WorkerDied` unwind inline);
    ``mode="hang"`` sleeps ``hang_seconds`` mid-slice so only the
    coordinator's deadline/heartbeat detector can reap it — process
    transport only (an inline worker would hang the coordinator too).
    """

    worker: int
    epoch: int
    mode: str = "kill"  # "kill" | "hang"
    after: int = 0
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.mode not in ("kill", "hang"):
            raise ValueError(
                f"chaos mode must be 'kill' or 'hang', got {self.mode!r}"
            )
        if self.worker < 0 or self.epoch < 1 or self.after < 0:
            raise ValueError(
                "chaos needs worker >= 0, epoch >= 1 and after >= 0"
            )


@dataclass(frozen=True)
class PolicySpec:
    """One promise policy, as data: ``monitor.policy(asn, spec, **options)``.

    For the process transport, prefer picklable ingredients: promise
    templates and module-level factories for ``spec``, and *named*
    choosers (:mod:`repro.audit.choosers`) in ``options`` — live
    closures only work because workers fork from the coordinator, and
    they cannot survive a worker restart on a spawn-based platform.
    """

    asn: str
    spec: object
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))

    def install(self, monitor: Monitor) -> None:
        monitor.policy(self.asn, self.spec, **self.options)


@dataclass(frozen=True)
class ClusterSpec:
    """A declarative description of one verification cluster.

    ``network`` is a zero-argument factory building the
    :class:`~repro.bgp.network.BGPNetwork` substrate — called once per
    worker (each worker owns a fully independent replica) and once for
    the reference monitor.  It must be deterministic: replicas stay in
    lockstep because they apply identical churn to identical networks.

    ``placement`` is a :class:`~repro.cluster.placement.Placement`, a
    strategy name (``"static"``/``"consistent"``/``"hotsplit"``, built
    over ``workers`` shard slots), or ``None`` (static).  ``admission``
    likewise resolves through
    :func:`~repro.cluster.admission.make_admission`.
    """

    network: Callable[[], object]
    policies: Tuple[PolicySpec, ...] = ()
    workers: int = 2
    placement: object = None
    admission: object = None
    transport: str = "process"  # "process" | "inline"
    queue_depth: int = 64
    rng_seed: object = 2011
    key_bits: int = 512
    max_work: Optional[int] = None
    #: eviction bound of the coordinator's folded trail
    max_events: Optional[int] = None
    #: eviction bound of each worker's *own* trail (workers re-record
    #: their slice locally for the distributed-query path; a long-lived
    #: worker should bound it — violations stay pinned either way)
    worker_max_events: Optional[int] = None
    parity_sample: int = 0
    #: per-epoch wall-clock budget: a worker that has not returned its
    #: epoch summary this many seconds after the epoch command is posted
    #: is declared dead, killed, and respawned (``None`` disables)
    epoch_deadline: Optional[float] = None
    #: when > 0, workers emit :class:`~repro.cluster.requests.Heartbeat`
    #: messages between slice chunks; silence longer than five intervals
    #: reaps the worker even before the epoch deadline
    heartbeat_interval: float = 0.0
    #: more than this many worker deaths in a single epoch is a loud
    #: :class:`~repro.cluster.cluster.ClusterError` instead of a respawn
    max_failures_per_epoch: int = 1
    #: how many queued churn requests may ride a single epoch sequence
    coalesce_max: int = 16
    #: owned slice events per streamed chunk (1 = stream every event)
    stream_batch: int = 8
    #: deterministic failure injection (tests / CI chaos gate)
    chaos: Optional[ChaosSpec] = None
    #: the self-regulating control plane: ``None`` (off), ``True``
    #: (default :class:`~repro.control.controller.ControlPolicy`), or a
    #: ``ControlPolicy`` instance.  When set, the coordinator runs a
    #: :class:`~repro.control.controller.Controller` fed from epoch
    #: outcomes, heartbeat backlogs and admission-queue depth, ticked
    #: after every ``pump()`` — its decisions drive the same
    #: ``reshard``/``rebalance`` seams the CLI uses, so control stays
    #: inside the byte-parity oracle
    controller: object = None
    #: accountability ledger: ``None`` (off), ``True`` (default
    #: :class:`~repro.ledger.levels.LedgerPolicy`), or a ``LedgerPolicy``
    #: instance.  When set, the coordinator runs a
    #: :class:`~repro.ledger.ledger.TrustLedger` over the folded central
    #: trail and ships its settled trust snapshot to every worker with
    #: each epoch command; workers install a matching
    #: :class:`~repro.ledger.feedback.VerificationIntensity`, so the
    #: co-plan (and with it round allocation) stays identical everywhere
    ledger: object = None
    #: causal tracing (:mod:`repro.obs`): spans and events on the
    #: coordinator and every worker.  Timing is trace metadata only —
    #: the evidence trail is byte-identical either way (pinned in
    #: ``tests/test_obs.py``)
    trace: bool = True
    #: where the coordinator's flight recorder dumps JSONL on a worker
    #: reap, a parity failure or a :class:`ClusterError` (``None`` =
    #: record but never dump)
    flight_dump: Optional[str] = None
    #: directory of the coordinator's write-ahead journal
    #: (:mod:`repro.journal`): ``None`` disables durability; a path
    #: makes every fold seam durable and lets a restarted coordinator
    #: ``recover()`` to the last commit boundary
    journal: Optional[str] = None
    #: journal appends between forced fsyncs (commit boundaries always
    #: fsync regardless)
    journal_fsync_batch: int = 64
    #: records per journal segment before rotation
    journal_segment_records: int = 4096
    #: checkpoint (full state capture + segment compaction) every N
    #: commits; 0 disables checkpointing
    journal_checkpoint_every: int = 0
    #: bytes per streamed bootstrap-snapshot chunk (the pipe frames a
    #: grow/respawn donor replica ships in, replacing the old
    #: one-message pickle)
    snapshot_chunk_bytes: int = 262144

    def __post_init__(self) -> None:
        if self.transport not in ("process", "inline"):
            raise ValueError(
                f"transport must be 'process' or 'inline', "
                f"got {self.transport!r}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.parity_sample < 0:
            raise ValueError("parity_sample must be >= 0")
        if self.epoch_deadline is not None and self.epoch_deadline <= 0:
            raise ValueError("epoch_deadline must be positive or None")
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.max_failures_per_epoch < 0:
            raise ValueError("max_failures_per_epoch must be >= 0")
        if self.coalesce_max < 1:
            raise ValueError("coalesce_max must be >= 1")
        if self.stream_batch < 1:
            raise ValueError("stream_batch must be >= 1")
        if self.journal_fsync_batch < 1:
            raise ValueError("journal_fsync_batch must be >= 1")
        if self.journal_segment_records < 2:
            raise ValueError("journal_segment_records must be >= 2")
        if self.journal_checkpoint_every < 0:
            raise ValueError("journal_checkpoint_every must be >= 0")
        if self.snapshot_chunk_bytes < 1:
            raise ValueError("snapshot_chunk_bytes must be >= 1")
        if (
            self.chaos is not None
            and self.chaos.mode == "hang"
            and self.transport != "process"
        ):
            raise ValueError(
                "chaos mode 'hang' requires the process transport "
                "(an inline worker would hang the coordinator too)"
            )
        object.__setattr__(self, "policies", tuple(self.policies))
        if self.controller is True:
            from repro.control.controller import ControlPolicy

            object.__setattr__(self, "controller", ControlPolicy())
        if self.ledger is True:
            from repro.ledger.levels import LedgerPolicy

            object.__setattr__(self, "ledger", LedgerPolicy())

    # -- resolution ----------------------------------------------------------

    def resolved_placement(self) -> Placement:
        return make_placement(self.placement, self.workers)

    def resolved_admission(self) -> AdmissionPolicy:
        return make_admission(self.admission)

    def with_transport(self, transport: str) -> "ClusterSpec":
        return replace(self, transport=transport)

    # -- construction --------------------------------------------------------

    def build(self):
        """Build (and start) the :class:`~repro.cluster.cluster.Cluster`."""
        from repro.cluster.cluster import Cluster

        return Cluster(self)

    def build_keystore(self) -> KeyStore:
        """A keystore identical to every worker's (deterministic keys
        from the shared seed)."""
        return KeyStore(seed=self.rng_seed, key_bits=self.key_bits)

    def build_monitor(self, *, pair_filter=None) -> Monitor:
        """The unsharded reference: one plain monitor, same network,
        same policies, same seeds — the parity oracle.  With a
        ``ledger`` configured, the monitor gets its own
        :class:`~repro.ledger.ledger.TrustLedger` over its own store
        (exposed as ``monitor.ledger``) plus a bound
        :class:`~repro.ledger.feedback.VerificationIntensity`, settling
        at the same plan-time boundary the cluster coordinator settles
        at — so the reference plans with the same trust snapshot as the
        co-planning workers."""
        keystore = self.build_keystore()
        store = EvidenceStore(keystore, max_events=self.max_events)
        intensity = None
        ledger = None
        if self.ledger is not None:
            from repro.ledger import TrustLedger, VerificationIntensity

            ledger = TrustLedger(self.ledger).attach(store)
            intensity = VerificationIntensity(
                self.ledger, seed=self.rng_seed, ledger=ledger
            )
        monitor = Monitor(
            keystore,
            rng_seed=self.rng_seed,
            max_work_per_epoch=self.max_work,
            store=store,
            pair_filter=pair_filter,
            intensity=intensity,
        ).attach(self.network())
        monitor.ledger = ledger
        for policy in self.policies:
            policy.install(monitor)
        return monitor
