"""``repro.cluster``: placement-driven multi-process verification.

The serve layer (:mod:`repro.serve`) shards *execution* under one
process; this package distributes the whole audit plane.  A declarative
:class:`~repro.cluster.spec.ClusterSpec` builds a
:class:`~repro.cluster.cluster.Cluster` of fully independent
:class:`~repro.audit.monitor.Monitor` workers — one process, network
replica, keystore and evidence store each — behind a real IPC admission
plane, with three pluggable seams:

* :class:`~repro.cluster.placement.Placement` — who owns which slice of
  the (AS, prefix) policy space: :class:`~repro.cluster.placement.StaticHash`
  (the classic modulo), :class:`~repro.cluster.placement.ConsistentHash`
  (virtual nodes, cheap online resharding) and
  :class:`~repro.cluster.placement.HotSplit` (splits hot shards from the
  observed load, between epochs);
* :class:`~repro.cluster.admission.AdmissionPolicy` — reject at the
  door, deadline-based shedding, or per-request-type priorities;
* transport — ``"process"`` workers over multiprocessing pipes, or
  ``"inline"`` workers speaking the identical protocol in-process.

Workers **co-plan** every epoch deterministically, execute only their
slice, and *stream* completed positions back; the coordinator folds the
streams into plan order (:mod:`repro.cluster.fold`), so the trail is
byte-identical to an unsharded monitor — including across an online
:meth:`~repro.cluster.cluster.Cluster.reshard` that migrates ownership
and commitment-cache entries mid-run, and across **worker deaths**: a
worker that crashes, closes its pipe or misses the epoch deadline is
backfilled by a buddy and respawned from a live snapshot
(:class:`~repro.cluster.spec.ChaosSpec` injects such deaths
deterministically).  Adjacent queued churn requests coalesce into one
epoch sequence (``coalesce_max``).

With ``ClusterSpec.journal`` set, the coordinator write-ahead-journals
every fold seam (:mod:`repro.journal`): a coordinator killed mid-run
restarts at the last commit boundary with a byte-identical trail, and
:class:`~repro.cluster.rolling.RollingReplacer` recycles live workers
one per step through the same bootstrap path.

Run ``python -m repro.cluster`` for the cluster CLI (drives a churn
workload through N workers with an optional mid-run reshard and checks
parity against the unsharded reference).
"""

from repro.cluster.admission import (
    AdmissionPolicy,
    DeadlineShed,
    PriorityAdmission,
    RejectAtDoor,
    ShedError,
    make_admission,
)
from repro.cluster.cluster import Cluster, ClusterError, EpochOutcome
from repro.cluster.metrics import ClusterMetrics, LatencySeries
from repro.cluster.placement import (
    ConsistentHash,
    HotSplit,
    Placement,
    StaticHash,
    make_placement,
    moved_pairs,
    pair_key,
)
from repro.cluster.requests import (
    AdjudicateRequest,
    AdmissionError,
    AuditProbe,
    ChurnRequest,
    Completion,
    QueryRequest,
    SnapshotChunk,
)
from repro.cluster.rolling import RollingReplacer
from repro.cluster.spec import ChaosSpec, ClusterSpec, PolicySpec

__all__ = [
    "AdjudicateRequest",
    "ChaosSpec",
    "AdmissionError",
    "AdmissionPolicy",
    "AuditProbe",
    "ChurnRequest",
    "Cluster",
    "ClusterError",
    "ClusterMetrics",
    "ClusterSpec",
    "Completion",
    "ConsistentHash",
    "DeadlineShed",
    "EpochOutcome",
    "HotSplit",
    "LatencySeries",
    "Placement",
    "PolicySpec",
    "PriorityAdmission",
    "QueryRequest",
    "RejectAtDoor",
    "RollingReplacer",
    "ShedError",
    "SnapshotChunk",
    "StaticHash",
    "make_admission",
    "make_placement",
    "moved_pairs",
    "pair_key",
]
