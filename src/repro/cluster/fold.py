"""Plan-order slice folding: the coordinator's reorder buffer.

Workers stream their slice events as owned positions complete, so the
coordinator sees an arbitrary interleaving of per-worker streams — each
worker's own events arrive in its slice order, but positions across
workers interleave freely.  :class:`SliceFold` restores the single
deterministic order that matters: the *plan order* the unsharded
reference monitor would have recorded.  Events are buffered by plan
position and released as the contiguous prefix extends; whatever the
interleaving (including backfilled positions arriving long after their
successors), the released sequence is identical — the property the
Hypothesis suite drives directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["FoldError", "SliceFold"]


class FoldError(RuntimeError):
    """A slice stream violated the fold's invariants (duplicate claim,
    out-of-range position)."""


class SliceFold:
    """Reorder buffer keyed by plan position.

    ``add(position, event)`` buffers one completed position and returns
    the events newly released into plan order (possibly empty, possibly
    several — filling a hole releases everything buffered behind it).
    A position claimed twice is a :class:`FoldError`: exactly one worker
    owns each plan entry, so a duplicate means the placement invariant
    broke.
    """

    def __init__(self, entries: Optional[int] = None):
        self._entries = entries
        self._buffer: Dict[int, object] = {}
        self._claimed: set = set()
        self._next = 0

    def set_entries(self, entries: int) -> None:
        """Pin the plan size once the first plan header arrives."""
        if self._entries is not None and self._entries != entries:
            raise FoldError(
                f"plan size changed: {self._entries} != {entries}"
            )
        self._entries = entries

    @property
    def entries(self) -> Optional[int]:
        return self._entries

    @property
    def received(self) -> int:
        """Positions claimed so far (released or still buffered)."""
        return len(self._claimed)

    @property
    def released(self) -> int:
        """Length of the contiguous prefix already released."""
        return self._next

    def add(self, position: int, event: object) -> List[object]:
        if position < 0 or (
            self._entries is not None and position >= self._entries
        ):
            raise FoldError(
                f"position {position} outside plan of {self._entries}"
            )
        if position in self._claimed:
            raise FoldError(f"position {position} claimed twice")
        self._claimed.add(position)
        self._buffer[position] = event
        ready: List[object] = []
        while self._next in self._buffer:
            ready.append(self._buffer.pop(self._next))
            self._next += 1
        return ready

    def add_many(
        self, pairs: Iterable[Tuple[int, object]]
    ) -> List[object]:
        ready: List[object] = []
        for position, event in pairs:
            ready.extend(self.add(position, event))
        return ready

    def missing(self) -> List[int]:
        """Positions never claimed, in plan order.  Requires the plan
        size (a plan header must have arrived)."""
        if self._entries is None:
            raise FoldError("plan size unknown; no plan header folded")
        return [
            p for p in range(self._entries) if p not in self._claimed
        ]

    def complete(self) -> bool:
        return (
            self._entries is not None
            and self._next == self._entries
            and not self._buffer
        )

    def progress(self) -> Dict[str, object]:
        """A diagnostic summary for fold-failure error messages and the
        flight recorder: how far the fold got and where it stalled."""
        return {
            "entries": self._entries,
            "received": len(self._claimed),
            "released": self._next,
            "buffered": sorted(self._buffer),
            "stalled_at": (
                self._next
                if self._entries is not None
                and self._next < self._entries
                else None
            ),
        }
