"""``python -m repro.obs`` — render and compare trace dumps.

Three subcommands over flight-recorder JSONL dumps (or any file of
trace records, one JSON object per line).  ``DUMP`` may also be a
flight-recorder *dump directory* — every ``*.jsonl`` inside is read in
rotation (name) order:

* ``timeline DUMP`` — per-epoch span timeline; open spans (a crash's
  in-flight work) are flagged.  ``--require-reaped W`` makes the exit
  code a gate: fail unless the dump contains worker *W*'s last open
  span (CI uses this to prove a SIGKILL left forensics behind).
* ``critical-path DUMP`` — per epoch, the dominant stage and dominant
  worker by summed stage wall.
* ``diff A B`` — per-stage wall totals of B against A.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs import timeline as tl
from repro.util.cli import (
    EXIT_FAILURE,
    EXIT_OK,
    envelope,
    fail,
    usage_error,
    write_json,
)

SCHEMA = "repro.obs/analysis"
SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="render timelines, critical paths and diffs from "
        "repro trace dumps",
    )
    sub = parser.add_subparsers(dest="command")

    timeline = sub.add_parser(
        "timeline", help="per-epoch span timeline of one dump"
    )
    timeline.add_argument("dump", help="JSONL trace dump (or dump "
                          "directory) to render")
    timeline.add_argument(
        "--require-reaped", type=int, metavar="WORKER", default=None,
        help="exit 1 unless the dump holds this worker's last open "
        "(in-flight) span — the CI chaos gate",
    )
    timeline.add_argument(
        "--json", metavar="PATH",
        help="write the parsed timeline document here",
    )

    critical = sub.add_parser(
        "critical-path",
        help="dominant stage and worker per epoch",
    )
    critical.add_argument("dump", help="JSONL trace dump to analyze")
    critical.add_argument(
        "--json", metavar="PATH",
        help="write the per-epoch critical-path document here",
    )

    diff = sub.add_parser(
        "diff", help="per-stage wall totals of trace B against trace A"
    )
    diff.add_argument("a", help="baseline JSONL trace dump")
    diff.add_argument("b", help="candidate JSONL trace dump")
    diff.add_argument(
        "--json", metavar="PATH",
        help="write the per-stage delta table here",
    )
    return parser


def _load(path: str):
    try:
        return tl.load_records(path)
    except OSError as exc:
        return usage_error(f"cannot read trace dump {path}: {exc}")
    except ValueError as exc:
        return usage_error(f"{path} is not a JSONL trace dump: {exc}")


def _cmd_timeline(args) -> int:
    records = _load(args.dump)
    if isinstance(records, int):
        return records
    for line in tl.render_timeline(records):
        print(line)
    status = EXIT_OK
    if args.require_reaped is not None:
        held = tl.open_spans(records, worker=args.require_reaped)
        if held:
            span = held[-1]
            print(
                f"[obs] worker {args.require_reaped} in-flight span at "
                f"dump: {span['name']} (epoch {span.get('epoch')}, "
                f"id {span.get('id')}, status {span.get('status')})"
            )
        else:
            status = fail(
                "obs",
                f"dump {args.dump} holds no open span for worker "
                f"{args.require_reaped} — the reap left no in-flight "
                f"forensics",
            )
    if args.json:
        document = envelope(
            SCHEMA,
            SCHEMA_VERSION,
            {
                "analysis": "timeline",
                "dump": args.dump,
                "open_spans": tl.open_spans(records),
                "records": len(records),
            },
        )
        write_json(args.json, document, tag="obs", what="timeline")
    return status


def _cmd_critical_path(args) -> int:
    records = _load(args.dump)
    if isinstance(records, int):
        return records
    path = tl.critical_path(records)
    if not path:
        print("[obs] no closed epoch stages in the dump")
    for epoch in sorted(path):
        entry = path[epoch]
        worker = (
            f", dominant worker w{entry['worker']} "
            f"({entry['worker_seconds'] * 1000.0:.3f}ms)"
            if "worker" in entry
            else ""
        )
        print(
            f"[obs] epoch {epoch}: critical stage {entry['stage']} "
            f"({entry['stage_seconds'] * 1000.0:.3f}ms){worker}"
        )
    if args.json:
        document = envelope(
            SCHEMA,
            SCHEMA_VERSION,
            {
                "analysis": "critical-path",
                "dump": args.dump,
                "epochs": {str(e): path[e] for e in sorted(path)},
            },
        )
        write_json(args.json, document, tag="obs", what="critical path")
    return EXIT_OK


def _cmd_diff(args) -> int:
    records_a = _load(args.a)
    if isinstance(records_a, int):
        return records_a
    records_b = _load(args.b)
    if isinstance(records_b, int):
        return records_b
    rows = tl.diff_traces(records_a, records_b)
    if not rows:
        print("[obs] no closed stages in either trace")
    for row in rows:
        print(
            f"[obs] {row['stage']}: {row['a_seconds'] * 1000.0:.3f}ms "
            f"-> {row['b_seconds'] * 1000.0:.3f}ms "
            f"({row['delta_seconds'] * 1000.0:+.3f}ms)"
        )
    if args.json:
        document = envelope(
            SCHEMA,
            SCHEMA_VERSION,
            {"analysis": "diff", "a": args.a, "b": args.b, "stages": rows},
        )
        write_json(args.json, document, tag="obs", what="trace diff")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return EXIT_FAILURE
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    return _cmd_diff(args)


if __name__ == "__main__":
    sys.exit(main())
