"""The flight recorder: a bounded ring of recent trace records that is
dumped to JSONL when something goes wrong.

Hosts attach their :class:`~repro.obs.trace.TraceContext` so every
closed record lands in the ring, and call :meth:`FlightRecorder.dump`
at their failure sites (worker reap, parity failure, ``ClusterError``).
The dump is one JSON object per line:

* a ``{"kind": "dump", "reason": ...}`` header,
* the ring contents (oldest first),
* every attached context's still-open spans with ``"end": null`` —
  which is how a SIGKILLed worker's last in-flight slice shows up.

``dumped`` records whether any trigger fired, so a CLI's end-of-run
courtesy dump does not overwrite a crash dump.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """A per-process ring buffer of the most recent closed records."""

    def __init__(self, capacity: int = 512) -> None:
        self.ring: deque = deque(maxlen=capacity)
        self.contexts: List[object] = []
        #: (path, reason) per dump written, in order
        self.dumps: List[tuple] = []

    @property
    def dumped(self) -> bool:
        return bool(self.dumps)

    def attach(self, context):
        """Wire a TraceContext's record stream into this ring and
        return the context (so construction chains)."""
        context.recorder = self
        self.contexts.append(context)
        return context

    def record(self, record: Dict[str, object]) -> None:
        self.ring.append(record)

    def open_records(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for context in self.contexts:
            out.extend(context.open_records())
        return out

    def dump(self, path: str, reason: str) -> Dict[str, object]:
        """Write the ring plus open spans to ``path`` as JSONL and
        return the header that was written."""
        records = list(self.ring)
        open_spans = self.open_records()
        header = {
            "kind": "dump",
            "reason": reason,
            "records": len(records),
            "open": len(open_spans),
        }
        with open(path, "w", encoding="utf-8") as handle:
            for record in [header, *records, *open_spans]:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        self.dumps.append((path, reason))
        return header
