"""The flight recorder: a bounded ring of recent trace records that is
dumped to JSONL when something goes wrong.

Hosts attach their :class:`~repro.obs.trace.TraceContext` so every
closed record lands in the ring, and call :meth:`FlightRecorder.dump`
at their failure sites (worker reap, parity failure, ``ClusterError``).
The dump is one JSON object per line:

* a ``{"kind": "dump", "reason": ...}`` header,
* the ring contents (oldest first),
* every attached context's still-open spans with ``"end": null`` —
  which is how a SIGKILLed worker's last in-flight slice shows up.

``dumped`` records whether any trigger fired, so a CLI's end-of-run
courtesy dump does not overwrite a crash dump.

``dump`` also accepts a *directory* (an existing one, or a path with a
trailing separator): each dump then lands as a counter-named
``dump-NNNNNN.jsonl`` inside it and the directory is bounded — past
``max_dumps`` files the oldest are evicted — so a long-lived host can
dump on every incident without unbounded disk growth.  Render a whole
directory at once with ``python -m repro.obs timeline DIR``.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Dict, List

__all__ = ["FlightRecorder"]

_DUMP_NAME = re.compile(r"^dump-(\d{6})\.jsonl$")


class FlightRecorder:
    """A per-process ring buffer of the most recent closed records."""

    def __init__(self, capacity: int = 512, max_dumps: int = 16) -> None:
        self.ring: deque = deque(maxlen=capacity)
        self.contexts: List[object] = []
        self.max_dumps = max_dumps
        #: (path, reason) per dump written, in order
        self.dumps: List[tuple] = []

    @property
    def dumped(self) -> bool:
        return bool(self.dumps)

    def attach(self, context):
        """Wire a TraceContext's record stream into this ring and
        return the context (so construction chains)."""
        context.recorder = self
        self.contexts.append(context)
        return context

    def record(self, record: Dict[str, object]) -> None:
        self.ring.append(record)

    def open_records(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for context in self.contexts:
            out.extend(context.open_records())
        return out

    def _rotate_into(self, directory: str) -> str:
        """Pick the next counter-named dump file in ``directory`` and
        evict the oldest dumps past ``max_dumps``."""
        os.makedirs(directory, exist_ok=True)
        numbered = sorted(
            (int(match.group(1)), name)
            for name in os.listdir(directory)
            for match in [_DUMP_NAME.match(name)]
            if match
        )
        while self.max_dumps > 0 and len(numbered) >= self.max_dumps:
            _, oldest = numbered.pop(0)
            os.remove(os.path.join(directory, oldest))
        counter = numbered[-1][0] + 1 if numbered else 1
        return os.path.join(directory, f"dump-{counter:06d}.jsonl")

    def dump(self, path: str, reason: str) -> Dict[str, object]:
        """Write the ring plus open spans to ``path`` as JSONL and
        return the header that was written.  When ``path`` is a
        directory (exists as one, or ends with a path separator) the
        dump rotates into it as ``dump-NNNNNN.jsonl``."""
        if path.endswith(os.sep) or os.path.isdir(path):
            path = self._rotate_into(path)
        records = list(self.ring)
        open_spans = self.open_records()
        header = {
            "kind": "dump",
            "reason": reason,
            "records": len(records),
            "open": len(open_spans),
        }
        with open(path, "w", encoding="utf-8") as handle:
            for record in [header, *records, *open_spans]:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        self.dumps.append((path, reason))
        return header
