"""Trace analysis: timelines, per-epoch critical paths, trace diffs.

Works over the plain-dict records produced by
:class:`~repro.obs.trace.TraceContext` — either live (a context's
``records``) or loaded from a flight-recorder JSONL dump.  Container
spans (``epoch``, ``group``) frame the timeline; everything else is a
*stage* and is what critical-path attribution sums.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "critical_path",
    "diff_traces",
    "load_records",
    "render_timeline",
    "stage_shares",
]

#: span names that frame other spans rather than doing work themselves
CONTAINER_NAMES = ("epoch", "group")


def load_records(path: str) -> List[Dict[str, object]]:
    """Read a JSONL trace dump (``dump`` header lines are kept — the
    renderer surfaces the dump reason).  A directory reads every
    ``*.jsonl`` inside it, sorted by name — the rotation order of a
    :class:`~repro.obs.recorder.FlightRecorder` dump directory."""
    if os.path.isdir(path):
        records: List[Dict[str, object]] = []
        for name in sorted(os.listdir(path)):
            if name.endswith(".jsonl"):
                records.extend(load_records(os.path.join(path, name)))
        return records
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _spans(records: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    return [r for r in records if r.get("kind") == "span"]


def _closed_stages(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    return [
        r
        for r in _spans(records)
        if r.get("end") is not None and r.get("name") not in CONTAINER_NAMES
    ]


def _duration(record: Dict[str, object]) -> float:
    return float(record["end"]) - float(record["start"])


def stage_shares(records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Fraction of total stage time per stage name, across the whole
    trace — the bench report's attribution summary."""
    totals: Dict[str, float] = {}
    count = 0
    for record in _closed_stages(records):
        totals[str(record["name"])] = (
            totals.get(str(record["name"]), 0.0) + _duration(record)
        )
        count += 1
    total = sum(totals.values())
    shares = {
        name: (seconds / total if total > 0 else 0.0)
        for name, seconds in sorted(totals.items())
    }
    return {
        "spans": count,
        "total_seconds": total,
        "by_stage": shares,
        "seconds_by_stage": dict(sorted(totals.items())),
    }


def critical_path(
    records: Iterable[Dict[str, object]],
) -> Dict[int, Dict[str, object]]:
    """Per epoch: the dominant stage and the dominant worker (by summed
    stage wall).  Epoch-less records are ignored."""
    records = list(records)
    by_epoch: Dict[int, List[Dict[str, object]]] = {}
    for record in _closed_stages(records):
        epoch = record.get("epoch")
        if epoch is not None:
            by_epoch.setdefault(int(epoch), []).append(record)
    walls: Dict[int, float] = {}
    for record in _spans(records):
        if record.get("name") == "epoch" and record.get("end") is not None:
            epoch = record.get("epoch")
            if epoch is not None:
                walls[int(epoch)] = _duration(record)
    out: Dict[int, Dict[str, object]] = {}
    for epoch in sorted(by_epoch):
        stage_totals: Dict[str, float] = {}
        worker_totals: Dict[int, float] = {}
        for record in by_epoch[epoch]:
            stage_totals[str(record["name"])] = (
                stage_totals.get(str(record["name"]), 0.0)
                + _duration(record)
            )
            if record.get("worker") is not None:
                worker = int(record["worker"])
                worker_totals[worker] = (
                    worker_totals.get(worker, 0.0) + _duration(record)
                )
        stage = max(stage_totals, key=lambda n: (stage_totals[n], n))
        entry: Dict[str, object] = {
            "epoch": epoch,
            "stage": stage,
            "stage_seconds": stage_totals[stage],
            "stages": dict(sorted(stage_totals.items())),
        }
        if epoch in walls:
            entry["wall_seconds"] = walls[epoch]
        if worker_totals:
            worker = max(
                worker_totals, key=lambda w: (worker_totals[w], -w)
            )
            entry["worker"] = worker
            entry["worker_seconds"] = worker_totals[worker]
        out[epoch] = entry
    return out


def diff_traces(
    a: Iterable[Dict[str, object]],
    b: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-stage wall totals of trace ``b`` against trace ``a``."""
    totals_a = stage_shares(a)["seconds_by_stage"]
    totals_b = stage_shares(b)["seconds_by_stage"]
    rows = []
    for name in sorted(set(totals_a) | set(totals_b)):
        sec_a = totals_a.get(name, 0.0)
        sec_b = totals_b.get(name, 0.0)
        rows.append(
            {
                "stage": name,
                "a_seconds": sec_a,
                "b_seconds": sec_b,
                "delta_seconds": sec_b - sec_a,
            }
        )
    return rows


def open_spans(
    records: Iterable[Dict[str, object]],
    *,
    worker: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Spans that never closed (``end: null``) — a crash dump's
    in-flight work; optionally only one worker's."""
    found = [r for r in _spans(records) if r.get("end") is None]
    if worker is not None:
        found = [r for r in found if r.get("worker") == worker]
    return found


def _depths(records: Sequence[Dict[str, object]]) -> Dict[str, int]:
    parents = {
        str(r.get("id")): r.get("parent")
        for r in records
        if r.get("id") is not None
    }
    depths: Dict[str, int] = {}

    def depth(span_id) -> int:
        if span_id is None or span_id not in parents:
            return 0
        if span_id in depths:
            return depths[span_id]
        depths[str(span_id)] = 1 + depth(parents[span_id])
        return depths[str(span_id)]

    for span_id in parents:
        depth(span_id)
    return depths


def render_timeline(records: Iterable[Dict[str, object]]) -> List[str]:
    """Human-readable per-epoch timeline lines."""
    records = list(records)
    lines: List[str] = []
    for record in records:
        if record.get("kind") == "dump":
            lines.append(
                f"flight dump: {record.get('reason')} "
                f"({record.get('records')} record(s), "
                f"{record.get('open')} open span(s))"
            )
    timed = [
        r
        for r in records
        if r.get("kind") in ("span", "event") and r.get("start") is not None
    ]
    if not timed:
        lines.append("(no trace records)")
        return lines
    depths = _depths(timed)
    by_epoch: Dict[object, List[Dict[str, object]]] = {}
    for record in timed:
        by_epoch.setdefault(record.get("epoch"), []).append(record)
    epochs = sorted(
        by_epoch, key=lambda e: (e is None, e if e is not None else 0)
    )
    for epoch in epochs:
        group = sorted(by_epoch[epoch], key=lambda r: float(r["start"]))
        base = float(group[0]["start"])
        lines.append(f"epoch {epoch if epoch is not None else '-'}")
        for record in group:
            offset_ms = (float(record["start"]) - base) * 1000.0
            indent = "  " * (1 + depths.get(str(record.get("id")), 0))
            who = (
                f" w{record['worker']}"
                if record.get("worker") is not None
                else ""
            )
            if record.get("kind") == "event":
                lines.append(
                    f"{indent}· +{offset_ms:.3f}ms {record['name']}"
                    f"{who} [{record.get('component')}] {record.get('attrs') or ''}".rstrip()
                )
                continue
            if record.get("end") is None:
                tail = f"OPEN ({record.get('status')})"
            else:
                tail = f"{_duration(record) * 1000.0:.3f}ms"
            lines.append(
                f"{indent}+{offset_ms:.3f}ms {record['name']}{who} "
                f"[{record.get('component')}] {tail} ({record.get('id')})"
            )
    return lines
