"""Deterministic span/event tracing.

A :class:`TraceContext` hands out :class:`Span` objects whose ids are
``"{label}:{counter}"`` — a per-context monotonic counter, so the same
call sequence always produces the same ids and nothing here consumes
randomness.  Spans double as the **one obs timer**: ``begin`` stamps
``start`` and ``finish`` stamps ``end`` even when tracing is disabled,
so hosts derive their ``wall_seconds`` from ``span.duration`` whether
or not records are kept — tracing on/off cannot change any computed
value that reaches the evidence trail (it never could: the trail hashes
no wall-clock data) nor any report field.

Closed spans become plain dict **records** (JSON-ready) appended to the
context's bounded ``records`` deque, forwarded to an attached
:class:`~repro.obs.recorder.FlightRecorder`, and offered to any global
sinks installed via :func:`record_collector` (the bench summary seam).

Worker processes drain their records with :meth:`TraceContext.take_records`
and ship them inside ``EpochSummary.spans``; the coordinator merges
them with :meth:`TraceContext.adopt`, which **re-ids** every record
from its own counter (a respawned worker restarts its counter, so the
shipped ids alone are not unique across incarnations) while preserving
the internal parent structure.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "Stopwatch", "TraceContext", "record_collector"]

#: the one obs clock — every stage wall in the system reads this
CLOCK = time.perf_counter


class Stopwatch:
    """A context-managed interval on the obs clock, for call sites that
    need a bare duration with no span (e.g. per-task walls inside a
    shard worker process, where no TraceContext lives)."""

    __slots__ = ("started", "seconds")

    def __init__(self) -> None:
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started = CLOCK()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = CLOCK() - self.started


class Span:
    """One traced interval.  Mutable: hosts close it, annotate attrs,
    or mark it ``reaped``/``error`` after the fact."""

    __slots__ = (
        "id", "parent", "name", "component", "epoch", "worker",
        "start", "end", "status", "attrs",
    )

    def __init__(
        self,
        *,
        id: str,
        parent: Optional[str],
        name: str,
        component: str,
        epoch: Optional[int] = None,
        worker: Optional[int] = None,
        start: float = 0.0,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.component = component
        self.epoch = epoch
        self.worker = worker
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, object] = attrs or {}

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else CLOCK()
        return end - self.start

    def to_record(self, kind: str = "span") -> Dict[str, object]:
        return {
            "kind": kind,
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "component": self.component,
            "epoch": self.epoch,
            "worker": self.worker,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.id} {self.name} {state}>"


class TraceContext:
    """A per-process span factory and record buffer.

    ``enabled=False`` keeps the timer behaviour (spans are created and
    closed, ``duration`` works) but records nothing — the cheap path
    every host uses when tracing is off.
    """

    #: process-wide extra sinks (see :func:`record_collector`)
    _global_sinks: List[Callable[[Dict[str, object]], None]] = []

    def __init__(
        self,
        label: str = "t",
        *,
        enabled: bool = True,
        keep: int = 4096,
        recorder=None,
    ) -> None:
        self.label = label
        self.enabled = enabled
        self.records: deque = deque(maxlen=keep)
        self.open: Dict[str, Span] = {}
        self.recorder = recorder
        self._counter = 0
        self._stack: List[Span] = []

    # -- ids ------------------------------------------------------------------

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self.label}:{self._counter}"

    # -- span lifecycle -------------------------------------------------------

    def begin(
        self,
        name: str,
        *,
        component: str = "obs",
        epoch: Optional[int] = None,
        worker: Optional[int] = None,
        detached: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span.  Always returns a live Span (the obs timer);
        only registers it for recording when the context is enabled.
        A ``detached`` span parents under the current stack top but is
        not pushed — for concurrent siblings (one slice span per worker
        in flight at once) that close out of order."""
        parent = self._stack[-1].id if (self.enabled and self._stack) else None
        span = Span(
            id=self._next_id(),
            parent=parent,
            name=name,
            component=component,
            epoch=epoch,
            worker=worker,
            start=CLOCK(),
            attrs=attrs,
        )
        if self.enabled:
            self.open[span.id] = span
            if not detached:
                self._stack.append(span)
        return span

    def finish(self, span: Span, status: Optional[str] = None) -> Span:
        """Close a span and record it.  Idempotent: a span already
        closed (e.g. closed early to pin a wall, then re-finished by a
        ``finally``) is not re-recorded."""
        if status is not None:
            span.status = status
        if span.end is not None:
            return span
        span.end = CLOCK()
        if self.enabled and span.id in self.open:
            del self.open[span.id]
            if span in self._stack:
                self._stack.remove(span)
            self._record(span.to_record())
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        component: str = "obs",
        epoch: Optional[int] = None,
        worker: Optional[int] = None,
        **attrs: object,
    ):
        """``with tracer.span("merge", ...) as sp:`` — closes on exit,
        status ``"error"`` if the body raised."""
        sp = self.begin(
            name, component=component, epoch=epoch, worker=worker, **attrs
        )
        try:
            yield sp
        except BaseException:
            self.finish(sp, status="error")
            raise
        self.finish(sp)

    def event(
        self,
        name: str,
        *,
        component: str = "obs",
        epoch: Optional[int] = None,
        worker: Optional[int] = None,
        **attrs: object,
    ) -> None:
        """A zero-duration record (heartbeat, reap, decision, ...)."""
        if not self.enabled:
            return
        now = CLOCK()
        parent = self._stack[-1].id if self._stack else None
        span = Span(
            id=self._next_id(),
            parent=parent,
            name=name,
            component=component,
            epoch=epoch,
            worker=worker,
            start=now,
            attrs=attrs,
        )
        span.end = now
        self._record(span.to_record(kind="event"))

    # -- record plumbing ------------------------------------------------------

    def _record(self, record: Dict[str, object]) -> None:
        self.records.append(record)
        if self.recorder is not None:
            self.recorder.record(record)
        for sink in TraceContext._global_sinks:
            sink(record)

    def take_records(self) -> Tuple[Dict[str, object], ...]:
        """Drain and return the closed records (the worker → coordinator
        shipping path; records are plain dicts, so they pickle)."""
        drained = tuple(self.records)
        self.records.clear()
        return drained

    def open_records(self) -> List[Dict[str, object]]:
        """Serialize every still-open span (``end: null``) — what the
        flight recorder appends to a crash dump."""
        return [
            self.open[key].to_record()
            for key in sorted(self.open, key=_id_sort_key)
        ]

    def adopt(
        self,
        records: Iterable[Dict[str, object]],
        parent: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Merge another context's drained records into this trace.

        Every record is **re-identified** from this context's counter
        (shipped ids repeat across worker respawns), internal parent
        links are remapped, and records whose parent is unknown here
        (the worker's own roots) hang under ``parent``.
        """
        if not self.enabled:
            return []
        mapping: Dict[object, str] = {}
        adopted: List[Dict[str, object]] = []
        for record in records:
            copy = dict(record)
            mapping[copy.get("id")] = copy["id"] = self._next_id()
            adopted.append(copy)
        for copy in adopted:
            copy["parent"] = mapping.get(copy.get("parent"), parent)
            self._record(copy)
        return adopted


def _id_sort_key(span_id: str) -> Tuple[str, int]:
    label, _, count = span_id.rpartition(":")
    return (label, int(count) if count.isdigit() else 0)


@contextmanager
def record_collector():
    """Collect every record closed by *any* TraceContext in this
    process while the block runs — the bench harness wraps an
    experiment body in this to summarize stage shares without knowing
    which hosts the experiment builds."""
    records: List[Dict[str, object]] = []
    TraceContext._global_sinks.append(records.append)
    try:
        yield records
    finally:
        TraceContext._global_sinks.remove(records.append)
