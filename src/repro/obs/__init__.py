"""repro.obs — causal tracing, crash flight recording, structured logs.

The observability layer is deliberately inert with respect to the
protocol: span ids come from a per-context counter (no randomness), the
clock feeds *metadata only*, and nothing here touches the keystore,
the hash counter, the nonce stream or the evidence trail — a traced
run is byte-identical to an untraced one (pinned in
``tests/test_obs.py``).

Three pieces:

* :class:`~repro.obs.trace.TraceContext` — span/event recording.  Every
  host (serial Monitor, serve service, cluster coordinator, cluster
  worker) owns one; worker-side records ship over the existing pipe
  frames (``EpochSummary.spans``) and are adopted into the coordinator
  trace in plan order.
* :class:`~repro.obs.recorder.FlightRecorder` — a bounded ring of the
  most recent closed records plus every still-open span, dumped to
  JSONL when something goes wrong (worker reap, parity failure,
  ``ClusterError``).
* :mod:`repro.obs.log` — the one structured emitter behind every CLI's
  ``[component] message`` lines (``--log-json`` flips them to JSON).

``python -m repro.obs`` renders timelines, critical paths and trace
diffs from dumped records.
"""

from repro.obs.log import configure_logging, emit
from repro.obs.recorder import FlightRecorder
from repro.obs.timeline import (
    critical_path,
    load_records,
    stage_shares,
)
from repro.obs.trace import (
    Span,
    Stopwatch,
    TraceContext,
    record_collector,
)

__all__ = [
    "FlightRecorder",
    "Span",
    "Stopwatch",
    "TraceContext",
    "configure_logging",
    "critical_path",
    "emit",
    "load_records",
    "record_collector",
    "stage_shares",
]
