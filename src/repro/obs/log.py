"""The one structured log emitter behind every CLI's progress lines.

Text mode reproduces the established ``[component] message`` shape
(info to stdout, warn/error to stderr) so existing CI greps and
doctests keep working; ``--log-json`` (see
:func:`repro.util.cli.add_common_arguments`) flips the process to one
JSON object per line with explicit ``level``/``component``/``epoch``
fields plus whatever structured extras the call site attaches.

Hard-failure lines that carry the exit-code contract stay on
:func:`repro.util.cli.fail` — this module is for narrative progress,
not verdicts.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

__all__ = ["LogEmitter", "configure_logging", "emit"]


class LogEmitter:
    """Formats and writes log records; one per process is plenty."""

    def __init__(self, *, json_mode: bool = False) -> None:
        self.json_mode = json_mode

    def emit(
        self,
        component: str,
        message: str,
        *,
        level: str = "info",
        epoch: Optional[int] = None,
        **fields: object,
    ) -> None:
        stream = sys.stdout if level == "info" else sys.stderr
        if self.json_mode:
            record = {
                "level": level,
                "component": component,
                "message": message,
            }
            if epoch is not None:
                record["epoch"] = epoch
            record.update(fields)
            print(json.dumps(record, sort_keys=True), file=stream)
        else:
            print(f"[{component}] {message}", file=stream)
        stream.flush()


#: the process-wide emitter the module-level helpers write through
_emitter = LogEmitter()


def configure_logging(*, json_mode: bool = False) -> LogEmitter:
    """Switch the process emitter's output mode (CLIs call this right
    after argument parsing, from ``--log-json``)."""
    _emitter.json_mode = bool(json_mode)
    return _emitter


def emit(
    component: str,
    message: str,
    *,
    level: str = "info",
    epoch: Optional[int] = None,
    **fields: object,
) -> None:
    _emitter.emit(
        component, message, level=level, epoch=epoch, **fields
    )
