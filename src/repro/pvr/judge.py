"""The third party that evidence must convince (paper Section 2.3).

The judge holds nothing but the public-key directory.  Two duties:

* :meth:`Judge.validate` — check transferable evidence.  Sound for the
  *Evidence* property (valid evidence convicts) and for *Accuracy*
  (fabricated evidence against an honest AS never validates, because every
  component must carry the accused's own signature).

* :meth:`Judge.resolve_complaint` — adjudicate the detectable-but-not-
  provable cases (withheld messages).  The accused is asked to produce
  the allegedly-missing item; an honest AS always can, so a complaint is
  *upheld* only when the response is absent or invalid.  Responses that
  are signed-but-wrong convert the complaint into transferable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keystore import KeyStore
from repro.pvr.announcements import Receipt
from repro.pvr.commitments import (
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
)
from repro.pvr.evidence import BadOpeningEvidence, Complaint, Evidence

UPHELD = "upheld"
DISMISSED = "dismissed"


@dataclass(frozen=True)
class ComplaintRuling:
    """Outcome of interactive complaint resolution."""

    outcome: str
    derived_evidence: Optional[Evidence] = None
    reason: str = ""

    @property
    def upheld(self) -> bool:
        return self.outcome == UPHELD


class Judge:
    """Validates evidence and arbitrates complaints."""

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def validate(self, evidence: Evidence) -> bool:
        """True when the evidence proves misbehaviour by its accused."""
        return evidence.verify(self._keystore)

    def resolve_complaint(
        self,
        complaint: Complaint,
        response: object | None,
        vector: CommittedBitVector | None = None,
    ) -> ComplaintRuling:
        """Ask the accused to answer ``complaint`` with ``response``.

        ``vector`` is the gossiped commitment for the round, used to check
        disclosure responses; the judge obtains it from any neighbor.
        """
        claim = complaint.claim
        if response is None:
            return ComplaintRuling(UPHELD, reason="accused produced nothing")

        if claim in ("missing-receipt", "invalid-receipt"):
            if (
                isinstance(response, Receipt)
                and response.verify(self._keystore)
                and response.issuer == complaint.accused
                and response.provider == complaint.accuser
                and response.round == complaint.round
            ):
                return ComplaintRuling(DISMISSED, reason="valid receipt produced")
            return ComplaintRuling(UPHELD, reason="response is not a valid receipt")

        if claim in (
            "missing-disclosure",
            "unsigned-disclosure",
            "wrong-bit-disclosed",
            "missing-disclosures",
        ):
            if not isinstance(response, SignedDisclosure):
                return ComplaintRuling(UPHELD, reason="response is not a disclosure")
            if not response.verify_signature(self._keystore) or (
                response.author != complaint.accused
                or response.round != complaint.round
            ):
                return ComplaintRuling(UPHELD, reason="disclosure not validly signed")
            if complaint.context and claim in ("missing-disclosure",
                                               "wrong-bit-disclosed"):
                expected_index = complaint.context[0] if claim == "missing-disclosure" \
                    else complaint.context[1]
                if response.index != expected_index:
                    return ComplaintRuling(
                        UPHELD, reason="disclosure answers the wrong bit"
                    )
            if vector is not None and not response.matches(vector):
                # the accused answered with a signed-but-wrong opening:
                # that is transferable bad-opening evidence
                return ComplaintRuling(
                    UPHELD,
                    derived_evidence=BadOpeningEvidence(
                        vector=vector, disclosure=response
                    ),
                    reason="disclosure does not open the committed bit",
                )
            return ComplaintRuling(DISMISSED, reason="valid disclosure produced")

        if claim in ("missing-commitment", "malformed-commitment",
                     "missing-or-malformed-commitment"):
            if (
                isinstance(response, CommittedBitVector)
                and response.is_consistent(self._keystore)
                and response.author == complaint.accused
                and response.round == complaint.round
            ):
                return ComplaintRuling(DISMISSED, reason="consistent commitment produced")
            return ComplaintRuling(UPHELD, reason="no consistent commitment produced")

        if claim in ("missing-attestation", "invalid-attestation",
                     "missing-or-invalid-attestation"):
            if (
                isinstance(response, ExportAttestation)
                and response.verify_signature(self._keystore)
                and response.author == complaint.accused
                and response.recipient == complaint.accuser
                and response.round == complaint.round
            ):
                return ComplaintRuling(DISMISSED, reason="valid attestation produced")
            return ComplaintRuling(UPHELD, reason="no valid attestation produced")

        return ComplaintRuling(UPHELD, reason=f"unrecognized claim {claim!r}")
