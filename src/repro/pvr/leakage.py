"""Information-leakage accounting: the *Confidentiality* property.

"No AS will learn information from running PVR that it could not learn in
the unsecured system, unless this was explicitly authorized by α"
(Section 2.3).  This module makes that measurable:

* :func:`facts_learned_by_provider` / :func:`facts_learned_by_recipient`
  extract, from the messages a party received, the set of *facts* about
  A's inputs it can now derive;
* :func:`baseline_facts_provider` / :func:`baseline_facts_recipient`
  compute what the unsecured system (plain BGP plus belief in the
  promise) already reveals to that party, together with what the party
  knows from its own announcements;
* :func:`confidentiality_violations` is the difference.

Facts are small tagged tuples over route *lengths* — exactly the
vocabulary the minimum protocol's bit vector speaks:

* ``("exists-route-leq", i)`` — some input route has length ≤ i;
* ``("no-route-leq", i)`` — no input route has length ≤ i;
* ``("chosen-length", L)`` / ``("nothing-exported",)`` — the outcome.

For an honest run of the paper's protocol the difference is empty (a
theorem the test suite checks across many random scenarios); for the
over-disclosing :class:`repro.pvr.adversary.LeakyProver` it is not.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.pvr.minimum import ProviderView, RecipientView, RoundConfig

Fact = Tuple


def _facts_from_disclosure(index: int, value: int) -> Set[Fact]:
    if value == 1:
        return {("exists-route-leq", index)}
    return {("no-route-leq", index)}


def facts_learned_by_provider(view: ProviderView) -> Set[Fact]:
    """What Ni can derive from the messages it received.

    Commitments are hiding, so only opened disclosures convey facts.
    """
    facts: Set[Fact] = set()
    disclosures = list(view.extra_disclosures)
    if view.disclosure is not None:
        disclosures.append(view.disclosure)
    for disclosure in disclosures:
        facts |= _facts_from_disclosure(
            disclosure.index, disclosure.opening.value
        )
    return facts


def facts_learned_by_recipient(view: RecipientView) -> Set[Fact]:
    facts: Set[Fact] = set()
    for disclosure in view.disclosures:
        facts |= _facts_from_disclosure(
            disclosure.index, disclosure.opening.value
        )
    if view.attestation is not None:
        length = view.attestation.exported_length()
        if length is None:
            facts.add(("nothing-exported",))
        else:
            facts.add(("chosen-length", length))
    return facts


def _close_under_implication(facts: Set[Fact], max_length: int) -> Set[Fact]:
    """Deductive closure: exists-leq-i implies exists-leq-j for j > i;
    no-route-leq-i implies no-route-leq-j for j < i."""
    closed = set(facts)
    for index in range(1, max_length + 1):
        if ("exists-route-leq", index) in facts:
            for later in range(index, max_length + 1):
                closed.add(("exists-route-leq", later))
        if ("no-route-leq", index) in facts:
            for earlier in range(1, index + 1):
                closed.add(("no-route-leq", earlier))
    return closed


def baseline_facts_provider(
    config: RoundConfig, own_route_length: Optional[int]
) -> Set[Fact]:
    """What Ni knows without PVR: only what its own announcement implies.

    Plain BGP tells a provider nothing about A's other inputs or its
    choice (A's export to B is not visible to Ni).
    """
    facts: Set[Fact] = set()
    if own_route_length is not None:
        facts.add(("exists-route-leq", own_route_length))
    return _close_under_implication(facts, config.max_length)


def baseline_facts_recipient(
    config: RoundConfig, honest_chosen_length: Optional[int]
) -> Set[Fact]:
    """What B knows in the unsecured system, *assuming the promise holds*
    (the paper's yardstick: "if X was telling the truth").

    Seeing the chosen route of length L under a shortest-route promise
    already implies: a route of length L existed, and none shorter did.
    Seeing no export implies no routes existed.
    """
    facts: Set[Fact] = set()
    if honest_chosen_length is None:
        facts.add(("nothing-exported",))
        for index in range(1, config.max_length + 1):
            facts.add(("no-route-leq", index))
    else:
        facts.add(("chosen-length", honest_chosen_length))
        facts.add(("exists-route-leq", honest_chosen_length))
        if honest_chosen_length > 1:
            facts.add(("no-route-leq", honest_chosen_length - 1))
    return _close_under_implication(facts, config.max_length)


def confidentiality_violations(
    learned: Set[Fact], baseline: Set[Fact], max_length: int
) -> Set[Fact]:
    """Facts learned beyond the closure of the baseline."""
    return _close_under_implication(learned, max_length) - _close_under_implication(
        baseline, max_length
    )
