"""Execution backends: fanning the crypto hot path out across workers.

Section 3.8 prices a PVR round in RSA signatures — linear in the number
of providers k — and those signatures are embarrassingly parallel: each
receipt, disclosure and per-provider verification touches only its own
announcement/view pair.  This module supplies the *how* without changing
the *what*:

* :class:`ExecutionBackend` — the strategy interface.  ``map`` must
  return results **in task order**, so callers can merge worker output
  deterministically and transcripts stay byte-identical to serial runs;
* :class:`SerialBackend` — the default; runs tasks inline;
* :class:`ThreadPoolBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  workers share the keystore's key table (no copying);
* :class:`ProcessPoolBackend` — ``ProcessPoolExecutor``; tasks are
  shipped as picklable :class:`CryptoTask` chunks, each carrying the
  keystore snapshot once per chunk.

Parallel-safety rests on three properties of the crypto layer: FDH-RSA
signing is deterministic (same key + message ⇒ same bytes), key
generation derives only from the keystore's immutable seed material (a
worker's lazily-generated key equals the parent's), and per-worker
keystore views count their own operations, which callers merge back in
task order (:func:`run_tasks`), so :class:`~repro.pvr.session.CryptoCounters`
match serial runs exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.keystore import KeyStore

__all__ = [
    "CryptoResult",
    "CryptoTask",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "resolve_backend",
    "run_tasks",
    "shutdown_backends",
]


@dataclass(frozen=True)
class CryptoTask:
    """One picklable unit of crypto work.

    ``fn`` must be a module-level function (picklable by reference) with
    the keystore-first convention ``fn(keystore, *args)``; ``args`` must
    be picklable for the process backend — the protocol's frozen
    dataclasses (announcements, views, openings, configs) all are.
    ``key`` labels the result (e.g. the provider name) so callers can
    merge worker output without positional bookkeeping.
    """

    key: object
    fn: Callable
    args: Tuple

    def execute(self, keystore: KeyStore) -> "CryptoResult":
        view = keystore.worker_view()
        value = self.fn(view, *self.args)
        return CryptoResult(
            key=self.key,
            value=value,
            signatures=view.sign_count,
            verifications=view.verify_count,
        )


@dataclass(frozen=True)
class CryptoResult:
    """A task's value plus the keystore operations it performed."""

    key: object
    value: object
    signatures: int
    verifications: int


def _execute_chunk(payload) -> Tuple[CryptoResult, ...]:
    """Run one chunk of tasks against one keystore snapshot.

    Module-level so the process backend can pickle it; the keystore
    rides along once per chunk instead of once per task.
    """
    keystore, tasks = payload
    return tuple(task.execute(keystore) for task in tasks)


class ExecutionBackend:
    """Strategy for running independent crypto tasks.

    Implementations must preserve input order in ``map`` — callers rely
    on it for deterministic merges.  ``parallel`` advertises whether the
    backend actually fans out (provers fall back to their exact serial
    code path when it does not).
    """

    name = "serial"
    parallel = False

    @property
    def parallelism(self) -> int:
        return 1

    def map(self, fn: Callable, items: Sequence) -> List:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources; the backend may not be reused."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialBackend(ExecutionBackend):
    """The default: run every task inline, in order."""

    def map(self, fn: Callable, items: Sequence) -> List:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared machinery for the executor-based backends.

    The executor is created lazily (a backend can be constructed in
    configs/scenarios without paying for workers until first use) and
    reused across sessions.
    """

    parallel = True
    _executor_cls: Callable = None

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._executor = None

    @property
    def parallelism(self) -> int:
        if self._max_workers is not None:
            return self._max_workers
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux hosts
            return os.cpu_count() or 1

    def _pool(self):
        if self._executor is None:
            self._executor = self._executor_cls(
                max_workers=self._max_workers
            )
        return self._executor

    def map(self, fn: Callable, items: Sequence) -> List:
        # Executor.map preserves input order by contract.
        return list(self._pool().map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadPoolBackend(_PoolBackend):
    """Thread workers: zero-copy key access, overlaps the hash/bigint
    work the interpreter releases the GIL for only partially — the
    robust choice when task payloads are large."""

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessPoolBackend(_PoolBackend):
    """Process workers: true CPU fan-out for the RSA hot path.  Tasks
    and keystore snapshots cross the boundary by pickle, one snapshot
    per chunk (see :func:`run_tasks`)."""

    name = "process"
    _executor_cls = ProcessPoolExecutor


BackendSpec = Union[None, str, ExecutionBackend]

#: Shared backend instances, keyed by spec string, so repeated sessions
#: reuse one worker pool instead of spawning a pool per round.
_SHARED: Dict[str, ExecutionBackend] = {}


def resolve_backend(spec: BackendSpec) -> ExecutionBackend:
    """Turn a backend spec into a backend.

    Accepts ``None``/``"serial"``, ``"thread"``, ``"process"`` — each
    optionally suffixed ``:N`` for an explicit worker count — or an
    :class:`ExecutionBackend` instance (returned as-is).  String specs
    resolve to shared, lazily-started instances.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = "serial"
    if not isinstance(spec, str):
        raise TypeError(f"backend spec must be str or ExecutionBackend, got {spec!r}")
    if spec in _SHARED:
        return _SHARED[spec]
    kind, _, workers = spec.partition(":")
    max_workers = None
    if workers:
        try:
            max_workers = int(workers)
        except ValueError:
            raise ValueError(f"bad worker count in backend spec {spec!r}") from None
    if kind == "serial":
        backend: ExecutionBackend = SerialBackend()
    elif kind == "thread":
        backend = ThreadPoolBackend(max_workers)
    elif kind == "process":
        backend = ProcessPoolBackend(max_workers)
    else:
        raise ValueError(
            f"unknown backend {spec!r}; expected serial, thread[:N] or process[:N]"
        )
    _SHARED[spec] = backend
    return backend


def shutdown_backends() -> None:
    """Close every shared backend (tests and the bench runner call this
    so worker pools do not outlive their workload)."""
    for backend in _SHARED.values():
        backend.close()
    _SHARED.clear()


def _chunks(tasks: Sequence[CryptoTask], count: int) -> List[Tuple[CryptoTask, ...]]:
    """Split ``tasks`` into at most ``count`` contiguous, order-preserving
    chunks of near-equal size."""
    count = max(1, min(count, len(tasks)))
    size, extra = divmod(len(tasks), count)
    out, start = [], 0
    for i in range(count):
        end = start + size + (1 if i < extra else 0)
        out.append(tuple(tasks[start:end]))
        start = end
    return out


def run_tasks(
    backend: ExecutionBackend,
    keystore: KeyStore,
    tasks: Sequence[CryptoTask],
    *,
    merge_counts: bool = True,
) -> List[CryptoResult]:
    """Execute ``tasks`` on ``backend`` and return results in task order.

    Every task runs against a :meth:`~repro.crypto.keystore.KeyStore.worker_view`
    of ``keystore`` (whatever the backend), and the per-task operation
    counts are merged back into ``keystore`` in task order — so serial
    and parallel runs report identical
    :class:`~repro.pvr.session.CryptoCounters`.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    chunked = _chunks(tasks, backend.parallelism)
    payloads = [(keystore, chunk) for chunk in chunked]
    results: List[CryptoResult] = []
    for group in backend.map(_execute_chunk, payloads):
        results.extend(group)
    if merge_counts:
        for result in results:
            keystore.add_counts(result.signatures, result.verifications)
    return results
