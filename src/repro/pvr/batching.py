"""Batched disclosures: Section 3.8's burst optimization, in-protocol.

"This overhead can be burdensome during BGP message bursts, but it seems
feasible to sign messages in batches, perhaps using a small MHT to reveal
batched routes individually."

A :class:`DisclosureBatch` collects all of a round's disclosure bodies
into a :class:`repro.crypto.merkle.BatchTree` and signs only the root.
Each recipient then gets a :class:`BatchedDisclosure` — the opening, its
Merkle membership proof, and the one root signature — which presents the
same interface as a :class:`repro.pvr.commitments.SignedDisclosure`
(``index`` / ``opening`` / ``verify_signature`` / ``matches``), so every
verifier and evidence class works unchanged.  The attribution argument is
identical: the opening is bound by the proof to a root the prover signed.

:class:`BatchingProver` is the drop-in minimum-protocol prover using one
signature for all of a round's disclosures instead of k + L of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.commitment import Opening
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import BatchTree, MerkleProof
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    disclosure_bytes,
)
from repro.pvr.minimum import (
    HonestProver,
    ProviderView,
    RecipientView,
    RoundConfig,
)
from repro.util.encoding import canonical_encode

_ROOT_DOMAIN = "pvr-disclosure-batch-root"


def _root_bytes(author: str, topic: str, round: int, root: bytes) -> bytes:
    return canonical_encode((_ROOT_DOMAIN, author, topic, round, root))


@dataclass(frozen=True)
class BatchedDisclosure:
    """One disclosure extracted from a signed batch.

    Interface-compatible with ``SignedDisclosure``: the signature check
    verifies the Merkle membership proof against the author's signed
    batch root instead of a per-item signature.
    """

    author: str
    topic: str
    round: int
    index: int
    opening: Opening
    proof: MerkleProof
    root: bytes
    root_signature: bytes

    def verify_signature(self, keystore: KeyStore) -> bool:
        """Attribution: proof payload is this disclosure's body, the proof
        reaches ``root``, and ``root`` carries the author's signature."""
        body = disclosure_bytes(
            self.author, self.topic, self.round, self.index, self.opening
        )
        if self.proof.payload != body:
            return False
        if not self.proof.verify(self.root):
            return False
        return keystore.verify(
            self.author,
            _root_bytes(self.author, self.topic, self.round, self.root),
            self.root_signature,
        )

    def matches(self, vector: CommittedBitVector) -> bool:
        from repro.crypto.commitment import verify_opening

        try:
            commitment = vector.commitment(self.index)
        except IndexError:
            return False
        return verify_opening(commitment, self.opening)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "batched-disclosure",
                self.author,
                self.topic,
                self.round,
                self.index,
                self.opening,
                self.proof,
                self.root,
                self.root_signature,
            )
        )


class DisclosureBatch:
    """All of one round's disclosures under a single signature."""

    def __init__(
        self,
        keystore: KeyStore,
        author: str,
        topic: str,
        round: int,
        openings: BitVectorOpenings,
        indices: Sequence[int],
    ) -> None:
        self.author = author
        self.topic = topic
        self.round = round
        self._indices = list(dict.fromkeys(indices))  # stable de-dup
        self._openings = {i: openings.opening(i) for i in self._indices}
        bodies = [
            disclosure_bytes(author, topic, round, i, self._openings[i])
            for i in self._indices
        ]
        self._tree = BatchTree(bodies)
        self._root_signature = keystore.sign(
            author, _root_bytes(author, topic, round, self._tree.root)
        )

    @property
    def root(self) -> bytes:
        return self._tree.root

    def extract(self, index: int) -> BatchedDisclosure:
        """The disclosure for bit ``index``, with its membership proof."""
        position = self._indices.index(index)
        return BatchedDisclosure(
            author=self.author,
            topic=self.topic,
            round=self.round,
            index=index,
            opening=self._openings[index],
            proof=self._tree.prove(position),
            root=self._tree.root,
            root_signature=self._root_signature,
        )


class BatchingProver(HonestProver):
    """The honest minimum-protocol prover with batched disclosures.

    One round needs one commitment-statement signature, one attestation
    signature, one batch-root signature and one receipt per announcement
    — instead of an additional signature per disclosed bit.  Under a
    parallel execution backend the remaining per-provider work — the
    receipt signatures and the Merkle extraction of each batched
    disclosure — fans out across workers.
    """

    _FAN_OUT_HOOKS = ("issue_receipt", "_batched_recipient_view")

    def run(self, config: RoundConfig, announcements):
        accepted = self.accept_announcements(config, announcements)
        bits = self.compute_bits(config, accepted)
        from repro.pvr.commitments import commit_bits

        vector, openings = commit_bits(
            self.keystore, config.prover, config.topic, config.round, bits,
            self.random_bytes,
        )
        winner = self.choose_winner(config, accepted)

        # one batch covering every bit the round can possibly disclose,
        # bound by a single root signature
        batch = DisclosureBatch(
            self.keystore, config.prover, config.topic, config.round,
            openings, range(1, config.max_length + 1),
        )

        backend = self._fan_out_backend()
        if backend is not None:
            provider_views, recipient_view = self._run_fanned_out_batched(
                backend, config, accepted, winner, vector, batch
            )
        else:
            receipts = {
                provider: self.issue_receipt(config, ann)
                for provider, ann in accepted.items()
            }
            provider_views = {}
            for provider in config.providers:
                ann = accepted.get(provider)
                if ann is None:
                    provider_views[provider] = ProviderView(vector=vector)
                    continue
                index = len(ann.route.as_path)
                provider_views[provider] = ProviderView(
                    receipt=receipts.get(provider),
                    vector=vector,
                    disclosure=batch.extract(index),
                )
            recipient_view = self._batched_recipient_view(
                config, winner, vector, batch
            )
        from repro.pvr.minimum import RoundTranscript

        return RoundTranscript(
            config=config,
            announcements=dict(announcements),
            provider_views=provider_views,
            recipient_view=recipient_view,
        )

    def _run_fanned_out_batched(
        self, backend, config, accepted, winner, vector, batch
    ):
        """The batched round's per-provider and per-index work as
        parallel tasks (the batch itself was already signed once); the
        merge and recipient-view assembly are the shared
        :meth:`HonestProver._collect_fanned_out` path."""
        from repro.pvr import execution

        tasks = [
            execution.CryptoTask(
                key=("provider", provider),
                fn=_batched_provider_task,
                args=(config, accepted.get(provider), vector, batch),
            )
            for provider in config.providers
        ]
        tasks.extend(
            execution.CryptoTask(
                key=("disclosure", index),
                fn=_batched_extract_task,
                args=(batch, index),
            )
            for index in range(1, config.max_length + 1)
        )
        return self._collect_fanned_out(backend, config, winner, vector, tasks)

    def _batched_recipient_view(self, config, winner, vector, batch):
        disclosures = tuple(
            batch.extract(index)
            for index in range(1, config.max_length + 1)
        )
        return RecipientView(
            vector=vector,
            attestation=self._attest(config, winner),
            disclosures=disclosures,
        )


BatchingProver._FAN_OUT_BASE = BatchingProver


def _batched_provider_task(
    keystore: KeyStore, config, announcement, vector, batch
) -> ProviderView:
    """Receipt + batched-disclosure view for one provider, on a worker."""
    if announcement is None:
        return ProviderView(vector=vector)
    helper = BatchingProver(keystore)
    return ProviderView(
        receipt=helper.issue_receipt(config, announcement),
        vector=vector,
        disclosure=batch.extract(len(announcement.route.as_path)),
    )


def _batched_extract_task(keystore: KeyStore, batch, index: int):
    """One batched disclosure with its Merkle membership proof."""
    return batch.extract(index)
