"""Batched disclosures: Section 3.8's burst optimization, in-protocol.

"This overhead can be burdensome during BGP message bursts, but it seems
feasible to sign messages in batches, perhaps using a small MHT to reveal
batched routes individually."

A :class:`DisclosureBatch` collects all of a round's disclosure bodies
into a :class:`repro.crypto.merkle.BatchTree` and signs only the root.
Each recipient then gets a :class:`BatchedDisclosure` — the opening, its
Merkle membership proof, and the one root signature — which presents the
same interface as a :class:`repro.pvr.commitments.SignedDisclosure`
(``index`` / ``opening`` / ``verify_signature`` / ``matches``), so every
verifier and evidence class works unchanged.  The attribution argument is
identical: the opening is bound by the proof to a root the prover signed.

:class:`BatchingProver` is the drop-in minimum-protocol prover using one
signature for all of a round's disclosures instead of k + L of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.commitment import Opening
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import BatchTree, MerkleProof
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    disclosure_bytes,
)
from repro.pvr.minimum import (
    HonestProver,
    ProviderView,
    RecipientView,
    RoundConfig,
)
from repro.util.encoding import canonical_encode

_ROOT_DOMAIN = "pvr-disclosure-batch-root"


def _root_bytes(author: str, topic: str, round: int, root: bytes) -> bytes:
    return canonical_encode((_ROOT_DOMAIN, author, topic, round, root))


@dataclass(frozen=True)
class BatchedDisclosure:
    """One disclosure extracted from a signed batch.

    Interface-compatible with ``SignedDisclosure``: the signature check
    verifies the Merkle membership proof against the author's signed
    batch root instead of a per-item signature.
    """

    author: str
    topic: str
    round: int
    index: int
    opening: Opening
    proof: MerkleProof
    root: bytes
    root_signature: bytes

    def verify_signature(self, keystore: KeyStore) -> bool:
        """Attribution: proof payload is this disclosure's body, the proof
        reaches ``root``, and ``root`` carries the author's signature."""
        body = disclosure_bytes(
            self.author, self.topic, self.round, self.index, self.opening
        )
        if self.proof.payload != body:
            return False
        if not self.proof.verify(self.root):
            return False
        return keystore.verify(
            self.author,
            _root_bytes(self.author, self.topic, self.round, self.root),
            self.root_signature,
        )

    def matches(self, vector: CommittedBitVector) -> bool:
        from repro.crypto.commitment import verify_opening

        try:
            commitment = vector.commitment(self.index)
        except IndexError:
            return False
        return verify_opening(commitment, self.opening)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "batched-disclosure",
                self.author,
                self.topic,
                self.round,
                self.index,
                self.opening,
                self.proof,
                self.root,
                self.root_signature,
            )
        )


class DisclosureBatch:
    """All of one round's disclosures under a single signature."""

    def __init__(
        self,
        keystore: KeyStore,
        author: str,
        topic: str,
        round: int,
        openings: BitVectorOpenings,
        indices: Sequence[int],
    ) -> None:
        self.author = author
        self.topic = topic
        self.round = round
        self._indices = list(dict.fromkeys(indices))  # stable de-dup
        self._openings = {i: openings.opening(i) for i in self._indices}
        bodies = [
            disclosure_bytes(author, topic, round, i, self._openings[i])
            for i in self._indices
        ]
        self._tree = BatchTree(bodies)
        self._root_signature = keystore.sign(
            author, _root_bytes(author, topic, round, self._tree.root)
        )

    @property
    def root(self) -> bytes:
        return self._tree.root

    def extract(self, index: int) -> BatchedDisclosure:
        """The disclosure for bit ``index``, with its membership proof."""
        position = self._indices.index(index)
        return BatchedDisclosure(
            author=self.author,
            topic=self.topic,
            round=self.round,
            index=index,
            opening=self._openings[index],
            proof=self._tree.prove(position),
            root=self._tree.root,
            root_signature=self._root_signature,
        )


class BatchingProver(HonestProver):
    """The honest minimum-protocol prover with batched disclosures.

    One round needs one commitment-statement signature, one attestation
    signature, one batch-root signature and one receipt per announcement
    — instead of an additional signature per disclosed bit.
    """

    def run(self, config: RoundConfig, announcements):
        accepted = self.accept_announcements(config, announcements)
        bits = self.compute_bits(config, accepted)
        from repro.pvr.commitments import commit_bits

        vector, openings = commit_bits(
            self.keystore, config.prover, config.topic, config.round, bits,
            self.random_bytes,
        )
        winner = self.choose_winner(config, accepted)
        receipts = {
            provider: self.issue_receipt(config, ann)
            for provider, ann in accepted.items()
        }

        # one batch covering every bit the round can possibly disclose
        batch = DisclosureBatch(
            self.keystore, config.prover, config.topic, config.round,
            openings, range(1, config.max_length + 1),
        )

        provider_views = {}
        for provider in config.providers:
            ann = accepted.get(provider)
            if ann is None:
                provider_views[provider] = ProviderView(vector=vector)
                continue
            index = len(ann.route.as_path)
            provider_views[provider] = ProviderView(
                receipt=receipts.get(provider),
                vector=vector,
                disclosure=batch.extract(index),
            )

        recipient_view = self._batched_recipient_view(
            config, winner, vector, batch
        )
        from repro.pvr.minimum import RoundTranscript

        return RoundTranscript(
            config=config,
            announcements=dict(announcements),
            provider_views=provider_views,
            recipient_view=recipient_view,
        )

    def _batched_recipient_view(self, config, winner, vector, batch):
        from repro.pvr.commitments import make_attestation

        if winner is None:
            attestation = make_attestation(
                self.keystore, config.prover, config.recipient, config.round,
                None, None,
            )
        else:
            attestation = make_attestation(
                self.keystore, config.prover, config.recipient, config.round,
                winner.route.exported_by(config.prover), winner,
            )
        disclosures = tuple(
            batch.extract(index)
            for index in range(1, config.max_length + 1)
        )
        return RecipientView(
            vector=vector, attestation=attestation, disclosures=disclosures
        )
