"""The generalized PVR protocol over arbitrary route-flow graphs
(paper Sections 3.5-3.7).

Where the Section 3.2/3.3 protocols hard-wire one operator, this engine
takes any :class:`repro.rfg.graph.RouteFlowGraph`:

* the prover evaluates the graph, commits to every vertex's record
  ``I(x) = (c(preds), c(succs), c(payload))``, commits per-operator
  *evidence* (the aggregate length-bit vector of the operator's inputs,
  exactly the ``b_1..b_k`` of Section 3.3), builds the sparse Merkle tree
  over the records and signs its root;
* neighbors retrieve records by navigation (:mod:`repro.pvr.navigation`)
  with Merkle proofs against the signed root, and request aspect openings
  and evidence-bit disclosures, which the prover grants per the access
  policy α;
* verification is *collective*, as in the single-operator case: each
  input's owner checks its announcement was counted in the evidence of
  the operator consuming it, while the output's recipient checks the
  export is consistent with the final operator's evidence.

The engine thereby verifies Figure 2's two-operator promise with B never
seeing r1..rk and the Ni never seeing the outcome — the paper's headline
generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import MerkleProof, SparseMerkleTree
from repro.net.gossip import SignedStatement, make_statement
from repro.pvr.access import PAYLOAD, AccessPolicy
from repro.pvr.announcements import (
    Receipt,
    SignedAnnouncement,
    make_receipt,
)
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
    commit_bits,
    compute_length_bits,
    make_attestation,
    make_disclosure,
)
from repro.pvr.vertex_info import (
    ASPECT_PAYLOAD,
    ASPECT_PREDS,
    ASPECT_SUCCS,
    VertexOpenings,
    VertexRecord,
    make_vertex_record,
    operator_payload,
    variable_payload,
)
from repro.rfg.graph import RouteFlowGraph
from repro.rfg.operators import normalize_routes

ROOT_TOPIC = "pvr-rfg-root"


class AccessDenied(Exception):
    """The prover refuses a query α does not authorize."""


@dataclass(frozen=True)
class GraphRoundConfig:
    """Parameters of one generalized-protocol round."""

    prover: str
    round: int
    max_length: int = 16

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")


@dataclass(frozen=True)
class RecordResponse:
    """Answer to a navigation query: the record plus its Merkle proof."""

    record: VertexRecord
    proof: MerkleProof


@dataclass(frozen=True)
class AspectResponse:
    """A disclosed aspect opening (checked against the vertex record)."""

    vertex: str
    aspect: str
    opening: object  # crypto.commitment.Opening


class GraphProver:
    """A's side of the generalized protocol for one round.

    ``alpha`` governs every disclosure.  The prover is constructed with
    the *true* inputs (the announcements it received); adversarial
    variants override :meth:`assignment_for_evaluation` or
    :meth:`choose_export` the same way the minimum-protocol adversaries
    do.
    """

    def __init__(
        self,
        keystore: KeyStore,
        graph: RouteFlowGraph,
        alpha: AccessPolicy,
        config: GraphRoundConfig,
        random_bytes: Callable[[int], bytes] | None = None,
    ) -> None:
        self.keystore = keystore
        self.graph = graph
        self.alpha = alpha
        self.config = config
        self.random_bytes = random_bytes
        self._records: Dict[str, VertexRecord] = {}
        self._openings: Dict[str, VertexOpenings] = {}
        self._evidence_vectors: Dict[str, CommittedBitVector] = {}
        self._evidence_openings: Dict[str, BitVectorOpenings] = {}
        self._values: Dict[str, object] = {}
        self._announcements: Dict[str, SignedAnnouncement] = {}
        self._tree: SparseMerkleTree | None = None
        self._root_statement: SignedStatement | None = None

    # -- round execution ----------------------------------------------------

    def receive(
        self, announcements: Mapping[str, Optional[SignedAnnouncement]]
    ) -> Dict[str, Receipt]:
        """Accept announcements keyed by *input variable name*; returns
        receipts keyed the same way."""
        receipts: Dict[str, Receipt] = {}
        for vertex in self.graph.inputs():
            ann = announcements.get(vertex.name)
            if ann is None:
                continue
            if ann.origin != vertex.party or ann.recipient != self.config.prover:
                continue
            if ann.round != self.config.round:
                continue
            if not 1 <= len(ann.route.as_path) <= self.config.max_length:
                continue
            if not ann.verify(self.keystore):
                continue
            self._announcements[vertex.name] = ann
            receipts[vertex.name] = make_receipt(
                self.keystore, self.config.prover, ann
            )
        return receipts

    def assignment_for_evaluation(self) -> Dict[str, Optional[Route]]:
        """The input assignment the prover actually evaluates (override
        point for adversaries that drop inputs)."""
        return {
            name: ann.route for name, ann in self._announcements.items()
        }

    def commit_round(self) -> SignedStatement:
        """Evaluate, build all records and the Merkle tree, sign the root."""
        assignment = self.assignment_for_evaluation()
        self._values = self.graph.evaluate(assignment)

        for op in self.graph.operators():
            input_routes = [
                r
                for name in op.inputs
                for r in normalize_routes(self._values[name])
            ]
            bits = compute_length_bits(
                [len(r.as_path) for r in input_routes], self.config.max_length
            )
            vector, openings = commit_bits(
                self.keystore,
                self.config.prover,
                f"op-evidence:{op.name}",
                self.config.round,
                bits,
                self.random_bytes,
            )
            self._evidence_vectors[op.name] = vector
            self._evidence_openings[op.name] = openings

        leaves = {}
        for name in self.graph.vertex_names():
            is_operator = self.graph.is_operator(name)
            if is_operator:
                op = self.graph.operator(name)
                vector = self._evidence_vectors[name]
                payload = operator_payload(
                    op.operator.type_tag,
                    op.operator.params(),
                    tuple(c.digest for c in vector.commitments),
                )
            else:
                value = self._values.get(name)
                routes = normalize_routes(value)
                payload = variable_payload(routes[0] if routes else None)
            record, openings = make_vertex_record(
                name,
                is_operator,
                self.graph.predecessors(name),
                self.graph.successors(name),
                payload,
                self.random_bytes,
            )
            self._records[name] = record
            self._openings[name] = openings
            leaves[record.address()] = record.leaf_payload()

        self._tree = SparseMerkleTree(leaves, self.random_bytes)
        self._root_statement = make_statement(
            self.keystore,
            self.config.prover,
            ROOT_TOPIC,
            self.config.round,
            self._tree.root,
        )
        return self._root_statement

    # -- query interface (all α-mediated) --------------------------------------

    @property
    def root_statement(self) -> SignedStatement:
        if self._root_statement is None:
            raise RuntimeError("commit_round has not been called")
        return self._root_statement

    def get_record(self, requester: str, vertex: str) -> Optional[RecordResponse]:
        """Navigation step: the record and its inclusion proof.

        Any neighbor may fetch records for vertices it can *name* (the
        record's three digests reveal nothing); unknown names return None
        without distinguishing "hidden" from "absent".
        """
        record = self._records.get(vertex)
        if record is None or self._tree is None:
            return None
        proof = self._tree.prove(record.address())
        return RecordResponse(record=record, proof=proof)

    def open_aspect(self, requester: str, vertex: str, aspect: str) -> AspectResponse:
        """Disclose one aspect of I(x), if α authorizes the requester."""
        if vertex not in self._records:
            raise AccessDenied(f"unknown vertex {vertex!r}")
        alpha_aspect = {
            ASPECT_PREDS: "preds",
            ASPECT_SUCCS: "succs",
            ASPECT_PAYLOAD: PAYLOAD,
        }[aspect]
        if not self.alpha.allows(requester, vertex, alpha_aspect):
            raise AccessDenied(f"{requester} may not see {aspect} of {vertex}")
        opening = self._openings[vertex].opening_for(aspect)
        return AspectResponse(vertex=vertex, aspect=aspect, opening=opening)

    def evidence_disclosure(
        self, requester: str, operator: str, index: int
    ) -> SignedDisclosure:
        """Disclose bit ``index`` of an operator's evidence vector.

        Authorized when the requester may see the operator (payload
        aspect) — the paper's α(n, min) = TRUE — *and* the bit is one the
        protocol owes them: their own announcement's length, or any bit
        when they receive the operator's downstream output.
        """
        if operator not in self._evidence_vectors:
            raise AccessDenied(f"unknown operator {operator!r}")
        if not self.alpha.allows(requester, operator, PAYLOAD):
            raise AccessDenied(f"{requester} may not query {operator}")
        if not self._bit_owed_to(requester, operator, index):
            raise AccessDenied(
                f"bit {index} of {operator} is not owed to {requester}"
            )
        openings = self._evidence_openings[operator]
        return make_disclosure(
            self.keystore,
            self.config.prover,
            f"op-evidence:{operator}",
            self.config.round,
            index,
            openings.opening(index),
        )

    def evidence_vector(self, requester: str, operator: str) -> CommittedBitVector:
        """The public commitment vector (digests only — safe to share)."""
        if operator not in self._evidence_vectors:
            raise AccessDenied(f"unknown operator {operator!r}")
        return self._evidence_vectors[operator]

    def _bit_owed_to(self, requester: str, operator: str, index: int) -> bool:
        if not 1 <= index <= self.config.max_length:
            return False
        op = self.graph.operator(operator)
        # output recipients may see every bit of operators on their path
        for out in self.graph.outputs():
            if out.party == requester and self._feeds(operator, out.name):
                return True
        # an input owner may see exactly the bit at its own route's length,
        # for operators its input (transitively) feeds
        for vertex in self.graph.inputs():
            if vertex.party != requester:
                continue
            ann = self._announcements.get(vertex.name)
            if ann is None:
                continue
            if index != len(ann.route.as_path):
                continue
            if self._feeds(vertex.name, operator) or vertex.name in op.inputs:
                return True
        return False

    def _feeds(self, source: str, target: str) -> bool:
        """Is there a directed path from ``source`` to ``target``?"""
        frontier = [source]
        seen = set()
        while frontier:
            name = frontier.pop()
            if name == target:
                return True
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self.graph.successors(name))
        return False

    # -- export ----------------------------------------------------------------

    def export_attestation(self, output: str) -> ExportAttestation:
        """Sign what the graph's ``output`` variable exports this round."""
        vertex = self.graph.variable(output)
        if vertex.role != "output":
            raise ValueError(f"{output!r} is not an output variable")
        routes = normalize_routes(self._values.get(output))
        chosen = routes[0] if routes else None
        provenance = None
        if chosen is not None:
            provenance = self._provenance_for(chosen)
        exported = (
            chosen.exported_by(self.config.prover) if chosen is not None else None
        )
        return make_attestation(
            self.keystore,
            self.config.prover,
            vertex.party,
            self.config.round,
            exported,
            provenance,
        )

    def _provenance_for(self, route: Route) -> Optional[SignedAnnouncement]:
        for ann in self._announcements.values():
            if ann.route == route:
                return ann
        # value objects may differ in receiver-local fields; match on the
        # announcement content instead
        for ann in self._announcements.values():
            if ann.route.announcement_key() == route.announcement_key():
                return ann
        return None
