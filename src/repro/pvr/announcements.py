"""Signed route announcements and receipts.

Condition 1 of the existential protocol rests on "we can sign all the
routing announcements" (Section 3.2): when A exports a route to B, B can
check that the route really was provided by the Ni on its path.

Receipts are the dual mechanism the *Evidence* property needs on the
provider side: when Ni announces a route, A returns a signed receipt.
Without it, Ni could detect that A denied ever receiving its route, but
could not *prove* the route was sent — a judge cannot distinguish an
honest complaint from a fabricated one.  (The paper's sketch leaves this
implicit; DESIGN.md records it as an engineering completion, not a
deviation.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.route import Route
from repro.crypto.hashing import hash_bytes
from repro.crypto.keystore import KeyStore
from repro.util.encoding import canonical_encode


@dataclass(frozen=True)
class SignedAnnouncement:
    """A route announced by ``origin`` to ``recipient`` in ``round``.

    The signature covers the route's announcement key (prefix and path
    attributes), the parties, and the round number — so an announcement
    cannot be replayed into a different round or toward a different AS.
    """

    route: Route
    origin: str
    recipient: str
    round: int
    signature: bytes

    def signed_bytes(self) -> bytes:
        return announcement_bytes(self.route, self.origin, self.recipient, self.round)

    def digest(self) -> bytes:
        return hash_bytes("repro.pvr.announcement", self.canonical())

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.origin, self.signed_bytes(), self.signature)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "signed-announcement",
                self.route,
                self.origin,
                self.recipient,
                self.round,
                self.signature,
            )
        )


def announcement_bytes(route: Route, origin: str, recipient: str, round: int) -> bytes:
    return canonical_encode(
        (
            "pvr-announcement",
            route.announcement_key(),
            origin,
            recipient,
            round,
        )
    )


def make_announcement(
    keystore: KeyStore, route: Route, origin: str, recipient: str, round: int
) -> SignedAnnouncement:
    signature = keystore.sign(
        origin, announcement_bytes(route, origin, recipient, round)
    )
    return SignedAnnouncement(
        route=route,
        origin=origin,
        recipient=recipient,
        round=round,
        signature=signature,
    )


@dataclass(frozen=True)
class Receipt:
    """A's signed acknowledgment that it received an announcement.

    ``announcement_digest`` pins the exact announcement; the receipt is
    the provider's transferable proof that A's decision inputs included
    its route.
    """

    issuer: str
    provider: str
    round: int
    announcement_digest: bytes
    signature: bytes

    def signed_bytes(self) -> bytes:
        return receipt_bytes(
            self.issuer, self.provider, self.round, self.announcement_digest
        )

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.issuer, self.signed_bytes(), self.signature)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "receipt",
                self.issuer,
                self.provider,
                self.round,
                self.announcement_digest,
                self.signature,
            )
        )


def receipt_bytes(
    issuer: str, provider: str, round: int, announcement_digest: bytes
) -> bytes:
    return canonical_encode(
        ("pvr-receipt", issuer, provider, round, announcement_digest)
    )


def make_receipt(
    keystore: KeyStore, issuer: str, announcement: SignedAnnouncement
) -> Receipt:
    digest = announcement.digest()
    signature = keystore.sign(
        issuer,
        receipt_bytes(issuer, announcement.origin, announcement.round, digest),
    )
    return Receipt(
        issuer=issuer,
        provider=announcement.origin,
        round=announcement.round,
        announcement_digest=digest,
        signature=signature,
    )
