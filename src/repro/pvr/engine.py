"""The unified verification engine: one lifecycle over all four PVR
protocol variants.

:class:`VerificationSession` drives a single promise-verification round
through the paper's five phases —

    announce → commit → disclose → verify → adjudicate

— parameterized by a :class:`repro.pvr.session.PromiseSpec`.  The spec
compiles to a route-flow-graph plan and resolves to one of four protocol
*drivers*:

* ``minimum`` — the Section 3.3 bit-vector protocol
  (:mod:`repro.pvr.minimum`), covering promises 1-3;
* ``existential`` — the Section 3.2 single-bit protocol
  (:mod:`repro.pvr.existential`);
* ``graph`` — the generalized Sections 3.5-3.7 protocol
  (:mod:`repro.pvr.protocol` + :mod:`repro.pvr.navigation`) over the
  compiled plan, for subset promises, filters and multi-operator graphs;
* ``crosscheck`` — promise 4's cross-recipient attestation gossip
  (:mod:`repro.pvr.crosscheck`).

Whatever the variant, the session emits the same
:class:`~repro.pvr.session.SessionTranscript` and
:class:`~repro.pvr.session.SessionReport`, so callers — examples,
benchmarks, the BGP deployment, the scenario registry — never branch on
the protocol again.

Lifecycle methods may be driven one at a time (the deployment layer
interleaves them with wire transport) or all at once via :meth:`run`.
``verify`` accepts the views that actually *arrived* so dropped or
tampered messages surface in the verdicts, and may be re-run (e.g. for a
different subset of parties) without repeating the earlier phases.

``backend`` selects an :mod:`execution <repro.pvr.execution>` strategy
for the crypto hot path — per-provider prove/verify work and the
cross-check fan out across thread or process workers, with results
merged in deterministic order so transcripts, verdicts and crypto
counters are identical to serial runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.net.gossip import GossipLayer, exchange
from repro.pvr import existential as existential_mod
from repro.pvr import execution
from repro.pvr import leakage
from repro.pvr import minimum as minimum_mod
from repro.pvr.announcements import SignedAnnouncement, make_announcement
from repro.pvr.batching import BatchingProver
from repro.pvr.commitments import ExportAttestation, make_attestation
from repro.pvr.crosscheck import ExportChooser, cross_check, honest_chooser
from repro.pvr.evidence import Complaint, Verdict, Violation
from repro.pvr.judge import Judge
from repro.pvr.minimum import (
    HonestProver,
    ProviderView,
    RecipientView,
    RoundConfig,
)
from repro.pvr.navigation import (
    Navigator,
    OperatorSkeleton,
    owner_check_operators,
    verify_as_input_owner,
    verify_as_output_recipient,
)
from repro.pvr.protocol import GraphProver, GraphRoundConfig
from repro.pvr.session import (
    VARIANT_CROSSCHECK,
    VARIANT_EXISTENTIAL,
    VARIANT_GRAPH,
    VARIANT_MINIMUM,
    Adjudication,
    CryptoCounters,
    PromiseSpec,
    SessionError,
    SessionReport,
    SessionTranscript,
)
from repro.rfg.graph import RouteFlowGraph

Routes = Mapping[str, Optional[Route]]

# lifecycle states, in order
CREATED = "created"
ANNOUNCED = "announced"
COMMITTED = "committed"
DISCLOSED = "disclosed"
VERIFIED = "verified"

_NEXT = {
    "announce": (CREATED,),
    "commit": (ANNOUNCED,),
    "disclose": (COMMITTED,),
    "verify": (DISCLOSED, VERIFIED),
    "adjudicate": (VERIFIED,),
}


def derive_skeleton(
    plan: RouteFlowGraph, output: str
) -> Tuple[OperatorSkeleton, ...]:
    """The operator chain a recipient expects behind ``output``,
    outermost first, walking each operator's first input — the walk
    :func:`repro.pvr.navigation.verify_as_output_recipient` performs."""
    skeleton = []
    current = output
    while True:
        producers = plan.predecessors(current)
        if not producers:
            break
        op = plan.operator(producers[0])
        skeleton.append(
            OperatorSkeleton(name=op.name, type_tag=op.operator.type_tag)
        )
        if not op.inputs:
            break
        current = op.inputs[0]
    return tuple(skeleton)


def _honest_minimum_length(routes: Routes, max_length: int) -> Optional[int]:
    lengths = [
        len(route.as_path)
        for route in routes.values()
        if route is not None and 1 <= len(route.as_path) <= max_length
    ]
    return min(lengths) if lengths else None


class VerificationSession:
    """One promise, one round, one auditable lifecycle.

    Arguments beyond ``spec`` tune the prover side without changing the
    API: ``prover`` injects a (possibly Byzantine) prover — an
    :class:`~repro.pvr.minimum.HonestProver` subclass for the
    single-operator variants, a :class:`~repro.pvr.protocol.GraphProver`
    factory ``(keystore, plan, alpha, config) -> GraphProver`` for the
    graph variant; ``chooser`` is the cross-check's per-recipient export
    policy; ``batching=True`` swaps in the Section 3.8
    :class:`~repro.pvr.batching.BatchingProver`; ``gossip=False`` is the
    D4 ablation; ``alpha`` overrides the access policy for the graph
    variant (default: the paper's α); ``backend`` is an execution
    backend (or spec string such as ``"thread"`` / ``"process:4"``) that
    fans the per-provider crypto work out across workers.
    """

    def __init__(
        self,
        keystore: KeyStore,
        spec: PromiseSpec,
        *,
        round: int = 1,
        prover: object = None,
        chooser: Optional[ExportChooser] = None,
        batching: bool = False,
        gossip: bool = True,
        alpha: object = None,
        backend: execution.BackendSpec = None,
        random_bytes: Callable[[int], bytes] | None = None,
    ) -> None:
        self.keystore = keystore
        self.spec = spec
        self.round = round
        self.gossip = gossip
        self.batching = batching
        self.chooser = chooser
        self.alpha = alpha
        self.backend = execution.resolve_backend(backend)
        self.random_bytes = random_bytes
        self.variant = spec.resolve_variant()
        self.plan = spec.compile_plan()
        self.prover = prover  # resolved to an instance at commit time
        self.state = CREATED
        self.commitment: object = None
        self.report: Optional[SessionReport] = None
        self._crypto = CryptoCounters()
        for asn in spec.parties:
            keystore.register(asn)
        driver_cls = {
            VARIANT_MINIMUM: _MinimumDriver,
            VARIANT_EXISTENTIAL: _ExistentialDriver,
            VARIANT_GRAPH: _GraphDriver,
            VARIANT_CROSSCHECK: _CrossCheckDriver,
        }[self.variant]
        self._driver = driver_cls(self)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def config(self):
        """The variant-native round parameters."""
        return self._driver.config

    def _advance(self, phase: str, to_state: str) -> None:
        if self.state not in _NEXT[phase]:
            raise SessionError(
                f"cannot {phase} from state {self.state!r} "
                f"(expected {' or '.join(_NEXT[phase])})"
            )
        self.state = to_state

    def _counted(self, fn):
        sign0 = self.keystore.sign_count
        verify0 = self.keystore.verify_count
        try:
            return fn()
        finally:
            self._crypto = CryptoCounters(
                signatures=self._crypto.signatures
                + self.keystore.sign_count - sign0,
                verifications=self._crypto.verifications
                + self.keystore.verify_count - verify0,
            )

    # -- lifecycle -----------------------------------------------------------

    def announce(self, routes: Routes) -> Dict[str, object]:
        """Phase 1: each provider signs its (optional) route toward the
        prover.  Returns the announcements (keyed by provider, or by
        input-variable name for the graph variant)."""
        self._advance("announce", ANNOUNCED)
        return self._counted(lambda: self._driver.announce(routes))

    def commit(self) -> object:
        """Phase 2: the prover accepts announcements, evaluates its
        decision, and signs its binding commitment.  Returns the signed
        statement (commitment vector / Merkle root; the cross-check's
        binding objects are the attestations themselves, so it returns
        None)."""
        self._advance("commit", COMMITTED)
        self.commitment = self._counted(self._driver.commit)
        return self.commitment

    def disclose(self) -> Dict[str, object]:
        """Phase 3: the prover builds each party's view — receipts,
        disclosures, the export attestation.  Returns ``party -> view``,
        ready to be put on the wire."""
        self._advance("disclose", DISCLOSED)
        return self._counted(self._driver.disclose)

    def verify(
        self,
        received: Optional[Mapping[str, object]] = None,
        parties: Optional[Sequence[str]] = None,
    ) -> SessionReport:
        """Phase 4: every party runs its local checks; commitment
        statements are gossiped and cross-checked.

        ``received`` substitutes the views that actually arrived (the
        deployment layer's transport may have dropped or tampered some);
        parties with no view verify against an empty one.  ``parties``
        restricts verification to a subset (gossip is skipped then,
        since it is a collective step).
        """
        self._advance("verify", VERIFIED)
        report = self._counted(
            lambda: self._driver.verify(received=received, parties=parties)
        )
        self.report = report
        return report

    def adjudicate(self, judge: Optional[Judge] = None) -> Adjudication:
        """Phase 5: a third-party judge rules on all transferable
        evidence and unanswered complaints; the rulings are stored on the
        report."""
        self._advance("adjudicate", VERIFIED)
        if judge is None:
            judge = Judge(self.keystore)
        return self._counted(lambda: self.report.adjudicate(judge))

    def run(self, routes: Routes, judge: Optional[Judge] = None) -> SessionReport:
        """The whole lifecycle in one call; pass ``judge`` to adjudicate
        the outcome as well."""
        self.announce(routes)
        self.commit()
        self.disclose()
        report = self.verify()
        if judge is not None:
            self.adjudicate(judge)
        return report

    # -- shared helpers for drivers ------------------------------------------

    def _make_report(
        self,
        verdicts: Dict[str, Verdict],
        equivocations: Tuple,
        transcript: SessionTranscript,
        honest_chosen_length: Optional[int],
        confidentiality_ok: Optional[bool],
    ) -> SessionReport:
        return SessionReport(
            spec=self.spec,
            variant=self.variant,
            round=self.round,
            verdicts=verdicts,
            equivocations=equivocations,
            transcript=transcript,
            honest_chosen_length=honest_chosen_length,
            confidentiality_ok=confidentiality_ok,
            crypto=self._crypto,
        )


# -- drivers -------------------------------------------------------------------


class _SingleRecipientDriver:
    """Shared lifecycle for the two single-operator protocols (minimum
    and existential): both announce with the same primitive, distribute
    per-provider views plus one recipient view, gossip the commitment
    statement, and differ only in their prover and verify functions."""

    def __init__(self, session: VerificationSession) -> None:
        self.s = session
        self.config: RoundConfig = session.spec.round_config(session.round)
        self.routes: Dict[str, Optional[Route]] = {}
        self.announcements: Dict[str, Optional[SignedAnnouncement]] = {}
        self.transcript = None

    # variant-specific hooks ------------------------------------------------

    #: module-level ``fn(keystore, config, provider, announcement, view)``
    #: — picklable, so provider verification can fan out across workers
    _provider_verify_fn: Callable = None

    def _resolve_prover(self):
        raise NotImplementedError

    def _verify_recipient(self, view) -> Verdict:
        raise NotImplementedError

    def _empty_provider_view(self):
        raise NotImplementedError

    def _empty_recipient_view(self):
        raise NotImplementedError

    def _confidentiality_ok(self) -> Optional[bool]:
        return None

    # the shared lifecycle --------------------------------------------------

    def announce(self, routes: Routes) -> Dict[str, object]:
        self.routes = dict(routes)
        self.announcements = minimum_mod.announce(
            self.s.keystore, self.config, routes
        )
        return self.announcements

    def commit(self) -> object:
        prover = self._resolve_prover()
        self.transcript = prover.run(self.config, self.announcements)
        vector = self.transcript.recipient_view.vector
        if vector is None:
            for view in self.transcript.provider_views.values():
                if view.vector is not None:
                    vector = view.vector
                    break
        return vector.statement if vector is not None else None

    def disclose(self) -> Dict[str, object]:
        views: Dict[str, object] = {
            provider: self.transcript.provider_views[provider]
            for provider in self.config.providers
        }
        views[self.config.recipient] = self.transcript.recipient_view
        return views

    def verify(self, received=None, parties=None) -> SessionReport:
        config = self.config
        used = dict(received) if received is not None else self.disclose()
        check = tuple(parties) if parties is not None else (
            config.providers + (config.recipient,)
        )
        verdicts: Dict[str, Verdict] = {}
        tasks = [
            execution.CryptoTask(
                key=provider,
                fn=type(self)._provider_verify_fn,
                args=(
                    config,
                    provider,
                    self.announcements.get(provider),
                    used.get(provider, self._empty_provider_view()),
                ),
            )
            for provider in config.providers
            if provider in check
        ]
        for result in execution.run_tasks(
            self.s.backend, self.s.keystore, tasks
        ):
            verdicts[result.key] = result.value
        if config.recipient in check:
            verdicts[config.recipient] = self._verify_recipient(
                used.get(config.recipient, self._empty_recipient_view())
            )

        equivocations: Tuple = ()
        if self.s.gossip and parties is None:
            layers = {
                name: GossipLayer(name, self.s.keystore)
                for name in config.providers + (config.recipient,)
            }
            for name, layer in layers.items():
                view = used.get(name)
                vector = getattr(view, "vector", None)
                if vector is not None:
                    layer.observe(vector.statement)
            equivocations = tuple(exchange(layers.values()))

        transcript = SessionTranscript(
            variant=self.s.variant,
            round=self.s.round,
            announcements=dict(self.announcements),
            receipts={
                p: getattr(v, "receipt", None) for p, v in used.items()
            },
            commitment=self.s.commitment,
            views=used,
            detail=self.transcript,
        )
        return self.s._make_report(
            verdicts,
            equivocations,
            transcript,
            _honest_minimum_length(self.routes, config.max_length),
            self._confidentiality_ok(),
        )


class _MinimumDriver(_SingleRecipientDriver):
    """Section 3.3's bit-vector protocol behind the unified lifecycle."""

    _provider_verify_fn = staticmethod(minimum_mod.verify_as_provider)

    def _resolve_prover(self) -> HonestProver:
        if self.s.prover is None:
            cls = BatchingProver if self.s.batching else HonestProver
            self.s.prover = cls(self.s.keystore, self.s.random_bytes)
            self.s.prover.backend = self.s.backend
        return self.s.prover

    def _verify_recipient(self, view) -> Verdict:
        return minimum_mod.verify_as_recipient(
            self.s.keystore, self.config, view
        )

    def _empty_provider_view(self):
        return ProviderView()

    def _empty_recipient_view(self):
        return RecipientView()

    def _confidentiality_ok(self) -> bool:
        """Section 2.3's confidentiality property, measured on what the
        prover actually sent (leakage is a prover-side failure, so it is
        judged on the transcript, not the possibly-lossy wire)."""
        config = self.config
        for provider in config.providers:
            view = self.transcript.provider_views[provider]
            learned = leakage.facts_learned_by_provider(view)
            route = self.routes.get(provider)
            own_length = len(route.as_path) if route is not None else None
            baseline = leakage.baseline_facts_provider(config, own_length)
            if leakage.confidentiality_violations(
                learned, baseline, config.max_length
            ):
                return False
        recipient_learned = leakage.facts_learned_by_recipient(
            self.transcript.recipient_view
        )
        recipient_baseline = leakage.baseline_facts_recipient(
            config, _honest_minimum_length(self.routes, config.max_length)
        )
        return not leakage.confidentiality_violations(
            recipient_learned, recipient_baseline, config.max_length
        )


class _ExistentialDriver(_SingleRecipientDriver):
    """Section 3.2's single-bit protocol behind the unified lifecycle."""

    _provider_verify_fn = staticmethod(existential_mod.verify_as_provider)

    def _resolve_prover(self):
        if self.s.prover is None:
            self.s.prover = existential_mod.ExistentialProver(
                self.s.keystore, self.s.random_bytes
            )
            self.s.prover.backend = self.s.backend
        return self.s.prover

    def _verify_recipient(self, view) -> Verdict:
        return existential_mod.verify_as_recipient(
            self.s.keystore, self.config, view
        )

    def _empty_provider_view(self):
        return existential_mod.ExistentialProviderView()

    def _empty_recipient_view(self):
        return existential_mod.ExistentialRecipientView()


class _GraphDriver:
    """The generalized Sections 3.5-3.7 protocol over the compiled plan."""

    def __init__(self, session: VerificationSession) -> None:
        self.s = session
        self.config: GraphRoundConfig = session.spec.graph_config(
            session.round
        )
        self.plan = session.plan
        if session.alpha is None:
            from repro.pvr.access import paper_alpha

            session.alpha = paper_alpha(self.plan)
        self.routes: Dict[str, Optional[Route]] = {}
        self.announcements: Dict[str, Optional[SignedAnnouncement]] = {}
        self.receipts: Dict[str, object] = {}
        self.root_statement = None
        self.attestations: Dict[str, ExportAttestation] = {}

    def announce(self, routes: Routes) -> Dict[str, object]:
        """Announcements are built per input *variable* from the route
        its owning party provided this round."""
        self.routes = dict(routes)
        self.announcements = {}
        for vertex in self.plan.inputs():
            route = routes.get(vertex.party)
            if route is None:
                self.announcements[vertex.name] = None
                continue
            self.announcements[vertex.name] = make_announcement(
                self.s.keystore,
                route,
                vertex.party,
                self.s.spec.prover,
                self.s.round,
            )
        return self.announcements

    def commit(self) -> object:
        if self.s.prover is None:
            self.s.prover = GraphProver(
                self.s.keystore,
                self.plan,
                self.s.alpha,
                self.config,
                self.s.random_bytes,
            )
        elif callable(self.s.prover) and not isinstance(
            self.s.prover, GraphProver
        ):
            self.s.prover = self.s.prover(
                self.s.keystore, self.plan, self.s.alpha, self.config
            )
        self.receipts = self.s.prover.receive(self.announcements)
        self.root_statement = self.s.prover.commit_round()
        return self.root_statement

    def disclose(self) -> Dict[str, object]:
        """Recipients get their export attestation; input owners get
        their ``(announcement, receipt)`` pair (the rest of their view is
        pulled interactively through navigation)."""
        views: Dict[str, object] = {}
        for vertex in self.plan.outputs():
            attestation = self.s.prover.export_attestation(vertex.name)
            self.attestations[vertex.name] = attestation
            views[vertex.party] = attestation
        for vertex in self.plan.inputs():
            views[vertex.party] = (
                self.announcements.get(vertex.name),
                self.receipts.get(vertex.name),
            )
        return views

    def verify(self, received=None, parties=None) -> SessionReport:
        """``received`` substitutes what actually arrived at each party:
        an input owner's ``(announcement, receipt)`` pair (its own
        announcement plus the receipt the wire delivered) and a
        recipient's ``ExportAttestation``.  A party missing from
        ``received`` verifies with nothing in hand — a dropped
        attestation or receipt must surface in the verdicts."""
        keystore = self.s.keystore
        check = tuple(parties) if parties is not None else None
        verdicts: Dict[str, Verdict] = {}

        for vertex in self.plan.inputs():
            party = vertex.party
            if check is not None and party not in check:
                continue
            announcement = self.announcements.get(vertex.name)
            receipt = self.receipts.get(vertex.name)
            if received is not None:
                arrived = received.get(party)
                if isinstance(arrived, tuple) and len(arrived) == 2:
                    _, receipt = arrived
                else:
                    receipt = None
            if announcement is None:
                verdicts[party] = Verdict(verifier=party)
                continue
            navigator = Navigator(
                keystore, party, self.s.prover, self.root_statement
            )
            check_ops = owner_check_operators(
                navigator, vertex.name, announcement.route
            )
            verdicts[party] = verify_as_input_owner(
                navigator,
                self.config,
                vertex.name,
                announcement,
                receipt,
                check_operators=check_ops,
            )

        for vertex in self.plan.outputs():
            party = vertex.party
            if check is not None and party not in check:
                continue
            attestation = self.attestations[vertex.name]
            if received is not None:
                attestation = received.get(party)
            if attestation is None:
                verdicts[party] = Verdict(
                    verifier=party,
                    violations=(
                        Violation(
                            kind="missing-attestation",
                            accused=self.s.spec.prover,
                            complaint=Complaint(
                                accuser=party,
                                accused=self.s.spec.prover,
                                round=self.s.round,
                                claim="missing-attestation",
                            ),
                        ),
                    ),
                )
                continue
            navigator = Navigator(
                keystore, party, self.s.prover, self.root_statement
            )
            verdicts[party] = verify_as_output_recipient(
                navigator,
                self.config,
                vertex.name,
                attestation,
                derive_skeleton(self.plan, vertex.name),
                known_providers=self.s.spec.providers,
            )

        equivocations: Tuple = ()
        if self.s.gossip and parties is None:
            layers = {
                name: GossipLayer(name, keystore)
                for name in self.s.spec.providers + self.s.spec.recipients
            }
            for layer in layers.values():
                layer.observe(self.root_statement)
            equivocations = tuple(exchange(layers.values()))

        transcript = SessionTranscript(
            variant=self.s.variant,
            round=self.s.round,
            announcements=dict(self.announcements),
            receipts=dict(self.receipts),
            commitment=self.root_statement,
            views={
                vertex.party: self.attestations[vertex.name]
                for vertex in self.plan.outputs()
            },
            detail=self.s.prover,
        )
        return self.s._make_report(
            verdicts,
            equivocations,
            transcript,
            _honest_minimum_length(self.routes, self.config.max_length),
            None,
        )


class _CrossCheckDriver:
    """Promise 4: multi-recipient attestations, gossiped and compared."""

    def __init__(self, session: VerificationSession) -> None:
        self.s = session
        spec = session.spec
        # announcements reuse the single-recipient round parameters
        self.config: RoundConfig = RoundConfig(
            prover=spec.prover,
            providers=spec.providers,
            recipient=spec.recipients[0],
            round=session.round,
            max_length=spec.max_length,
            topic=spec.topic,
        )
        self.routes: Dict[str, Optional[Route]] = {}
        self.announcements: Dict[str, Optional[SignedAnnouncement]] = {}
        self.attestations: Dict[str, ExportAttestation] = {}

    def announce(self, routes: Routes) -> Dict[str, object]:
        self.routes = dict(routes)
        self.announcements = minimum_mod.announce(
            self.s.keystore, self.config, routes
        )
        return self.announcements

    def commit(self) -> object:
        """The binding objects of this variant are the signed export
        attestations themselves — one per recipient, as chosen by the
        export policy."""
        keystore = self.s.keystore
        spec = self.s.spec
        chooser = self.s.chooser or honest_chooser
        accepted = {
            name: ann
            for name, ann in self.announcements.items()
            if ann is not None
            and ann.verify(keystore)
            and 1 <= len(ann.route.as_path) <= spec.max_length
        }
        for recipient in spec.recipients:
            winner = chooser(recipient, accepted)
            if winner is None:
                self.attestations[recipient] = make_attestation(
                    keystore, spec.prover, recipient, self.s.round, None, None
                )
            else:
                self.attestations[recipient] = make_attestation(
                    keystore,
                    spec.prover,
                    recipient,
                    self.s.round,
                    winner.route.exported_by(spec.prover),
                    winner,
                )
        return None

    def disclose(self) -> Dict[str, object]:
        return dict(self.attestations)

    def verify(self, received=None, parties=None) -> SessionReport:
        keystore = self.s.keystore
        spec = self.s.spec
        used = dict(received) if received is not None else dict(
            self.attestations
        )
        check = tuple(parties) if parties is not None else spec.recipients
        everyone = list(used.values())
        verdicts: Dict[str, Verdict] = {}
        tasks = [
            execution.CryptoTask(
                key=recipient,
                fn=cross_check,
                args=(recipient, used[recipient], everyone),
            )
            for recipient in spec.recipients
            if recipient in check and recipient in used
        ]
        for result in execution.run_tasks(self.s.backend, keystore, tasks):
            verdicts[result.key] = result.value
        transcript = SessionTranscript(
            variant=self.s.variant,
            round=self.s.round,
            announcements=dict(self.announcements),
            receipts={},
            commitment=None,
            views=used,
            detail=dict(self.attestations),
        )
        return self.s._make_report(
            verdicts,
            (),
            transcript,
            _honest_minimum_length(self.routes, spec.max_length),
            None,
        )
