"""Round commitments: bit vectors, signed disclosures, export attestations.

Section 3.3's mechanism: the prover A computes bits ``b_1 .. b_L`` where
``b_i = 1`` iff at least one input route has AS-path length ``i`` or less,
commits to each bit, and signs the commitment vector so neighbors can
gossip it (equivocation detection).  Later A *selectively discloses*
individual bit openings: ``b_|ri|`` to each provider Ni, the whole vector
to the recipient B.

Every disclosure A makes is itself signed.  This is what turns a bad
opening from "something that failed to verify at my end" into
*transferable evidence*: a third party can check A's signature on the
disclosure and the mismatch against A's signed commitment without
trusting the accuser.

Exports are covered by a signed :class:`ExportAttestation` binding the
round, the exported route (or the explicit statement that nothing was
exported) and the provenance announcement being forwarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.bgp.route import Route
from repro.crypto.commitment import Commitment, Opening, commit, verify_opening
from repro.crypto.keystore import KeyStore
from repro.net.gossip import SignedStatement, make_statement
from repro.pvr.announcements import SignedAnnouncement
from repro.util.encoding import canonical_encode


def compute_length_bits(lengths: Iterable[int], max_length: int) -> Tuple[int, ...]:
    """The paper's bit vector: ``bits[i-1] = 1`` iff some input route has
    path length ≤ i, for i in 1..max_length."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    shortest = min(lengths, default=None)
    return tuple(
        1 if (shortest is not None and shortest <= i) else 0
        for i in range(1, max_length + 1)
    )


def bit_label(topic: str, index: int) -> str:
    """Commitment label for bit ``b_index`` (1-based, as in the paper)."""
    return f"{topic}:bit[{index}]"


@dataclass(frozen=True)
class CommittedBitVector:
    """The public half of a committed bit vector.

    ``statement`` is the author's signed gossip statement over the tuple
    of commitment digests — one signature covers the whole vector, and
    neighbors gossip the statement to detect split views.
    """

    author: str
    topic: str
    round: int
    commitments: Tuple[Commitment, ...]
    statement: SignedStatement

    def __len__(self) -> int:
        return len(self.commitments)

    def commitment(self, index: int) -> Commitment:
        """The commitment for bit ``b_index`` (1-based)."""
        if not 1 <= index <= len(self.commitments):
            raise IndexError(f"bit index {index} out of range")
        return self.commitments[index - 1]

    def is_consistent(self, keystore: KeyStore) -> bool:
        """Signature valid and statement matches the digests presented."""
        if not keystore.verify(
            self.author, self.statement.signed_bytes(), self.statement.signature
        ):
            return False
        expected = tuple(c.digest for c in self.commitments)
        return (
            self.statement.author == self.author
            and self.statement.topic == self.topic
            and self.statement.round == self.round
            and tuple(self.statement.value) == expected
        )

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "committed-bit-vector",
                self.author,
                self.topic,
                self.round,
                tuple(c.digest for c in self.commitments),
                self.statement,
            )
        )


@dataclass(frozen=True)
class BitVectorOpenings:
    """The private half, held by the prover until disclosure."""

    openings: Tuple[Opening, ...]

    def opening(self, index: int) -> Opening:
        if not 1 <= index <= len(self.openings):
            raise IndexError(f"bit index {index} out of range")
        return self.openings[index - 1]

    def bits(self) -> Tuple[int, ...]:
        return tuple(o.value for o in self.openings)


def commit_bits(
    keystore: KeyStore,
    author: str,
    topic: str,
    round: int,
    bits: Sequence[int],
    random_bytes: Callable[[int], bytes] | None = None,
) -> Tuple[CommittedBitVector, BitVectorOpenings]:
    """Commit to ``bits`` and sign the digest vector for gossip."""
    if not bits:
        raise ValueError("empty bit vector")
    commitments = []
    openings = []
    for index, bit in enumerate(bits, start=1):
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        c, o = commit(bit_label(topic, index), bit, random_bytes)
        commitments.append(c)
        openings.append(o)
    digests = tuple(c.digest for c in commitments)
    statement = make_statement(keystore, author, topic, round, digests)
    return (
        CommittedBitVector(
            author=author,
            topic=topic,
            round=round,
            commitments=tuple(commitments),
            statement=statement,
        ),
        BitVectorOpenings(openings=tuple(openings)),
    )


@dataclass(frozen=True)
class SignedDisclosure:
    """An opening disclosed by its author, under the author's signature.

    ``index`` is the 1-based bit position the opening claims to open.
    """

    author: str
    topic: str
    round: int
    index: int
    opening: Opening
    signature: bytes

    def signed_bytes(self) -> bytes:
        return disclosure_bytes(
            self.author, self.topic, self.round, self.index, self.opening
        )

    def verify_signature(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.author, self.signed_bytes(), self.signature)

    def matches(self, vector: CommittedBitVector) -> bool:
        """Does the opening open the vector's commitment at ``index``?"""
        try:
            commitment = vector.commitment(self.index)
        except IndexError:
            return False
        return verify_opening(commitment, self.opening)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "signed-disclosure",
                self.author,
                self.topic,
                self.round,
                self.index,
                self.opening,
                self.signature,
            )
        )


def disclosure_bytes(
    author: str, topic: str, round: int, index: int, opening: Opening
) -> bytes:
    return canonical_encode(
        ("pvr-disclosure", author, topic, round, index, opening)
    )


def make_disclosure(
    keystore: KeyStore,
    author: str,
    topic: str,
    round: int,
    index: int,
    opening: Opening,
) -> SignedDisclosure:
    signature = keystore.sign(
        author, disclosure_bytes(author, topic, round, index, opening)
    )
    return SignedDisclosure(
        author=author,
        topic=topic,
        round=round,
        index=index,
        opening=opening,
        signature=signature,
    )


@dataclass(frozen=True)
class ExportAttestation:
    """A's signed statement of what it exported to ``recipient`` this round.

    ``route=None`` attests that *nothing* was exported — making silent
    suppression as accountable as a wrong export.  ``provenance`` forwards
    the original provider's signed announcement (condition 1 of Section
    3.2); it is None exactly when ``route`` is None.
    """

    author: str
    recipient: str
    round: int
    route: Optional[Route]
    provenance: Optional[SignedAnnouncement]
    signature: bytes

    def signed_bytes(self) -> bytes:
        return attestation_bytes(
            self.author, self.recipient, self.round, self.route, self.provenance
        )

    def verify_signature(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.author, self.signed_bytes(), self.signature)

    def provenance_valid(self, keystore: KeyStore) -> bool:
        """Condition 1: the exported route was provided by the neighbor it
        claims, under that neighbor's signature, in this round."""
        if self.route is None:
            return self.provenance is None
        if self.provenance is None:
            return False
        if not self.provenance.verify(keystore):
            return False
        if self.provenance.recipient != self.author:
            return False
        if self.provenance.round != self.round:
            return False
        # the exported route must be the announced route as re-exported by
        # the author: same prefix, path = author prepended to announced path
        announced = self.provenance.route
        exported = self.route
        if exported.prefix != announced.prefix:
            return False
        expected_path = announced.as_path.prepend(self.author)
        return tuple(exported.as_path) == tuple(expected_path)

    def exported_length(self) -> Optional[int]:
        """Path length of the exported route *before* A's own prepend —
        the quantity the promise and the bit vector speak about."""
        if self.route is None:
            return None
        return max(len(self.route.as_path) - 1, 0)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "export-attestation",
                self.author,
                self.recipient,
                self.round,
                self.route,
                self.provenance,
                self.signature,
            )
        )


def attestation_bytes(
    author: str,
    recipient: str,
    round: int,
    route: Optional[Route],
    provenance: Optional[SignedAnnouncement],
) -> bytes:
    return canonical_encode(
        (
            "pvr-export",
            author,
            recipient,
            round,
            route.canonical() if route is not None else None,
            provenance.digest() if provenance is not None else None,
        )
    )


def make_attestation(
    keystore: KeyStore,
    author: str,
    recipient: str,
    round: int,
    route: Optional[Route],
    provenance: Optional[SignedAnnouncement],
) -> ExportAttestation:
    signature = keystore.sign(
        author, attestation_bytes(author, recipient, round, route, provenance)
    )
    return ExportAttestation(
        author=author,
        recipient=recipient,
        round=round,
        route=route,
        provenance=provenance,
        signature=signature,
    )
