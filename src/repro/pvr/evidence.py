"""Evidence: transferable proofs of promise violations (Section 2.3).

The *Evidence* property requires that a detected violation yields
something "that will convince a third party".  Every evidence class here
is self-contained: a judge holding only the public key directory can
validate it, because every component is signed by the accused (commitment
statements, disclosures, export attestations) or by a provider
(announcements) — the accuser contributes nothing that needs trusting.

The taxonomy, one class per way the minimum/existential protocols can be
violated:

================== =====================================================
Evidence            Proves the accused ...
================== =====================================================
Equivocation        signed two conflicting commitments for one slot
FalseBit            committed "no route ≤ L" while holding a receipt for
                    a route of length L
Monotonicity        committed a non-monotone length vector
ShorterAvailable    exported a route while committed bits show a
                    strictly shorter one was available
Suppression         attested "nothing exported" while committed bits say
                    a route was available
BadOpening          signed a disclosure that does not open its own
                    signed commitment
BadProvenance       attested an export whose provenance does not verify
================== =====================================================

Failures that are *detectable but not provable* (a peer simply not
sending something) are modelled as :class:`Complaint` and resolved
interactively by the judge — the accused can always disprove a false
complaint by producing the withheld message (the *Accuracy* property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.keystore import KeyStore
from repro.net.gossip import EquivocationRecord
from repro.pvr.announcements import Receipt, SignedAnnouncement
from repro.pvr.commitments import (
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
)


class Evidence:
    """Base class: a transferable accusation against ``accused``."""

    kind: str = "abstract"

    @property
    def accused(self) -> str:
        raise NotImplementedError

    def verify(self, keystore: KeyStore) -> bool:
        """Judge-side validation; True means the accusation is proven."""
        raise NotImplementedError


@dataclass(frozen=True)
class EquivocationEvidence(Evidence):
    """Two conflicting signed commitment statements for one slot."""

    record: EquivocationRecord
    kind = "equivocation"

    @property
    def accused(self) -> str:
        return self.record.first.author

    def verify(self, keystore: KeyStore) -> bool:
        return self.record.verify(keystore)


def _disclosure_grounded(
    disclosure: SignedDisclosure, vector: CommittedBitVector, keystore: KeyStore
) -> bool:
    """Common checks: consistent vector, same slot, valid signature, and
    the opening actually opens the committed bit."""
    return (
        vector.is_consistent(keystore)
        and disclosure.author == vector.author
        and disclosure.topic == vector.topic
        and disclosure.round == vector.round
        and disclosure.verify_signature(keystore)
        and disclosure.matches(vector)
    )


@dataclass(frozen=True)
class FalseBitEvidence(Evidence):
    """The accused committed ``b_L = 0`` while holding (and receipting) an
    announcement of a route with path length L."""

    vector: CommittedBitVector
    disclosure: SignedDisclosure
    announcement: SignedAnnouncement
    receipt: Receipt
    kind = "false-bit"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        if not _disclosure_grounded(self.disclosure, self.vector, keystore):
            return False
        if self.disclosure.opening.value != 0:
            return False
        if not self.announcement.verify(keystore):
            return False
        if self.announcement.recipient != self.accused:
            return False
        if self.announcement.round != self.vector.round:
            return False
        if not self.receipt.verify(keystore):
            return False
        if self.receipt.issuer != self.accused:
            return False
        if self.receipt.provider != self.announcement.origin:
            return False
        if self.receipt.round != self.vector.round:
            return False
        if self.receipt.announcement_digest != self.announcement.digest():
            return False
        # the receipted route has length L; an honest b_L must be 1
        return self.disclosure.index == len(self.announcement.route.as_path)


@dataclass(frozen=True)
class MonotonicityEvidence(Evidence):
    """Disclosures showing ``b_i = 1`` and ``b_j = 0`` with i < j."""

    vector: CommittedBitVector
    set_bit: SignedDisclosure
    clear_bit: SignedDisclosure
    kind = "monotonicity"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        return (
            _disclosure_grounded(self.set_bit, self.vector, keystore)
            and _disclosure_grounded(self.clear_bit, self.vector, keystore)
            and self.set_bit.opening.value == 1
            and self.clear_bit.opening.value == 0
            and self.set_bit.index < self.clear_bit.index
        )


@dataclass(frozen=True)
class ShorterAvailableEvidence(Evidence):
    """The accused exported a route of (pre-prepend) length L while its own
    committed bits admit a route of length j existed with j < L - slack.

    ``slack`` is the latitude of the publicly-agreed promise (0 for
    promise 1/2, k for promise 3); the judge validates the length gap
    against it.
    """

    vector: CommittedBitVector
    attestation: ExportAttestation
    disclosure: SignedDisclosure
    slack: int = 0
    kind = "shorter-available"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        if self.slack < 0:
            return False
        if not _disclosure_grounded(self.disclosure, self.vector, keystore):
            return False
        if self.disclosure.opening.value != 1:
            return False
        if not self.attestation.verify_signature(keystore):
            return False
        if self.attestation.author != self.accused:
            return False
        if self.attestation.round != self.vector.round:
            return False
        exported = self.attestation.exported_length()
        if exported is None:
            return False
        return self.disclosure.index < exported - self.slack


@dataclass(frozen=True)
class SuppressionEvidence(Evidence):
    """The accused attested that nothing was exported while its committed
    bits say a route was available."""

    vector: CommittedBitVector
    attestation: ExportAttestation
    disclosure: SignedDisclosure
    kind = "suppression"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        return (
            _disclosure_grounded(self.disclosure, self.vector, keystore)
            and self.disclosure.opening.value == 1
            and self.attestation.verify_signature(keystore)
            and self.attestation.author == self.accused
            and self.attestation.round == self.vector.round
            and self.attestation.route is None
        )


@dataclass(frozen=True)
class ExistsFalseBitEvidence(Evidence):
    """Existential protocol (Section 3.2): the accused committed ``b = 0``
    ("I received no route") while holding a receipt for an announcement.

    Unlike :class:`FalseBitEvidence` there is no length relation to check:
    any receipted announcement contradicts a zero existence bit.
    """

    vector: CommittedBitVector
    disclosure: SignedDisclosure
    announcement: SignedAnnouncement
    receipt: Receipt
    kind = "exists-false-bit"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        if not _disclosure_grounded(self.disclosure, self.vector, keystore):
            return False
        if self.disclosure.opening.value != 0:
            return False
        if not self.announcement.verify(keystore):
            return False
        if self.announcement.recipient != self.accused:
            return False
        if self.announcement.round != self.vector.round:
            return False
        return (
            self.receipt.verify(keystore)
            and self.receipt.issuer == self.accused
            and self.receipt.provider == self.announcement.origin
            and self.receipt.round == self.vector.round
            and self.receipt.announcement_digest == self.announcement.digest()
        )


@dataclass(frozen=True)
class ExistsPhantomEvidence(Evidence):
    """Existential protocol: the accused exported a route while committing
    ``b = 0`` ("no route received")."""

    vector: CommittedBitVector
    disclosure: SignedDisclosure
    attestation: ExportAttestation
    kind = "exists-phantom"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        return (
            _disclosure_grounded(self.disclosure, self.vector, keystore)
            and self.disclosure.opening.value == 0
            and self.attestation.verify_signature(keystore)
            and self.attestation.author == self.accused
            and self.attestation.round == self.vector.round
            and self.attestation.route is not None
        )


@dataclass(frozen=True)
class PhantomExportEvidence(Evidence):
    """The accused exported a route of (pre-prepend) length L while its own
    committed bit ``b_L`` says no route of length ≤ L existed — the export
    contradicts the commitment."""

    vector: CommittedBitVector
    attestation: ExportAttestation
    disclosure: SignedDisclosure
    kind = "phantom-export"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        if not _disclosure_grounded(self.disclosure, self.vector, keystore):
            return False
        if self.disclosure.opening.value != 0:
            return False
        if not self.attestation.verify_signature(keystore):
            return False
        if self.attestation.author != self.accused:
            return False
        if self.attestation.round != self.vector.round:
            return False
        exported = self.attestation.exported_length()
        if exported is None:
            return False
        # honest bits are monotone, so b_exported = 0 contradicts the
        # export for any disclosed clear bit at index >= exported length
        return self.disclosure.index >= exported


@dataclass(frozen=True)
class BadOpeningEvidence(Evidence):
    """The accused signed a disclosure that does not open its own signed
    commitment — proof of a garbage reveal."""

    vector: CommittedBitVector
    disclosure: SignedDisclosure
    kind = "bad-opening"

    @property
    def accused(self) -> str:
        return self.vector.author

    def verify(self, keystore: KeyStore) -> bool:
        if not self.vector.is_consistent(keystore):
            return False
        if self.disclosure.author != self.vector.author:
            return False
        if (self.disclosure.topic, self.disclosure.round) != (
            self.vector.topic,
            self.vector.round,
        ):
            return False
        if not self.disclosure.verify_signature(keystore):
            return False
        return not self.disclosure.matches(self.vector)


@dataclass(frozen=True)
class BadProvenanceEvidence(Evidence):
    """The accused attested an export whose provenance chain is invalid
    (condition 1 of Section 3.2)."""

    attestation: ExportAttestation
    kind = "bad-provenance"

    @property
    def accused(self) -> str:
        return self.attestation.author

    def verify(self, keystore: KeyStore) -> bool:
        if not self.attestation.verify_signature(keystore):
            return False
        return not self.attestation.provenance_valid(keystore)


@dataclass(frozen=True)
class UnequalTreatmentEvidence(Evidence):
    """Promise 4 ("the route you get is no longer than what I tell
    anybody else"): two attestations by the same prover for the same
    round show one recipient served a strictly shorter route than the
    victim — or served at all while the victim got nothing.

    Both attestations carry the prover's signature, so the pair is
    transferable: recipients obtain each other's attestations by gossip.
    """

    victim_attestation: ExportAttestation
    other_attestation: ExportAttestation
    kind = "unequal-treatment"

    @property
    def accused(self) -> str:
        return self.victim_attestation.author

    def verify(self, keystore: KeyStore) -> bool:
        mine, other = self.victim_attestation, self.other_attestation
        if mine.author != other.author:
            return False
        if mine.round != other.round:
            return False
        if mine.recipient == other.recipient:
            return False
        if not mine.verify_signature(keystore):
            return False
        if not other.verify_signature(keystore):
            return False
        other_len = other.exported_length()
        if other_len is None:
            return False  # the other recipient got nothing: no advantage
        mine_len = mine.exported_length()
        if mine_len is None:
            return True  # others served while the victim got nothing
        return mine_len > other_len


@dataclass(frozen=True)
class Complaint:
    """A detectable-but-not-provable accusation (a withheld message).

    ``claim`` names what is missing (e.g. ``"missing-disclosure"``);
    ``context`` carries whatever the accuser received.  The judge resolves
    complaints interactively: the accused is asked to produce the missing
    item, and an honest accused always can (Accuracy).
    """

    accuser: str
    accused: str
    round: int
    claim: str
    context: tuple = ()


@dataclass(frozen=True)
class Violation:
    """A verifier-local finding: what went wrong and the proof (if any)."""

    kind: str
    accused: str
    evidence: Optional[Evidence] = None
    complaint: Optional[Complaint] = None
    detail: str = ""

    def transferable(self) -> bool:
        return self.evidence is not None


@dataclass(frozen=True)
class Verdict:
    """One verifier's conclusion for one protocol round."""

    verifier: str
    violations: Tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def evidence(self) -> Tuple[Evidence, ...]:
        return tuple(
            v.evidence for v in self.violations if v.evidence is not None
        )

    def complaints(self) -> Tuple[Complaint, ...]:
        return tuple(
            v.complaint for v in self.violations if v.complaint is not None
        )
