"""Scenario runner and the four PVR properties as executable checks.

Ties the protocol pieces together for experiments: given per-provider
routes and a (possibly Byzantine) prover, run a full round — announce,
prove, verify at every neighbor, gossip — and evaluate the paper's four
properties (Section 2.3) on the outcome:

* **Detection** — a deviation visible to a correct neighbor produces at
  least one non-OK verdict or an equivocation record;
* **Evidence** — every transferable evidence object convinces the judge;
* **Accuracy** — honest runs produce no violations and no upholdable
  complaints;
* **Confidentiality** — no party's learned facts exceed its baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.net.gossip import EquivocationRecord
from repro.pvr import leakage
from repro.pvr.evidence import Complaint, Evidence, Verdict
from repro.pvr.judge import Judge
from repro.pvr.minimum import HonestProver, RoundConfig, RoundTranscript


@dataclass
class ScenarioResult:
    """Everything observable after one verification round."""

    config: RoundConfig
    transcript: RoundTranscript
    verdicts: Dict[str, Verdict]
    equivocations: Tuple[EquivocationRecord, ...]
    honest_chosen_length: Optional[int]

    # -- aggregates ---------------------------------------------------------

    def violation_found(self) -> bool:
        return bool(self.equivocations) or any(
            not v.ok for v in self.verdicts.values()
        )

    def detecting_parties(self) -> Tuple[str, ...]:
        return tuple(
            sorted(name for name, v in self.verdicts.items() if not v.ok)
        )

    def all_evidence(self) -> Tuple[Evidence, ...]:
        found: List[Evidence] = []
        for verdict in self.verdicts.values():
            found.extend(verdict.evidence())
        from repro.pvr.evidence import EquivocationEvidence

        found.extend(EquivocationEvidence(record=r) for r in self.equivocations)
        return tuple(found)

    def all_complaints(self) -> Tuple[Complaint, ...]:
        found: List[Complaint] = []
        for verdict in self.verdicts.values():
            found.extend(verdict.complaints())
        return tuple(found)


def run_minimum_scenario(
    keystore: KeyStore,
    config: RoundConfig,
    routes: Mapping[str, Optional[Route]],
    prover: HonestProver | None = None,
    gossip: bool = True,
) -> ScenarioResult:
    """One full round of the Section 3.3 protocol.

    ``routes`` maps each provider to the route it announces (None =
    silent).  ``gossip=False`` is the D4 ablation: neighbors skip the
    commitment exchange, so equivocation goes unnoticed.

    This is the legacy entry point; the round runs through the unified
    :class:`repro.pvr.engine.VerificationSession` (variant ``minimum``)
    and is adapted back to a :class:`ScenarioResult`.
    """
    from repro.promises.spec import ShortestRoute, WithinKHops
    from repro.pvr.engine import VerificationSession
    from repro.pvr.session import PromiseSpec

    promise = WithinKHops(config.slack) if config.slack else ShortestRoute()
    spec = PromiseSpec(
        promise=promise,
        prover=config.prover,
        providers=config.providers,
        recipients=(config.recipient,),
        variant="minimum",
        max_length=config.max_length,
        topic=config.topic,
    )
    session = VerificationSession(
        keystore, spec, round=config.round, prover=prover, gossip=gossip
    )
    report = session.run(routes)
    return ScenarioResult(
        config=config,
        transcript=report.transcript.detail,
        verdicts=dict(report.verdicts),
        equivocations=report.equivocations,
        honest_chosen_length=report.honest_chosen_length,
    )


# -- the four properties -------------------------------------------------------


def detection_holds(result: ScenarioResult, deviated: bool) -> bool:
    """Detection (and its converse half of Accuracy): a deviation is
    flagged somewhere iff one occurred."""
    return result.violation_found() == deviated


def evidence_holds(result: ScenarioResult, judge: Judge) -> bool:
    """Every piece of transferable evidence convinces the judge."""
    evidence = result.all_evidence()
    return all(judge.validate(item) for item in evidence)


def accuracy_holds(result: ScenarioResult) -> bool:
    """No correct AS detects a violation in an honest run."""
    return not result.violation_found() and not result.all_complaints()


def confidentiality_holds(
    result: ScenarioResult, routes: Mapping[str, Optional[Route]]
) -> bool:
    """No party learned facts beyond its unsecured-system baseline."""
    config = result.config
    for provider in config.providers:
        view = result.transcript.provider_views[provider]
        learned = leakage.facts_learned_by_provider(view)
        route = routes.get(provider)
        own_length = len(route.as_path) if route is not None else None
        baseline = leakage.baseline_facts_provider(config, own_length)
        if leakage.confidentiality_violations(
            learned, baseline, config.max_length
        ):
            return False
    recipient_learned = leakage.facts_learned_by_recipient(
        result.transcript.recipient_view
    )
    recipient_baseline = leakage.baseline_facts_recipient(
        config, result.honest_chosen_length
    )
    return not leakage.confidentiality_violations(
        recipient_learned, recipient_baseline, config.max_length
    )
