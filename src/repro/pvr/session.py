"""Session-level types for the unified verification engine.

The paper's headline claim is that *one* mechanism — commitments,
evidence and collective verification under an access policy α — covers
every promise, from the existential bit (Section 3.2) through the
minimum operator (Section 3.3) to arbitrary route-flow graphs (Sections
3.5-3.7) and the cross-recipient promise 4.  This module defines the
shared vocabulary that makes that true at the API level:

* :class:`PromiseSpec` — *what* is being verified: a promise template
  from :mod:`repro.promises.spec`, the parties, and the protocol
  parameters.  A spec compiles to a :class:`~repro.rfg.graph.RouteFlowGraph`
  plan (the paper's Section 4 compiler path) and resolves to the protocol
  variant that verifies it;
* :class:`SessionTranscript` — the distributed record of one session:
  announcements, receipts, the signed commitment, and every party's view;
* :class:`SessionReport` — the outcome: per-party verdicts, equivocation
  records, leakage accounting, crypto-cost counters and (optionally) the
  judge's adjudication of all transferable evidence;
* :class:`Adjudication` — the judge's rulings, kept with the report so a
  session's audit trail is a single object.

The engine itself lives in :mod:`repro.pvr.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.net.gossip import EquivocationRecord
from repro.promises.spec import (
    ExistentialPromise,
    NoLongerThanOthers,
    Promise,
    ShortestFromSubset,
    ShortestRoute,
    WithinKHops,
)
from repro.pvr.evidence import (
    Complaint,
    EquivocationEvidence,
    Evidence,
    Verdict,
)
from repro.pvr.judge import ComplaintRuling, Judge
from repro.pvr.minimum import DEFAULT_MAX_LENGTH, RoundConfig
from repro.pvr.minimum import TOPIC as MINIMUM_TOPIC
from repro.pvr.protocol import GraphRoundConfig
from repro.rfg.graph import RouteFlowGraph

#: The four protocol variants one spec can resolve to.
VARIANT_MINIMUM = "minimum"
VARIANT_EXISTENTIAL = "existential"
VARIANT_GRAPH = "graph"
VARIANT_CROSSCHECK = "crosscheck"

VARIANTS = (
    VARIANT_MINIMUM,
    VARIANT_EXISTENTIAL,
    VARIANT_GRAPH,
    VARIANT_CROSSCHECK,
)


class SessionError(RuntimeError):
    """A lifecycle method was called out of order, or the spec cannot be
    served by the requested protocol variant."""


@dataclass(frozen=True)
class PromiseSpec:
    """The complete, protocol-independent description of one contract.

    ``promise`` is a template from :mod:`repro.promises.spec`; ``prover``
    is the AS that made it, ``providers`` the neighbors feeding it routes
    and ``recipients`` the neighbors owed the output (promise 4 needs at
    least two).  ``variant`` selects the verifying protocol; ``"auto"``
    picks the cheapest variant that covers the promise.  ``plan``
    optionally overrides the compiled route-flow graph with a hand-built
    one (e.g. Figure 2's two-operator graph).
    """

    promise: Promise
    prover: str
    providers: Tuple[str, ...]
    recipients: Tuple[str, ...] = ("B",)
    variant: str = "auto"
    max_length: int = DEFAULT_MAX_LENGTH
    topic: str = MINIMUM_TOPIC
    plan: Optional[RouteFlowGraph] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "providers", tuple(self.providers))
        object.__setattr__(self, "recipients", tuple(self.recipients))
        if not isinstance(self.promise, Promise):
            raise TypeError("promise must be a repro.promises.spec.Promise")
        if not self.providers:
            raise ValueError("need at least one provider")
        if not self.recipients:
            raise ValueError("need at least one recipient")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.variant not in VARIANTS + ("auto",):
            raise ValueError(f"unknown variant {self.variant!r}")
        overlap = set(self.recipients) & set(self.providers)
        if self.prover in self.providers or self.prover in self.recipients:
            raise ValueError("prover cannot be its own neighbor")
        if overlap:
            raise ValueError(f"parties on both sides: {sorted(overlap)}")

    # -- derived parameters --------------------------------------------------

    @property
    def slack(self) -> int:
        """Promise 3's latitude k; zero for exact-shortest promises."""
        return self.promise.k if isinstance(self.promise, WithinKHops) else 0

    @property
    def recipient(self) -> str:
        return self.recipients[0]

    @property
    def parties(self) -> Tuple[str, ...]:
        return (self.prover,) + self.providers + self.recipients

    def resolve_variant(self) -> str:
        """The protocol variant that verifies this promise.

        Explicit ``variant`` wins.  Otherwise: promise 4 (or any
        multi-recipient spec) needs the cross-check; an existential
        promise over the full provider set runs the single-bit protocol;
        shortest-route promises (promises 1-3, or promise 2 over the
        full set) run the minimum protocol; everything else — subset
        promises, hand-built plans — runs the generalized graph protocol.
        """
        if self.variant != "auto":
            self._check_variant(self.variant)
            return self.variant
        if isinstance(self.promise, NoLongerThanOthers) or len(self.recipients) > 1:
            self._check_variant(VARIANT_CROSSCHECK)
            return VARIANT_CROSSCHECK
        if self.plan is not None:
            return VARIANT_GRAPH
        if isinstance(self.promise, ExistentialPromise):
            if set(self.promise.subset) == set(self.providers):
                return VARIANT_EXISTENTIAL
            return VARIANT_GRAPH
        if isinstance(self.promise, (ShortestRoute, WithinKHops)):
            return VARIANT_MINIMUM
        if isinstance(self.promise, ShortestFromSubset):
            if set(self.promise.subset) == set(self.providers):
                return VARIANT_MINIMUM
            return VARIANT_GRAPH
        return VARIANT_GRAPH

    def _check_variant(self, variant: str) -> None:
        if variant == VARIANT_CROSSCHECK:
            if len(self.recipients) < 2:
                raise SessionError("the cross-check needs >= 2 recipients")
        elif len(self.recipients) != 1:
            raise SessionError(
                f"the {variant} protocol serves exactly one recipient"
            )

    def compile_plan(self) -> RouteFlowGraph:
        """The route-flow graph implementing this promise (Section 4's
        compiler path); a hand-built ``plan`` short-circuits compilation."""
        if self.plan is not None:
            return self.plan
        from repro.rfg.compiler import compile_promise

        return compile_promise(self.promise, self.providers,
                               recipient=self.recipient)

    def round_config(self, round: int) -> RoundConfig:
        """The single-recipient protocol parameters for one round."""
        return RoundConfig(
            prover=self.prover,
            providers=self.providers,
            recipient=self.recipient,
            round=round,
            max_length=self.max_length,
            topic=self.topic,
            slack=self.slack,
        )

    def graph_config(self, round: int) -> GraphRoundConfig:
        """The generalized-protocol parameters for one round."""
        return GraphRoundConfig(
            prover=self.prover, round=round, max_length=self.max_length
        )


@dataclass(frozen=True)
class SessionTranscript:
    """The complete distributed record of one verification session.

    ``announcements`` is keyed by provider name (or input-variable name
    for the graph variant); ``views`` maps each verifying party to what
    the prover sent it — a ``ProviderView``/``RecipientView`` for the
    single-operator protocols, an ``ExportAttestation`` for the
    cross-check, a ``(announcement, receipt)`` pair for graph input
    owners.  ``commitment`` is the round's signed binding statement (the
    commitment-vector statement or the Merkle root), and ``detail`` the
    variant-native transcript for code that needs the raw protocol
    objects.
    """

    variant: str
    round: int
    announcements: Mapping[str, object]
    receipts: Mapping[str, object]
    commitment: object
    views: Mapping[str, object]
    detail: object = None


@dataclass(frozen=True)
class CryptoCounters:
    """Keystore operation deltas attributable to one session."""

    signatures: int = 0
    verifications: int = 0


@dataclass(frozen=True)
class Adjudication:
    """The judge's rulings over a report's full evidence trail."""

    evidence_rulings: Tuple[Tuple[Evidence, bool], ...]
    complaint_rulings: Tuple[Tuple[Complaint, ComplaintRuling], ...]

    def evidence_ok(self) -> bool:
        """Every piece of transferable evidence convinced the judge."""
        return all(valid for _, valid in self.evidence_rulings)

    def guilty(self) -> Tuple[Evidence, ...]:
        return tuple(e for e, valid in self.evidence_rulings if valid)

    def upheld_complaints(self) -> Tuple[Complaint, ...]:
        return tuple(
            c for c, ruling in self.complaint_rulings if ruling.upheld()
        )


@dataclass
class SessionReport:
    """Everything observable after one session, whatever the variant."""

    spec: PromiseSpec
    variant: str
    round: int
    verdicts: Dict[str, Verdict]
    equivocations: Tuple[EquivocationRecord, ...]
    transcript: SessionTranscript
    honest_chosen_length: Optional[int]
    confidentiality_ok: Optional[bool]
    crypto: CryptoCounters
    adjudication: Optional[Adjudication] = None

    # -- aggregates ---------------------------------------------------------

    def ok(self) -> bool:
        return not self.violation_found() and not self.all_complaints()

    def violation_found(self) -> bool:
        return bool(self.equivocations) or any(
            not v.ok for v in self.verdicts.values()
        )

    def detecting_parties(self) -> Tuple[str, ...]:
        return tuple(
            sorted(name for name, v in self.verdicts.items() if not v.ok)
        )

    def all_evidence(self) -> Tuple[Evidence, ...]:
        found: List[Evidence] = []
        for verdict in self.verdicts.values():
            found.extend(verdict.evidence())
        found.extend(EquivocationEvidence(record=r) for r in self.equivocations)
        return tuple(found)

    def all_complaints(self) -> Tuple[Complaint, ...]:
        found: List[Complaint] = []
        for verdict in self.verdicts.values():
            found.extend(verdict.complaints())
        return tuple(found)

    # -- the four properties, report-level ----------------------------------

    @property
    def accuracy_ok(self) -> bool:
        """No correct AS flagged anything (the honest-run property)."""
        return self.ok()

    def detection_ok(self, deviated: bool) -> bool:
        """A deviation was flagged somewhere iff one occurred."""
        return self.violation_found() == deviated

    def adjudicate(self, judge: Judge) -> Adjudication:
        """Run every evidence object and complaint past the judge.

        Complaints are resolved *unanswered* — the accused prover is not
        consulted — which models the worst case for the accused; an
        honest prover exonerates itself by producing the withheld message
        (see :meth:`repro.pvr.judge.Judge.resolve_complaint`).
        """
        evidence_rulings = tuple(
            (item, judge.validate(item)) for item in self.all_evidence()
        )
        complaint_rulings = tuple(
            (item, judge.resolve_complaint(item, None))
            for item in self.all_complaints()
        )
        self.adjudication = Adjudication(
            evidence_rulings=evidence_rulings,
            complaint_rulings=complaint_rulings,
        )
        return self.adjudication
