"""Promise 4: cross-recipient consistency (paper Section 2, promise 4).

"The route you get is no longer than what I tell anybody else" relates
A's *outputs to different neighbors* rather than inputs to outputs, so it
cannot be checked within one recipient's round view.  The mechanism is
the same as commitment gossip: export attestations are signed by A, so
recipients exchange them and compare lengths locally.  A recipient
holding its own attestation plus a strictly-shorter one addressed to
someone else has transferable :class:`UnequalTreatmentEvidence`.

:func:`run_promise4_scenario` drives a multi-recipient round: A (honest
or discriminating) serves several recipients, attestations are gossiped,
and each recipient cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.pvr.announcements import SignedAnnouncement
from repro.pvr.commitments import ExportAttestation
from repro.pvr.evidence import UnequalTreatmentEvidence, Verdict, Violation


def cross_check(
    keystore: KeyStore,
    me: str,
    mine: ExportAttestation,
    others: Sequence[ExportAttestation],
) -> Verdict:
    """One recipient's promise-4 check against gossiped attestations.

    Attestations that fail signature checks or belong to other rounds or
    provers are ignored (a Byzantine gossiper must not be able to frame
    an honest prover with fabricated attestations).
    """
    violations: List[Violation] = []
    for other in others:
        if other.recipient == me:
            continue
        if other.author != mine.author or other.round != mine.round:
            continue
        if not other.verify_signature(keystore):
            continue
        evidence = UnequalTreatmentEvidence(
            victim_attestation=mine, other_attestation=other
        )
        if evidence.verify(keystore):
            violations.append(
                Violation(
                    kind="unequal-treatment",
                    accused=mine.author,
                    evidence=evidence,
                    detail=(
                        f"{other.recipient} was served "
                        f"{other.exported_length()} while {me} got "
                        f"{mine.exported_length()}"
                    ),
                )
            )
    return Verdict(verifier=me, violations=tuple(violations))


# An export policy decides what each recipient is served this round:
# recipient name -> the winning announcement (or None to serve nothing).
ExportChooser = Callable[
    [str, Dict[str, SignedAnnouncement]], Optional[SignedAnnouncement]
]


def honest_chooser(
    recipient: str, accepted: Dict[str, SignedAnnouncement]
) -> Optional[SignedAnnouncement]:
    """Serve everyone the same (shortest) route."""
    if not accepted:
        return None
    return min(accepted.values(), key=lambda a: (len(a.route.as_path), a.origin))


def discriminating_chooser(favored: str) -> ExportChooser:
    """Serve ``favored`` the shortest route and everyone else the longest
    — the classic promise-4 violation."""

    def choose(recipient, accepted):
        if not accepted:
            return None
        key = lambda a: (len(a.route.as_path), a.origin)
        if recipient == favored:
            return min(accepted.values(), key=key)
        return max(accepted.values(), key=key)

    return choose


def withholding_chooser(starved: str) -> ExportChooser:
    """Serve everyone except ``starved``."""

    def choose(recipient, accepted):
        if recipient == starved or not accepted:
            return None
        return min(accepted.values(), key=lambda a: (len(a.route.as_path), a.origin))

    return choose


@dataclass
class Promise4Result:
    attestations: Dict[str, ExportAttestation]
    verdicts: Dict[str, Verdict]

    def violation_found(self) -> bool:
        return any(not v.ok for v in self.verdicts.values())

    def detecting_parties(self) -> Tuple[str, ...]:
        return tuple(sorted(n for n, v in self.verdicts.items() if not v.ok))


def run_promise4_scenario(
    keystore: KeyStore,
    prover: str,
    providers: Sequence[str],
    recipients: Sequence[str],
    routes: Mapping[str, Optional[Route]],
    round: int,
    chooser: ExportChooser = honest_chooser,
    max_length: int = 16,
) -> Promise4Result:
    """A multi-recipient round followed by full attestation gossip.

    This is the legacy entry point; the round runs through the unified
    :class:`repro.pvr.engine.VerificationSession` (variant
    ``crosscheck``) and is adapted back to a :class:`Promise4Result`.
    """
    if len(recipients) < 2:
        raise ValueError("promise 4 needs at least two recipients")
    from repro.promises.spec import NoLongerThanOthers
    from repro.pvr.engine import VerificationSession
    from repro.pvr.session import PromiseSpec

    spec = PromiseSpec(
        promise=NoLongerThanOthers(),
        prover=prover,
        providers=tuple(providers),
        recipients=tuple(recipients),
        variant="crosscheck",
        max_length=max_length,
    )
    session = VerificationSession(keystore, spec, round=round, chooser=chooser)
    report = session.run(routes)
    return Promise4Result(
        attestations=dict(report.transcript.detail),
        verdicts=dict(report.verdicts),
    )
