"""Byzantine prover behaviours.

"We adopt a conservative threat model and assume that an unknown subset
of the networks is Byzantine and can behave arbitrarily" (Section 3).
Each class here is an :class:`repro.pvr.minimum.HonestProver` subclass
deviating in exactly one documented way, so experiments can attribute
every detection to a specific attack:

=====================  ==========================  =====================
Adversary              Attack                      Detected by
=====================  ==========================  =====================
LongerRouteProver      exports a non-minimal       B (shorter-available)
                       route, honest bits
UnderstatingProver     zeroes the bits below its   some Ni (false-bit)
                       chosen export's length
SuppressingProver      exports nothing, honest     B (suppression)
                       bits
LyingSuppressor        exports nothing, all-zero   some Ni (false-bit)
                       bits
NonMonotoneProver      commits a non-monotone      B (monotonicity)
                       vector
EquivocatingProver     different commitments to    gossip (equivocation)
                       providers and recipient
BadOpeningProver       signed openings that do     any receiver
                       not match the commitments   (bad-opening)
NoReceiptProver        withholds receipts          Ni (complaint)
NoDisclosureProver     withholds Ni disclosures    Ni (complaint)
ForgedProvenanceProver exports a fabricated route  B (bad-provenance)
LeakyProver            honest outcome, but sends   confidentiality
                       every bit to every Ni       checker (leakage)
=====================  ==========================  =====================

The table is itself exercised by the FIG1 benchmark: every adversary class
must be detected by the parties the paper predicts, with transferable
evidence wherever the mechanism admits it.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.commitment import Opening
from repro.pvr.announcements import Receipt, SignedAnnouncement
from repro.pvr.commitments import commit_bits, make_disclosure
from repro.pvr.minimum import (
    HonestProver,
    ProviderView,
    RecipientView,
    RoundConfig,
    RoundTranscript,
)


class LongerRouteProver(HonestProver):
    """Exports the *longest* available route while committing honestly.

    The paper's canonical violation: B sees bits admitting a shorter
    route and obtains shorter-available evidence.
    """

    def choose_winner(self, config, accepted):
        if not accepted:
            return None
        return max(
            accepted.values(), key=lambda a: (len(a.route.as_path), a.origin)
        )


class UnderstatingProver(HonestProver):
    """Exports a longer route *and* forges the bit vector to match,
    pretending the shorter routes were never received.

    B's checks pass; the cheated Ni's disclosure shows b_|ri| = 0, which
    together with A's receipt is transferable false-bit evidence.
    """

    def choose_winner(self, config, accepted):
        if not accepted:
            return None
        return max(
            accepted.values(), key=lambda a: (len(a.route.as_path), a.origin)
        )

    def compute_bits(self, config, accepted):
        winner = self.choose_winner(config, accepted)
        if winner is None:
            return (0,) * config.max_length
        chosen = len(winner.route.as_path)
        return tuple(
            1 if i >= chosen else 0 for i in range(1, config.max_length + 1)
        )


class SuppressingProver(HonestProver):
    """Receives routes but exports nothing, with honest bits."""

    def choose_winner(self, config, accepted):
        return None


class LyingSuppressor(HonestProver):
    """Exports nothing and commits an all-zero vector ("I got nothing")."""

    def choose_winner(self, config, accepted):
        return None

    def compute_bits(self, config, accepted):
        return (0,) * config.max_length


class NonMonotoneProver(HonestProver):
    """Commits a vector with a hole: the minimum bit set but a later bit
    cleared — internally inconsistent regardless of inputs."""

    def compute_bits(self, config, accepted):
        honest = super().compute_bits(config, accepted)
        bits = list(honest)
        first_set = next((i for i, b in enumerate(bits) if b == 1), None)
        if first_set is not None and first_set + 1 < len(bits):
            bits[first_set + 1] = 0
        return tuple(bits)


class EquivocatingProver(HonestProver):
    """Shows providers an honest commitment but shows B an all-zero one
    (covering a suppressed export).  Caught only when the neighbors
    gossip — the D4 ablation disables gossip to show the attack
    succeeding."""

    def run(self, config: RoundConfig, announcements) -> RoundTranscript:
        transcript = super().run(config, announcements)
        zero_vector, zero_openings = commit_bits(
            self.keystore, config.prover, config.topic, config.round,
            (0,) * config.max_length, self.random_bytes,
        )
        recipient_view = RecipientView(
            vector=zero_vector,
            attestation=self._none_attestation(config),
            disclosures=tuple(
                make_disclosure(
                    self.keystore, config.prover, config.topic, config.round,
                    index, zero_openings.opening(index),
                )
                for index in range(1, config.max_length + 1)
            ),
        )
        return RoundTranscript(
            config=config,
            announcements=transcript.announcements,
            provider_views=transcript.provider_views,
            recipient_view=recipient_view,
        )

    def _none_attestation(self, config: RoundConfig):
        from repro.pvr.commitments import make_attestation

        return make_attestation(
            self.keystore, config.prover, config.recipient, config.round,
            None, None,
        )


class BadOpeningProver(HonestProver):
    """Discloses openings whose value is flipped: the signature is A's but
    the opening does not match A's own commitment."""

    def build_provider_view(self, config, provider, announcement, receipt,
                            vector, openings):
        view = super().build_provider_view(
            config, provider, announcement, receipt, vector, openings
        )
        if view.disclosure is None:
            return view
        original = view.disclosure.opening
        flipped = Opening(
            label=original.label, value=1 - original.value, nonce=original.nonce
        )
        forged = make_disclosure(
            self.keystore, config.prover, config.topic, config.round,
            view.disclosure.index, flipped,
        )
        return ProviderView(
            receipt=view.receipt, vector=view.vector, disclosure=forged
        )


class NoReceiptProver(HonestProver):
    """Never acknowledges announcements."""

    def issue_receipt(self, config, announcement) -> Optional[Receipt]:
        return None


class NoDisclosureProver(HonestProver):
    """Withholds the bit disclosure from every provider."""

    def build_provider_view(self, config, provider, announcement, receipt,
                            vector, openings):
        view = super().build_provider_view(
            config, provider, announcement, receipt, vector, openings
        )
        return ProviderView(receipt=view.receipt, vector=view.vector,
                            disclosure=None)


class ForgedProvenanceProver(HonestProver):
    """Exports a short route nobody announced, with self-made provenance.

    The forged announcement cannot carry the claimed provider's signature,
    so B obtains bad-provenance evidence.
    """

    def __init__(self, keystore, forged_route, claimed_provider,
                 random_bytes=None) -> None:
        super().__init__(keystore, random_bytes)
        self.forged_route = forged_route
        self.claimed_provider = claimed_provider

    def choose_winner(self, config, accepted):
        from repro.pvr.announcements import announcement_bytes

        # sign the forged announcement with *our own* key (we do not have
        # the provider's); verification against the provider's key fails
        body = announcement_bytes(
            self.forged_route, self.claimed_provider, config.prover, config.round
        )
        signature = self.keystore.sign(config.prover, body)
        return SignedAnnouncement(
            route=self.forged_route,
            origin=self.claimed_provider,
            recipient=config.prover,
            round=config.round,
            signature=signature,
        )

    def compute_bits(self, config, accepted):
        # bits consistent with the forged route so B's length checks pass
        forged_len = len(self.forged_route.as_path)
        lengths = [len(a.route.as_path) for a in accepted.values()]
        lengths.append(forged_len)
        from repro.pvr.commitments import compute_length_bits

        return compute_length_bits(lengths, config.max_length)


class LeakyProver(HonestProver):
    """Protocol-correct but privacy-violating: sends every provider the
    full bit vector (B's view).  No verifier flags it — only the
    confidentiality checker does, which is exactly the point of having
    leakage accounting separate from violation detection."""

    def build_provider_view(self, config, provider, announcement, receipt,
                            vector, openings):
        view = super().build_provider_view(
            config, provider, announcement, receipt, vector, openings
        )
        # model "full view" by disclosing bit 1..L to the provider through
        # extra disclosures; the leakage checker consumes transcripts, so
        # we stash them on the view via a subclassed tuple
        extra = tuple(
            make_disclosure(
                self.keystore, config.prover, config.topic, config.round,
                index, openings.opening(index),
            )
            for index in range(1, config.max_length + 1)
        )
        return ProviderView(
            receipt=view.receipt, vector=view.vector,
            disclosure=view.disclosure, extra_disclosures=extra,
        )
