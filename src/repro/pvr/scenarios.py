"""The scenario registry: named, reusable verification workloads.

Every workload the repo exercises — the paper's figures, the adversary
gallery, the promise hierarchy — is a *scenario*: a factory producing a
:class:`~repro.pvr.session.PromiseSpec`, the per-provider routes, and
any session options (a Byzantine prover, an export chooser, batching).
Scenarios are registered by name so examples, benchmarks and tests share
one catalogue instead of re-declaring configs:

    from repro.pvr import scenarios

    report = scenarios.run("fig1-minimum", keystore)
    for name in scenarios.list():
        print(name, "-", scenarios.get(name).description)

New workloads register themselves with the decorator::

    @scenarios.register("my-workload", "what it shows")
    def _build():
        return scenarios.Scenario(spec=..., routes=...)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.promises.spec import (
    ExistentialPromise,
    NoLongerThanOthers,
    ShortestFromSubset,
    ShortestRoute,
    WithinKHops,
)
from repro.pvr.engine import VerificationSession
from repro.pvr.judge import Judge
from repro.pvr.session import PromiseSpec, SessionReport

__all__ = [
    "Scenario",
    "register",
    "get",
    "list",
    "names",
    "run",
    "build_session",
]


@dataclass(frozen=True)
class Scenario:
    """One runnable workload: the spec, the inputs, the session knobs.

    ``prover_factory`` builds the (possibly Byzantine) prover from the
    keystore at run time; ``chooser`` is the cross-check export policy.
    """

    spec: PromiseSpec
    routes: Dict[str, Optional[Route]]
    description: str = ""
    name: str = ""
    round: int = 1
    prover_factory: Optional[Callable[[KeyStore], object]] = None
    chooser: Optional[Callable] = None
    session_options: Dict[str, object] = field(default_factory=dict)
    expect_violation: bool = False


_REGISTRY: Dict[str, Callable[[], Scenario]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register(name: str, description: str = ""):
    """Decorator: register a zero-argument scenario factory under ``name``."""

    def wrap(factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = factory
        _DESCRIPTIONS[name] = description or (factory.__doc__ or "").strip()
        return factory

    return wrap


def get(name: str) -> Scenario:
    """Build the named scenario (fresh objects each call)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
    scenario = factory()
    if not scenario.name:
        scenario = dataclasses.replace(
            scenario,
            name=name,
            description=scenario.description or _DESCRIPTIONS[name],
        )
    return scenario


def names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def list() -> Tuple[str, ...]:  # noqa: A001 - the issue-mandated API name
    """All registered scenario names (alias: :func:`names`)."""
    return names()


def build_session(
    scenario: Scenario, keystore: KeyStore, **overrides
) -> VerificationSession:
    """A ready-to-run session for a scenario."""
    options = dict(scenario.session_options)
    options.update(overrides)
    if scenario.prover_factory is not None and "prover" not in options:
        options["prover"] = scenario.prover_factory(keystore)
    if scenario.chooser is not None and "chooser" not in options:
        options["chooser"] = scenario.chooser
    options.setdefault("round", scenario.round)
    return VerificationSession(keystore, scenario.spec, **options)


def run(
    name: str,
    keystore: Optional[KeyStore] = None,
    *,
    judge: bool = True,
    **overrides,
) -> SessionReport:
    """Run the named scenario end to end and return its report."""
    scenario = get(name)
    if keystore is None:
        keystore = KeyStore(seed=2011, key_bits=512)
    session = build_session(scenario, keystore, **overrides)
    report = session.run(
        scenario.routes, judge=Judge(keystore) if judge else None
    )
    return report


# -- built-in scenarios --------------------------------------------------------

_PFX = Prefix.parse("203.0.113.0/24")


def _route(neighbor: str, length: int) -> Route:
    return Route(
        prefix=_PFX,
        as_path=ASPath((neighbor,) + tuple(f"T{i}" for i in range(length - 1))),
        neighbor=neighbor,
    )


_FIG1_ROUTES = {"N1": _route("N1", 3), "N2": _route("N2", 2),
                "N3": _route("N3", 4)}


@register("fig1-minimum", "Figure 1: honest shortest-route round")
def _fig1() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("fig1-longer-route",
          "Figure 1 with a prover exporting a longer route than promised")
def _fig1_cheat() -> Scenario:
    from repro.pvr.adversary import LongerRouteProver

    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        prover_factory=lambda keystore: LongerRouteProver(keystore),
        expect_violation=True,
    )


@register("fig1-batched", "Figure 1 with Section 3.8 batched disclosures")
def _fig1_batched() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        session_options={"batching": True},
    )


@register("promise3-slack",
          "Promise 3: a 2-hops-longer export under contracted slack k=2")
def _promise3() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=WithinKHops(2),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("sec32-existential",
          "Section 3.2: the single-bit existential protocol")
def _existential() -> Scenario:
    providers = ("N1", "N2", "N3")
    return Scenario(
        spec=PromiseSpec(
            promise=ExistentialPromise(providers),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=8,
        ),
        routes={"N1": _route("N1", 3), "N2": None, "N3": _route("N3", 4)},
    )


@register("fig2-multiop",
          "Figure 2: min(r2..rk) unless N1 provides a shorter route")
def _fig2() -> Scenario:
    from repro.rfg.builder import figure2_graph

    providers = ("N1", "N2", "N3", "N4")
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=8,
            plan=figure2_graph(providers, recipient="B"),
        ),
        routes={name: _route(name, 2 + i)
                for i, name in enumerate(providers)},
    )


@register("partial-transit",
          "Section 1's partial-transit contract as promise 2 over a subset")
def _partial_transit() -> Scenario:
    providers = ("EU-PEER-1", "EU-PEER-2", "US-PEER", "ASIA-PEER")
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestFromSubset(("EU-PEER-1", "EU-PEER-2")),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=10,
        ),
        routes={
            "EU-PEER-1": _route("EU-PEER-1", 3),
            "EU-PEER-2": _route("EU-PEER-2", 4),
            "US-PEER": _route("US-PEER", 2),
            "ASIA-PEER": _route("ASIA-PEER", 5),
        },
    )


@register("promise4-honest",
          "Promise 4: every recipient served the same shortest route")
def _promise4() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=NoLongerThanOthers(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B1", "B2", "B3"),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("promise4-discriminating",
          "Promise 4 violated: one recipient favored with a shorter route")
def _promise4_cheat() -> Scenario:
    from repro.pvr.crosscheck import discriminating_chooser

    return Scenario(
        spec=PromiseSpec(
            promise=NoLongerThanOthers(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B1", "B2", "B3"),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        chooser=discriminating_chooser("B1"),
        expect_violation=True,
    )


# -- the Section 3.8 scaling scenarios -----------------------------------------
#
# Per-round cost is linear in the provider count k; these scenarios are
# the measurement points for that line (k ∈ {4, 16, 64}), each in a
# serial and a parallel (process-backend) flavour so the execution
# backends can be compared on identical inputs.  The parallel runs are
# transcript-identical to the serial ones — only wall time differs.

SCALING_KS = (4, 16, 64)


def _scale_scenario(k: int, backend: Optional[str]) -> Scenario:
    routes = {
        f"N{i}": _route(f"N{i}", 1 + (i * 7) % 12)
        for i in range(1, k + 1)
    }
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=tuple(f"N{i}" for i in range(1, k + 1)),
            recipients=("B",),
            max_length=12,
        ),
        routes=routes,
        session_options={"backend": backend} if backend else {},
    )


def _register_scaling() -> None:
    for k in SCALING_KS:
        register(
            f"scale-k{k}",
            f"Section 3.8 scaling: one honest round with k={k} providers",
        )(lambda k=k: _scale_scenario(k, None))
        register(
            f"scale-k{k}-parallel",
            f"Section 3.8 scaling: k={k} providers on the process backend",
        )(lambda k=k: _scale_scenario(k, "process"))


_register_scaling()
