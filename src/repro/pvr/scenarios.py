"""The scenario registry: named, reusable verification workloads.

Every workload the repo exercises — the paper's figures, the adversary
gallery, the promise hierarchy — is a *scenario*: a factory producing a
:class:`~repro.pvr.session.PromiseSpec`, the per-provider routes, and
any session options (a Byzantine prover, an export chooser, batching).
Scenarios are registered by name so examples, benchmarks and tests share
one catalogue instead of re-declaring configs:

    from repro.pvr import scenarios

    report = scenarios.run("fig1-minimum", keystore)
    for name in scenarios.list():
        print(name, "-", scenarios.get(name).description)

New workloads register themselves with the decorator::

    @scenarios.register("my-workload", "what it shows")
    def _build():
        return scenarios.Scenario(spec=..., routes=...)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.promises.spec import (
    ExistentialPromise,
    NoLongerThanOthers,
    ShortestFromSubset,
    ShortestRoute,
    WithinKHops,
)
from repro.pvr.engine import VerificationSession
from repro.pvr.judge import Judge
from repro.pvr.session import PromiseSpec, SessionReport

__all__ = [
    "Scenario",
    "register",
    "get",
    "list",
    "names",
    "run",
    "build_session",
    "ChurnScenario",
    "register_churn",
    "get_churn",
    "churn_names",
    "apply_step",
    "step_name",
    "figure1_network",
    "serve_network",
    "flap_session",
    "restore_session",
    "bounce_session",
    "reoriginate",
    "reoriginate_origin",
]


@dataclass(frozen=True)
class Scenario:
    """One runnable workload: the spec, the inputs, the session knobs.

    ``prover_factory`` builds the (possibly Byzantine) prover from the
    keystore at run time; ``chooser`` is the cross-check export policy.
    """

    spec: PromiseSpec
    routes: Dict[str, Optional[Route]]
    description: str = ""
    name: str = ""
    round: int = 1
    prover_factory: Optional[Callable[[KeyStore], object]] = None
    chooser: Optional[Callable] = None
    session_options: Dict[str, object] = field(default_factory=dict)
    expect_violation: bool = False


_REGISTRY: Dict[str, Callable[[], Scenario]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register(name: str, description: str = ""):
    """Decorator: register a zero-argument scenario factory under ``name``."""

    def wrap(factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = factory
        _DESCRIPTIONS[name] = description or (factory.__doc__ or "").strip()
        return factory

    return wrap


def get(name: str) -> Scenario:
    """Build the named scenario (fresh objects each call)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
    scenario = factory()
    if not scenario.name:
        scenario = dataclasses.replace(
            scenario,
            name=name,
            description=scenario.description or _DESCRIPTIONS[name],
        )
    return scenario


def names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def list() -> Tuple[str, ...]:  # noqa: A001 - the issue-mandated API name
    """All registered scenario names (alias: :func:`names`)."""
    return names()


def build_session(
    scenario: Scenario, keystore: KeyStore, **overrides
) -> VerificationSession:
    """A ready-to-run session for a scenario."""
    options = dict(scenario.session_options)
    options.update(overrides)
    if scenario.prover_factory is not None and "prover" not in options:
        options["prover"] = scenario.prover_factory(keystore)
    if scenario.chooser is not None and "chooser" not in options:
        options["chooser"] = scenario.chooser
    options.setdefault("round", scenario.round)
    return VerificationSession(keystore, scenario.spec, **options)


def run(
    name: str,
    keystore: Optional[KeyStore] = None,
    *,
    judge: bool = True,
    **overrides,
) -> SessionReport:
    """Run the named scenario end to end and return its report."""
    scenario = get(name)
    if keystore is None:
        keystore = KeyStore(seed=2011, key_bits=512)
    session = build_session(scenario, keystore, **overrides)
    report = session.run(
        scenario.routes, judge=Judge(keystore) if judge else None
    )
    return report


# -- built-in scenarios --------------------------------------------------------

_PFX = Prefix.parse("203.0.113.0/24")


def _route(neighbor: str, length: int) -> Route:
    return Route(
        prefix=_PFX,
        as_path=ASPath((neighbor,) + tuple(f"T{i}" for i in range(length - 1))),
        neighbor=neighbor,
    )


_FIG1_ROUTES = {"N1": _route("N1", 3), "N2": _route("N2", 2),
                "N3": _route("N3", 4)}


@register("fig1-minimum", "Figure 1: honest shortest-route round")
def _fig1() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("fig1-longer-route",
          "Figure 1 with a prover exporting a longer route than promised")
def _fig1_cheat() -> Scenario:
    from repro.pvr.adversary import LongerRouteProver

    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        prover_factory=lambda keystore: LongerRouteProver(keystore),
        expect_violation=True,
    )


@register("fig1-batched", "Figure 1 with Section 3.8 batched disclosures")
def _fig1_batched() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        session_options={"batching": True},
    )


@register("promise3-slack",
          "Promise 3: a 2-hops-longer export under contracted slack k=2")
def _promise3() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=WithinKHops(2),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B",),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("sec32-existential",
          "Section 3.2: the single-bit existential protocol")
def _existential() -> Scenario:
    providers = ("N1", "N2", "N3")
    return Scenario(
        spec=PromiseSpec(
            promise=ExistentialPromise(providers),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=8,
        ),
        routes={"N1": _route("N1", 3), "N2": None, "N3": _route("N3", 4)},
    )


@register("fig2-multiop",
          "Figure 2: min(r2..rk) unless N1 provides a shorter route")
def _fig2() -> Scenario:
    from repro.rfg.builder import figure2_graph

    providers = ("N1", "N2", "N3", "N4")
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=8,
            plan=figure2_graph(providers, recipient="B"),
        ),
        routes={name: _route(name, 2 + i)
                for i, name in enumerate(providers)},
    )


@register("partial-transit",
          "Section 1's partial-transit contract as promise 2 over a subset")
def _partial_transit() -> Scenario:
    providers = ("EU-PEER-1", "EU-PEER-2", "US-PEER", "ASIA-PEER")
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestFromSubset(("EU-PEER-1", "EU-PEER-2")),
            prover="A",
            providers=providers,
            recipients=("B",),
            max_length=10,
        ),
        routes={
            "EU-PEER-1": _route("EU-PEER-1", 3),
            "EU-PEER-2": _route("EU-PEER-2", 4),
            "US-PEER": _route("US-PEER", 2),
            "ASIA-PEER": _route("ASIA-PEER", 5),
        },
    )


@register("promise4-honest",
          "Promise 4: every recipient served the same shortest route")
def _promise4() -> Scenario:
    return Scenario(
        spec=PromiseSpec(
            promise=NoLongerThanOthers(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B1", "B2", "B3"),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
    )


@register("promise4-discriminating",
          "Promise 4 violated: one recipient favored with a shorter route")
def _promise4_cheat() -> Scenario:
    from repro.pvr.crosscheck import discriminating_chooser

    return Scenario(
        spec=PromiseSpec(
            promise=NoLongerThanOthers(),
            prover="A",
            providers=("N1", "N2", "N3"),
            recipients=("B1", "B2", "B3"),
            max_length=8,
        ),
        routes=dict(_FIG1_ROUTES),
        chooser=discriminating_chooser("B1"),
        expect_violation=True,
    )


# -- the Section 3.8 scaling scenarios -----------------------------------------
#
# Per-round cost is linear in the provider count k; these scenarios are
# the measurement points for that line (k ∈ {4, 16, 64}), each in a
# serial and a parallel (process-backend) flavour so the execution
# backends can be compared on identical inputs.  The parallel runs are
# transcript-identical to the serial ones — only wall time differs.

SCALING_KS = (4, 16, 64)


def _scale_scenario(k: int, backend: Optional[str]) -> Scenario:
    routes = {
        f"N{i}": _route(f"N{i}", 1 + (i * 7) % 12)
        for i in range(1, k + 1)
    }
    return Scenario(
        spec=PromiseSpec(
            promise=ShortestRoute(),
            prover="A",
            providers=tuple(f"N{i}" for i in range(1, k + 1)),
            recipients=("B",),
            max_length=12,
        ),
        routes=routes,
        session_options={"backend": backend} if backend else {},
    )


def _register_scaling() -> None:
    for k in SCALING_KS:
        register(
            f"scale-k{k}",
            f"Section 3.8 scaling: one honest round with k={k} providers",
        )(lambda k=k: _scale_scenario(k, None))
        register(
            f"scale-k{k}-parallel",
            f"Section 3.8 scaling: k={k} providers on the process backend",
        )(lambda k=k: _scale_scenario(k, "process"))


_register_scaling()


# -- churn scenarios: continuous-audit workloads -------------------------------
#
# A churn scenario is a *network-level* workload for the audit plane
# (:mod:`repro.audit`): a converged BGP network, promise policies per
# monitored AS, and a script of churn steps.  The driver
# (:func:`repro.audit.churn.run_churn`) attaches a Monitor, runs one
# verification epoch after the initial convergence and one after each
# churn step, and returns the epoch reports plus the evidence trail.
# Scenario objects here are pure data — no audit imports — so the
# registry stays import-cycle-free.


@dataclass(frozen=True)
class ChurnScenario:
    """One continuous-audit workload.

    ``build()`` returns a converged :class:`~repro.bgp.network.BGPNetwork`
    carrying ``prefix``; ``policies`` is a tuple of
    ``(asn, spec_source, options)`` triples handed to
    :meth:`repro.audit.monitor.Monitor.policy`; ``churn`` is the script —
    each step mutates the network (the driver quiesces and runs an epoch
    after each).  ``resync_after`` appends a full re-audit sweep as a
    final epoch, the steady-state reuse measurement.
    """

    build: Callable[[], "object"]
    prefix: Prefix
    policies: Tuple[Tuple[str, object, Dict[str, object]], ...]
    churn: Tuple[Callable, ...] = ()
    description: str = ""
    name: str = ""
    resync_after: bool = True
    expect_violation: bool = False


_CHURN_REGISTRY: Dict[str, Callable[[], ChurnScenario]] = {}
_CHURN_DESCRIPTIONS: Dict[str, str] = {}


def register_churn(name: str, description: str = ""):
    """Decorator: register a zero-argument churn-scenario factory."""

    def wrap(factory: Callable[[], ChurnScenario]) -> Callable[[], ChurnScenario]:
        if name in _CHURN_REGISTRY:
            raise ValueError(f"churn scenario {name!r} already registered")
        _CHURN_REGISTRY[name] = factory
        _CHURN_DESCRIPTIONS[name] = description or (factory.__doc__ or "").strip()
        return factory

    return wrap


def get_churn(name: str) -> ChurnScenario:
    """Build the named churn scenario (fresh objects each call)."""
    try:
        factory = _CHURN_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown churn scenario {name!r}; "
            f"known: {', '.join(sorted(_CHURN_REGISTRY))}"
        ) from None
    scenario = factory()
    if not scenario.name:
        scenario = dataclasses.replace(
            scenario,
            name=name,
            description=scenario.description or _CHURN_DESCRIPTIONS[name],
        )
    return scenario


def churn_names() -> Tuple[str, ...]:
    return tuple(sorted(_CHURN_REGISTRY))


# churn-step builders ----------------------------------------------------------


def apply_step(step, net) -> None:
    """Apply one churn step to ``net``.

    A step is either a live callable ``step(net)`` (the closures the
    builders below return) or a picklable ``(builder, args)`` pair —
    the form that crosses the cluster's IPC boundary, since the builders
    are module-level functions that pickle by reference while their
    closures do not.  The pair is rebuilt (``builder(*args)``) and
    applied on the receiving side.
    """
    if callable(step):
        step(net)
        return
    builder, args = step
    builder(*args)(net)


def step_name(step) -> str:
    """A human-readable name for either step form (logs and CLIs)."""
    if callable(step):
        return getattr(step, "__name__", repr(step))
    builder, args = step
    return f"{builder.__name__}({','.join(map(str, args))})"


def flap_session(a: str, b: str):
    """Drop the a<->b BGP session and all routes learned over it."""

    def step(net) -> None:
        net.drop_session(a, b)

    step.__name__ = f"flap_session({a},{b})"
    return step


def restore_session(a: str, b: str):
    """Re-establish a previously flapped session (full table resent)."""

    def step(net) -> None:
        net.routers[a].start_session(net.transport, b)

    step.__name__ = f"restore_session({a},{b})"
    return step


def bounce_session(a: str, b: str):
    """Flap and immediately restore: after quiescence every route is
    back, but the decision hooks fired — the pure-reuse churn case."""
    down, up = flap_session(a, b), restore_session(a, b)

    def step(net) -> None:
        down(net)
        net.run_to_quiescence()
        up(net)

    step.__name__ = f"bounce_session({a},{b})"
    return step


def reoriginate(asn: str, prefix: Prefix):
    """Withdraw and immediately re-originate ``prefix`` at ``asn``."""

    def step(net) -> None:
        net.withdraw(asn, prefix)
        net.run_to_quiescence()
        net.originate(asn, prefix)

    step.__name__ = f"reoriginate({asn})"
    return step


_CHURN_PFX = Prefix.parse("10.0.0.0/8")


def figure1_network(prefix: Prefix = _CHURN_PFX):
    """The paper's Figure 1 as a converged BGP network: O originates
    ``prefix``; N2 hears it directly (2 hops at A), N1 and N3 via X
    (3 hops at A); all three feed A, and A exports to B.

    The shared topology behind the churn scenarios, the audit examples
    and the monitor tests — one definition, so they cannot diverge.
    """
    from repro.bgp.network import BGPNetwork

    net = BGPNetwork()
    for asn in ("O", "X", "N1", "N2", "N3", "A", "B"):
        net.add_as(asn)
    net.connect("O", "X")
    net.connect("X", "N1")
    net.connect("X", "N3")
    net.connect("O", "N2")
    for n in ("N1", "N2", "N3"):
        net.connect(n, "A")
    net.connect("A", "B")
    net.establish_sessions()
    net.originate("O", prefix)
    net.run_to_quiescence()
    return net


def serve_network(prefix_count: int = 8):
    """The serving-layer workload substrate: Figure 1, many prefixes.

    The Figure 1 topology plus a second customer ``B2`` at A (so the
    promise-4 cross-check has two comparable recipients), with
    ``prefix_count`` prefixes all originated at O — every (A, prefix)
    pair is a distinct shard key, which is what makes the sharded
    service's partition (and the load generator's hot-prefix Zipf skew)
    observable.  Returns ``(network, prefixes)`` with ``prefixes`` in
    rank order (index 0 is the load generator's hot head).
    """
    if prefix_count < 1:
        raise ValueError(f"prefix_count must be >= 1, got {prefix_count}")
    if prefix_count > 200:
        raise ValueError("prefix_count > 200 leaves 10.x space")
    from repro.bgp.network import BGPNetwork

    net = BGPNetwork()
    for asn in ("O", "X", "N1", "N2", "N3", "A", "B", "B2"):
        net.add_as(asn)
    net.connect("O", "X")
    net.connect("X", "N1")
    net.connect("X", "N3")
    net.connect("O", "N2")
    for n in ("N1", "N2", "N3"):
        net.connect(n, "A")
    net.connect("A", "B")
    net.connect("A", "B2")
    net.establish_sessions()
    prefixes = tuple(
        Prefix.parse(f"10.{i}.0.0/16") for i in range(prefix_count)
    )
    for prefix in prefixes:
        net.originate("O", prefix)
    net.run_to_quiescence()
    return net, prefixes


@register_churn(
    "churn-multiprefix",
    "The serving substrate under churn: four prefixes at O, shortest-"
    "route audited at A across a session flap and a re-origination",
)
def _churn_multiprefix() -> ChurnScenario:
    def build():
        return serve_network(4)[0]

    return ChurnScenario(
        build=build,
        prefix=Prefix.parse("10.0.0.0/16"),
        policies=((("A"), ShortestRoute(), {"max_length": 8}),),
        churn=(
            flap_session("O", "N2"),
            restore_session("O", "N2"),
            reoriginate("O", Prefix.parse("10.1.0.0/16")),
        ),
    )


@register_churn(
    "serve-burst",
    "The serving substrate under burst churn: a flap storm across both "
    "feed sessions followed by a full table reset, the loadgen burst "
    "schedules' shape as an audit-CLI scenario",
)
def _serve_burst() -> ChurnScenario:
    def build():
        return serve_network(4)[0]

    return ChurnScenario(
        build=build,
        prefix=Prefix.parse("10.0.0.0/16"),
        policies=((("A"), ShortestRoute(), {"max_length": 8}),),
        churn=(
            # the storm: back-to-back bounces, no settling between
            bounce_session("O", "N2"),
            bounce_session("X", "N1"),
            bounce_session("O", "N2"),
            # the table reset: the origin feed drops and re-establishes,
            # resending the full table through the resync hooks
            flap_session("O", "X"),
            restore_session("O", "X"),
        ),
    )


@register_churn(
    "churn-fig1",
    "Figure 1 under churn: the O-N2 session flaps while A's shortest-"
    "route promise is continuously audited",
)
def _churn_fig1() -> ChurnScenario:
    return ChurnScenario(
        build=figure1_network,
        prefix=_CHURN_PFX,
        policies=((("A"), ShortestRoute(), {"max_length": 8}),),
        churn=(
            flap_session("O", "N2"),
            restore_session("O", "N2"),
        ),
    )


@register_churn(
    "churn-steady",
    "Steady-state reuse: sessions bounce but every input settles back "
    "unchanged, so epochs after the first are served from the cache",
)
def _churn_steady() -> ChurnScenario:
    return ChurnScenario(
        build=figure1_network,
        prefix=_CHURN_PFX,
        policies=((("A"), ShortestRoute(), {"max_length": 8}),),
        churn=(
            bounce_session("O", "N2"),
            bounce_session("X", "N1"),
        ),
    )


@register_churn(
    "churn-variants",
    "Per-neighbor policy overrides on Figure 1: promise 2 toward B plus "
    "an existential promise audited in the same epochs",
)
def _churn_variants() -> ChurnScenario:
    def existential(providers):
        from repro.promises.spec import ExistentialPromise

        return ExistentialPromise(providers)

    return ChurnScenario(
        build=figure1_network,
        prefix=_CHURN_PFX,
        policies=(
            ("A", ShortestRoute(), {"max_length": 8, "recipients": ("B",)}),
            ("A", existential, {"max_length": 8, "recipients": ("B",)}),
        ),
        churn=(flap_session("O", "N2"),),
    )


def _generated_churn_network(tier1: int, tier2: int, stubs: int, seed: int):
    from repro.topology.generate import TopologyParams, generate, true_stub
    from repro.topology.internet import build_bgp_network

    graph = generate(
        TopologyParams(tier1=tier1, tier2=tier2, stubs=stubs, seed=seed)
    )
    net = build_bgp_network(graph)
    net.originate(true_stub(graph), _CHURN_PFX)
    net.run_to_quiescence()
    return net


def _churn_64as_scenario(tier1=4, tier2=12, stubs=48, seed=2011,
                         monitored=3) -> ChurnScenario:
    def build():
        return _generated_churn_network(tier1, tier2, stubs, seed)

    # policies go on the tier-1 core: the ASes with the most neighbors,
    # hence the most (provider, recipient) tuples per epoch
    tier1_names = tuple(f"AS{i}" for i in range(min(monitored, tier1)))
    policies = tuple(
        (asn, ShortestRoute(), {"max_length": 16}) for asn in tier1_names
    )
    return ChurnScenario(
        build=build,
        prefix=_CHURN_PFX,
        policies=policies,
        churn=(
            bounce_session("AS0", "AS1"),
            reoriginate_origin(),
        ),
    )


def reoriginate_origin(prefix: Prefix = _CHURN_PFX):
    """Withdraw and re-originate ``prefix`` at its origin (discovered
    from the network at run time)."""

    def step(net) -> None:
        origin = next(
            (asn for asn, router in net.routers.items()
             if prefix in router.originated),
            None,
        )
        if origin is None:
            raise ValueError(f"no router originates {prefix}")
        reoriginate(origin, prefix)(net)

    step.__name__ = f"reoriginate_origin({prefix})"
    return step


register_churn(
    "churn-64as",
    "A 64-AS synthetic Internet under churn: tier-1 policies audited "
    "across session bounces and a prefix re-origination",
)(_churn_64as_scenario)
