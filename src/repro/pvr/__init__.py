"""PVR: private and verifiable routing — the paper's core contribution.

The package implements the complete machinery of Sections 2-3:

* access-control policies α (:mod:`repro.pvr.access`);
* signed announcements and receipts (:mod:`repro.pvr.announcements`);
* bit-vector commitments, signed disclosures and export attestations
  (:mod:`repro.pvr.commitments`);
* the existential protocol of Section 3.2 (:mod:`repro.pvr.existential`,
  including the ring-signature link-state variant);
* the minimum protocol of Section 3.3 (:mod:`repro.pvr.minimum`);
* the generalized multi-operator protocol of Sections 3.5-3.7
  (:mod:`repro.pvr.protocol`, :mod:`repro.pvr.navigation`);
* evidence, the judge, Byzantine adversaries, leakage accounting and the
  four PVR properties as executable checks.

All four protocol variants run behind one promise-driven API — the
**unified verification engine**:

* :class:`~repro.pvr.session.PromiseSpec` describes the contract
  (promise template, parties, parameters) and compiles to a route-flow
  graph plan;
* :class:`~repro.pvr.engine.VerificationSession` drives the
  ``announce → commit → disclose → verify → adjudicate`` lifecycle
  through whichever protocol variant the spec resolves to, emitting a
  uniform :class:`~repro.pvr.session.SessionTranscript` and
  :class:`~repro.pvr.session.SessionReport`;
* :mod:`repro.pvr.scenarios` is the registry of named workloads.
"""

from repro.pvr.access import AccessPolicy, opaque_alpha, paper_alpha
from repro.pvr.announcements import (
    Receipt,
    SignedAnnouncement,
    make_announcement,
    make_receipt,
)
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
    commit_bits,
    compute_length_bits,
    make_attestation,
    make_disclosure,
)
from repro.pvr.evidence import (
    BadOpeningEvidence,
    BadProvenanceEvidence,
    Complaint,
    EquivocationEvidence,
    Evidence,
    ExistsFalseBitEvidence,
    ExistsPhantomEvidence,
    FalseBitEvidence,
    MonotonicityEvidence,
    PhantomExportEvidence,
    ShorterAvailableEvidence,
    SuppressionEvidence,
    UnequalTreatmentEvidence,
    Verdict,
    Violation,
)
from repro.pvr.judge import ComplaintRuling, Judge
from repro.pvr.minimum import (
    HonestProver,
    ProviderView,
    RecipientView,
    RoundConfig,
    RoundTranscript,
    announce,
    verify_as_provider,
    verify_as_recipient,
)
from repro.pvr.batching import BatchedDisclosure, BatchingProver, DisclosureBatch
from repro.pvr.crosscheck import (
    Promise4Result,
    cross_check,
    discriminating_chooser,
    honest_chooser,
    run_promise4_scenario,
    withholding_chooser,
)
from repro.pvr.deployment import DeploymentReport, PVRDeployment, RoundStats
from repro.pvr.navigation import (
    NavigationError,
    Navigator,
    OperatorSkeleton,
    owner_check_operators,
    verify_as_input_owner,
    verify_as_output_recipient,
)
from repro.pvr.properties import (
    ScenarioResult,
    accuracy_holds,
    confidentiality_holds,
    detection_holds,
    evidence_holds,
    run_minimum_scenario,
)
from repro.pvr.protocol import (
    AccessDenied,
    GraphProver,
    GraphRoundConfig,
    RecordResponse,
)
from repro.pvr.session import (
    Adjudication,
    CryptoCounters,
    PromiseSpec,
    SessionError,
    SessionReport,
    SessionTranscript,
)
from repro.pvr.engine import VerificationSession, derive_skeleton
from repro.pvr.execution import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
    shutdown_backends,
)
from repro.pvr import scenarios
from repro.pvr.vertex_info import VertexRecord, make_vertex_record

__all__ = [
    # access
    "AccessPolicy",
    "opaque_alpha",
    "paper_alpha",
    # announcements
    "Receipt",
    "SignedAnnouncement",
    "make_announcement",
    "make_receipt",
    # commitments
    "BitVectorOpenings",
    "CommittedBitVector",
    "ExportAttestation",
    "SignedDisclosure",
    "commit_bits",
    "compute_length_bits",
    "make_attestation",
    "make_disclosure",
    # evidence
    "BadOpeningEvidence",
    "BadProvenanceEvidence",
    "Complaint",
    "EquivocationEvidence",
    "Evidence",
    "ExistsFalseBitEvidence",
    "ExistsPhantomEvidence",
    "FalseBitEvidence",
    "MonotonicityEvidence",
    "PhantomExportEvidence",
    "ShorterAvailableEvidence",
    "SuppressionEvidence",
    "UnequalTreatmentEvidence",
    "Verdict",
    "Violation",
    # judge
    "ComplaintRuling",
    "Judge",
    # minimum protocol
    "HonestProver",
    "ProviderView",
    "RecipientView",
    "RoundConfig",
    "RoundTranscript",
    "announce",
    "verify_as_provider",
    "verify_as_recipient",
    # batching
    "BatchedDisclosure",
    "BatchingProver",
    "DisclosureBatch",
    # promise-4 cross-check
    "Promise4Result",
    "cross_check",
    "discriminating_chooser",
    "honest_chooser",
    "run_promise4_scenario",
    "withholding_chooser",
    # BGP deployment
    "DeploymentReport",
    "PVRDeployment",
    "RoundStats",
    # navigation (generalized protocol, verifier side)
    "NavigationError",
    "Navigator",
    "OperatorSkeleton",
    "owner_check_operators",
    "verify_as_input_owner",
    "verify_as_output_recipient",
    # scenario runner + the four properties
    "ScenarioResult",
    "accuracy_holds",
    "confidentiality_holds",
    "detection_holds",
    "evidence_holds",
    "run_minimum_scenario",
    # generalized protocol, prover side
    "AccessDenied",
    "GraphProver",
    "GraphRoundConfig",
    "RecordResponse",
    # execution backends
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "resolve_backend",
    "shutdown_backends",
    # unified engine
    "Adjudication",
    "CryptoCounters",
    "PromiseSpec",
    "SessionError",
    "SessionReport",
    "SessionTranscript",
    "VerificationSession",
    "derive_skeleton",
    "scenarios",
    # vertex records
    "VertexRecord",
    "make_vertex_record",
]
