"""Example #1: PVR verification of the existential operator (Section 3.2).

A promises B to export *a* route whenever at least one Ni provides one.
The protocol commits to a single bit ``b`` ("A received at least one
route"), published as ``c := H(b || p)`` and gossiped; A then reveals
``(b, p)`` to every Ni that provided a route, and the signed route (if
any) to B.  The two verification conditions:

1. **B**: if a route was exported, it carries a valid provider signature
   (provenance); and the exported/not-exported outcome is consistent with
   the committed bit;
2. **each Ni**: if it provided a route, A revealed ``(b, p)`` with
   ``b = 1`` and the opening matches the gossiped commitment.

The link-state variant — where announcements carry a *ring signature* so
that B learns "some Ni vouched" without learning which — is provided by
:func:`ring_announce` / :func:`verify_ring_provenance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.crypto import ring as ring_mod
from repro.crypto.keystore import KeyStore
from repro.pvr.announcements import Receipt, SignedAnnouncement, make_receipt
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
    commit_bits,
    make_attestation,
    make_disclosure,
)
from repro.pvr.evidence import (
    BadOpeningEvidence,
    BadProvenanceEvidence,
    Complaint,
    ExistsFalseBitEvidence,
    ExistsPhantomEvidence,
    SuppressionEvidence,
    Verdict,
    Violation,
)
from repro.pvr.minimum import RoundConfig

TOPIC = "pvr-exists"
BIT_INDEX = 1  # the single existence bit lives at vector index 1


@dataclass(frozen=True)
class ExistentialProviderView:
    receipt: Optional[Receipt] = None
    vector: Optional[CommittedBitVector] = None
    disclosure: Optional[SignedDisclosure] = None


@dataclass(frozen=True)
class ExistentialRecipientView:
    vector: Optional[CommittedBitVector] = None
    attestation: Optional[ExportAttestation] = None
    disclosure: Optional[SignedDisclosure] = None


@dataclass(frozen=True)
class ExistentialTranscript:
    config: RoundConfig
    announcements: Mapping[str, Optional[SignedAnnouncement]]
    provider_views: Mapping[str, ExistentialProviderView]
    recipient_view: ExistentialRecipientView


class ExistentialProver:
    """A's honest behaviour for one existential-protocol round.

    ``backend`` (injected by the engine) fans the per-provider receipt
    and disclosure signatures out across execution workers; subclasses
    always run the serial path so behavioural deviations are preserved.
    """

    #: execution backend for the signing hot path; ``None`` means serial
    backend = None

    def __init__(
        self,
        keystore: KeyStore,
        random_bytes: Callable[[int], bytes] | None = None,
    ) -> None:
        self.keystore = keystore
        self.random_bytes = random_bytes

    def _fan_out_backend(self):
        backend = self.backend
        if backend is None or not getattr(backend, "parallel", False):
            return None
        if type(self) is not ExistentialProver:
            return None
        return backend

    def accept_announcements(
        self,
        config: RoundConfig,
        announcements: Mapping[str, Optional[SignedAnnouncement]],
    ) -> Dict[str, SignedAnnouncement]:
        accepted: Dict[str, SignedAnnouncement] = {}
        for provider in config.providers:
            ann = announcements.get(provider)
            if ann is None:
                continue
            if ann.origin != provider or ann.recipient != config.prover:
                continue
            if ann.round != config.round:
                continue
            if len(ann.route.as_path) < 1:
                continue
            if not ann.verify(self.keystore):
                continue
            accepted[provider] = ann
        return accepted

    def compute_bit(
        self, config: RoundConfig, accepted: Mapping[str, SignedAnnouncement]
    ) -> int:
        return 1 if accepted else 0

    def choose_export(
        self, config: RoundConfig, accepted: Mapping[str, SignedAnnouncement]
    ) -> Optional[SignedAnnouncement]:
        """Any provided route satisfies the existential promise; pick
        deterministically for replayability."""
        if not accepted:
            return None
        return accepted[min(accepted)]

    def run(
        self,
        config: RoundConfig,
        announcements: Mapping[str, Optional[SignedAnnouncement]],
    ) -> ExistentialTranscript:
        accepted = self.accept_announcements(config, announcements)
        bit = self.compute_bit(config, accepted)
        vector, openings = commit_bits(
            self.keystore, config.prover, TOPIC, config.round, (bit,),
            self.random_bytes,
        )
        winner = self.choose_export(config, accepted)
        backend = self._fan_out_backend()
        if backend is not None:
            from repro.pvr import execution

            tasks = [
                execution.CryptoTask(
                    key=provider,
                    fn=_existential_provider_task,
                    args=(config, accepted.get(provider), vector, openings),
                )
                for provider in config.providers
            ]
            provider_views = {
                result.key: result.value
                for result in execution.run_tasks(
                    backend, self.keystore, tasks
                )
            }
        else:
            provider_views = {}
            for provider in config.providers:
                ann = accepted.get(provider)
                if ann is None:
                    provider_views[provider] = ExistentialProviderView(
                        vector=vector
                    )
                    continue
                provider_views[provider] = ExistentialProviderView(
                    receipt=make_receipt(self.keystore, config.prover, ann),
                    vector=vector,
                    disclosure=self._disclose(config, openings),
                )
        recipient_view = self._build_recipient_view(config, winner, vector, openings)
        return ExistentialTranscript(
            config=config,
            announcements=dict(announcements),
            provider_views=provider_views,
            recipient_view=recipient_view,
        )

    def _disclose(
        self, config: RoundConfig, openings: BitVectorOpenings
    ) -> SignedDisclosure:
        return make_disclosure(
            self.keystore, config.prover, TOPIC, config.round,
            BIT_INDEX, openings.opening(BIT_INDEX),
        )

    def _build_recipient_view(
        self,
        config: RoundConfig,
        winner: Optional[SignedAnnouncement],
        vector: CommittedBitVector,
        openings: BitVectorOpenings,
    ) -> ExistentialRecipientView:
        if winner is None:
            attestation = make_attestation(
                self.keystore, config.prover, config.recipient, config.round,
                None, None,
            )
        else:
            attestation = make_attestation(
                self.keystore, config.prover, config.recipient, config.round,
                winner.route.exported_by(config.prover), winner,
            )
        return ExistentialRecipientView(
            vector=vector,
            attestation=attestation,
            disclosure=self._disclose(config, openings),
        )


def _existential_provider_task(
    keystore: KeyStore,
    config: RoundConfig,
    announcement: Optional[SignedAnnouncement],
    vector: CommittedBitVector,
    openings: BitVectorOpenings,
) -> ExistentialProviderView:
    """One provider's receipt + single-bit disclosure, on a worker
    (module-level so the process backend can pickle it)."""
    if announcement is None:
        return ExistentialProviderView(vector=vector)
    return ExistentialProviderView(
        receipt=make_receipt(keystore, config.prover, announcement),
        vector=vector,
        disclosure=make_disclosure(
            keystore, config.prover, TOPIC, config.round,
            BIT_INDEX, openings.opening(BIT_INDEX),
        ),
    )


def verify_as_provider(
    keystore: KeyStore,
    config: RoundConfig,
    provider: str,
    announcement: Optional[SignedAnnouncement],
    view: ExistentialProviderView,
) -> Verdict:
    """Condition 2: "if Ni has provided a route to A, then A has revealed
    b and p to Ni, and b = 1"."""
    violations = []
    prover = config.prover

    if view.vector is not None and not view.vector.is_consistent(keystore):
        violations.append(Violation(
            kind="malformed-commitment", accused=prover,
            complaint=Complaint(accuser=provider, accused=prover,
                                round=config.round,
                                claim="malformed-commitment"),
        ))
        return Verdict(verifier=provider, violations=tuple(violations))

    if announcement is None:
        return Verdict(verifier=provider)

    if view.receipt is None or not (
        view.receipt.verify(keystore)
        and view.receipt.issuer == prover
        and view.receipt.provider == provider
        and view.receipt.round == config.round
        and view.receipt.announcement_digest == announcement.digest()
    ):
        violations.append(Violation(
            kind="missing-receipt", accused=prover,
            complaint=Complaint(accuser=provider, accused=prover,
                                round=config.round, claim="missing-receipt"),
        ))

    if view.vector is None:
        violations.append(Violation(
            kind="missing-commitment", accused=prover,
            complaint=Complaint(accuser=provider, accused=prover,
                                round=config.round,
                                claim="missing-commitment"),
        ))
        return Verdict(verifier=provider, violations=tuple(violations))

    disclosure = view.disclosure
    if disclosure is None:
        violations.append(Violation(
            kind="missing-disclosure", accused=prover,
            complaint=Complaint(accuser=provider, accused=prover,
                                round=config.round,
                                claim="missing-disclosure"),
        ))
        return Verdict(verifier=provider, violations=tuple(violations))

    if not disclosure.verify_signature(keystore) or disclosure.round != config.round:
        violations.append(Violation(
            kind="unsigned-disclosure", accused=prover,
            complaint=Complaint(accuser=provider, accused=prover,
                                round=config.round,
                                claim="unsigned-disclosure"),
        ))
        return Verdict(verifier=provider, violations=tuple(violations))

    if not disclosure.matches(view.vector):
        violations.append(Violation(
            kind="bad-opening", accused=prover,
            evidence=BadOpeningEvidence(vector=view.vector,
                                        disclosure=disclosure),
        ))
        return Verdict(verifier=provider, violations=tuple(violations))

    if disclosure.opening.value != 1:
        if view.receipt is not None and view.receipt.verify(keystore):
            violations.append(Violation(
                kind="exists-false-bit", accused=prover,
                evidence=ExistsFalseBitEvidence(
                    vector=view.vector, disclosure=disclosure,
                    announcement=announcement, receipt=view.receipt,
                ),
            ))
        else:
            violations.append(Violation(
                kind="exists-false-bit-unreceipted", accused=prover,
                complaint=Complaint(accuser=provider, accused=prover,
                                    round=config.round,
                                    claim="exists-false-bit-unreceipted"),
            ))

    return Verdict(verifier=provider, violations=tuple(violations))


def verify_as_recipient(
    keystore: KeyStore, config: RoundConfig, view: ExistentialRecipientView
) -> Verdict:
    """Condition 1 plus bit/export consistency."""
    violations = []
    prover = config.prover
    recipient = config.recipient

    def complain(claim: str, context: tuple = ()) -> None:
        violations.append(Violation(
            kind=claim, accused=prover,
            complaint=Complaint(accuser=recipient, accused=prover,
                                round=config.round, claim=claim,
                                context=context),
        ))

    vector = view.vector
    if vector is None or not vector.is_consistent(keystore):
        complain("missing-or-malformed-commitment")
        return Verdict(verifier=recipient, violations=tuple(violations))

    attestation = view.attestation
    if attestation is None or not attestation.verify_signature(keystore) or (
        attestation.recipient != recipient or attestation.round != config.round
    ):
        complain("missing-or-invalid-attestation")
        return Verdict(verifier=recipient, violations=tuple(violations))

    if not attestation.provenance_valid(keystore) or (
        attestation.provenance is not None
        and attestation.provenance.origin not in config.providers
    ):
        violations.append(Violation(
            kind="bad-provenance", accused=prover,
            evidence=BadProvenanceEvidence(attestation=attestation),
        ))

    disclosure = view.disclosure
    if disclosure is None:
        complain("missing-disclosure")
        return Verdict(verifier=recipient, violations=tuple(violations))
    if not disclosure.verify_signature(keystore) or disclosure.round != config.round:
        complain("unsigned-disclosure")
        return Verdict(verifier=recipient, violations=tuple(violations))
    if not disclosure.matches(vector):
        violations.append(Violation(
            kind="bad-opening", accused=prover,
            evidence=BadOpeningEvidence(vector=vector, disclosure=disclosure),
        ))
        return Verdict(verifier=recipient, violations=tuple(violations))

    bit = disclosure.opening.value
    exported = attestation.route is not None
    if bit == 1 and not exported:
        violations.append(Violation(
            kind="suppression", accused=prover,
            evidence=SuppressionEvidence(
                vector=vector, attestation=attestation, disclosure=disclosure,
            ),
        ))
    if bit == 0 and exported:
        violations.append(Violation(
            kind="exists-phantom", accused=prover,
            evidence=ExistsPhantomEvidence(
                vector=vector, disclosure=disclosure, attestation=attestation,
            ),
        ))

    return Verdict(verifier=recipient, violations=tuple(violations))


# -- link-state variant: ring-signed existence statements ---------------------


def ring_statement(config: RoundConfig) -> bytes:
    """The message the providers ring-sign: "a route exists this round"."""
    from repro.util.encoding import canonical_encode

    return canonical_encode(
        ("pvr-ring-exists", config.prover, config.round, tuple(config.providers))
    )


def ring_announce(
    keystore: KeyStore,
    config: RoundConfig,
    signer: str,
    random_bytes: Callable[[int], bytes] | None = None,
) -> ring_mod.RingSignature:
    """``signer`` (one of the providers) ring-signs the existence statement
    on behalf of the whole provider set."""
    members = list(config.providers)
    if signer not in members:
        raise ValueError(f"{signer!r} is not a provider")
    ring_keys = [keystore.public_key(m) for m in members]
    return ring_mod.sign(
        ring_statement(config),
        ring_keys,
        keystore.private_key(signer),
        members.index(signer),
        random_bytes,
    )


def verify_ring_provenance(
    keystore: KeyStore, config: RoundConfig, signature: ring_mod.RingSignature
) -> bool:
    """B's check in the link-state variant: *some* provider vouched for
    the route's existence, with no way to tell which."""
    ring_keys = [keystore.public_key(m) for m in config.providers]
    return ring_mod.verify(ring_statement(config), ring_keys, signature)
