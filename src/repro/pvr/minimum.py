"""Example #2: PVR verification of the minimum operator (Section 3.3).

The scenario of Figure 1: A is connected to providers N1..Nk and
recipient B, and has promised B to export the shortest of the routes
r1..rk.  One protocol *round* covers one decision (a change in A's input
set):

1. each Ni optionally sends A a signed announcement; A answers with a
   signed receipt;
2. A computes the monotone bit vector ``b_1..b_L`` (``b_i = 1`` iff some
   input has length ≤ i), commits to every bit, and signs the commitment
   vector (the neighbors gossip this statement);
3. A reveals to each providing Ni the opening of ``b_|ri|`` (signed), and
   to B: the export attestation (chosen route + provenance, or an
   explicit "nothing exported") plus the openings of *all* bits;
4. each neighbor runs its local checks (:func:`verify_as_provider`,
   :func:`verify_as_recipient`), and the gossip layer cross-checks the
   commitment statements.

The checks exactly cover the paper's three conditions — (1) exported ⇒
provided and signed, (2) provided ⇒ exported, (3) exported is no longer
than any provided — while revealing to each party only what plain BGP
plus the promise already implies (measured in :mod:`repro.pvr.leakage`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.bgp.route import Route
from repro.crypto.keystore import KeyStore
from repro.pvr.announcements import (
    Receipt,
    SignedAnnouncement,
    make_announcement,
    make_receipt,
)
from repro.pvr.commitments import (
    BitVectorOpenings,
    CommittedBitVector,
    ExportAttestation,
    SignedDisclosure,
    commit_bits,
    compute_length_bits,
    make_attestation,
    make_disclosure,
)
from repro.pvr.evidence import (
    BadOpeningEvidence,
    BadProvenanceEvidence,
    Complaint,
    FalseBitEvidence,
    MonotonicityEvidence,
    PhantomExportEvidence,
    ShorterAvailableEvidence,
    SuppressionEvidence,
    Verdict,
    Violation,
)

DEFAULT_MAX_LENGTH = 16
TOPIC = "pvr-min"


@dataclass(frozen=True)
class RoundConfig:
    """The fixed, publicly-known parameters of a verification round.

    ``slack`` encodes promise 3 of Section 2 ("a route no more than k
    hops longer than my best route"): the recipient tolerates an export
    up to ``slack`` hops above the committed minimum.  ``slack = 0`` is
    promise 1/2 (exact shortest), the default.  The slack is part of the
    publicly-known contract, so it appears in evidence and the judge
    checks against it.
    """

    prover: str
    providers: Tuple[str, ...]
    recipient: str
    round: int
    max_length: int = DEFAULT_MAX_LENGTH
    topic: str = TOPIC
    slack: int = 0

    def __post_init__(self) -> None:
        if not self.providers:
            raise ValueError("need at least one provider")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if self.prover in self.providers or self.prover == self.recipient:
            raise ValueError("prover cannot be its own neighbor")


@dataclass(frozen=True)
class ProviderView:
    """Everything A sends to one provider Ni in a round.

    ``extra_disclosures`` is empty in the honest protocol; a sloppy or
    malicious prover may over-disclose through it, which the leakage
    checker (not the violation verifiers) flags.
    """

    receipt: Optional[Receipt] = None
    vector: Optional[CommittedBitVector] = None
    disclosure: Optional[SignedDisclosure] = None
    extra_disclosures: Tuple[SignedDisclosure, ...] = ()


@dataclass(frozen=True)
class RecipientView:
    """Everything A sends to the recipient B in a round."""

    vector: Optional[CommittedBitVector] = None
    attestation: Optional[ExportAttestation] = None
    disclosures: Tuple[SignedDisclosure, ...] = ()


@dataclass(frozen=True)
class RoundTranscript:
    """The complete record of one round, as distributed across parties."""

    config: RoundConfig
    announcements: Mapping[str, Optional[SignedAnnouncement]]
    provider_views: Mapping[str, ProviderView]
    recipient_view: RecipientView


def announce(
    keystore: KeyStore,
    config: RoundConfig,
    routes: Mapping[str, Optional[Route]],
) -> Dict[str, Optional[SignedAnnouncement]]:
    """Each provider signs its (optional) route toward the prover."""
    announcements: Dict[str, Optional[SignedAnnouncement]] = {}
    for provider in config.providers:
        route = routes.get(provider)
        if route is None:
            announcements[provider] = None
        else:
            announcements[provider] = make_announcement(
                keystore, route, provider, config.prover, config.round
            )
    return announcements


class HonestProver:
    """A's honest behaviour for one minimum-protocol round.

    The fine-grained methods (``compute_bits``, ``choose_winner``,
    ``build_provider_view`` …) are override points for the adversary
    library — a Byzantine prover is an ``HonestProver`` subclass that
    deviates in exactly one documented way.

    ``backend`` (injected by the engine) fans the per-provider signing
    work out across execution workers; a subclass that overrides any
    per-item build hook automatically falls back to the serial path so
    Byzantine deviations are never bypassed.
    """

    #: execution backend for the signing hot path; ``None`` means serial
    backend = None

    #: the per-item hooks that must be unmodified for fan-out to be safe
    _FAN_OUT_HOOKS = ("issue_receipt", "build_provider_view",
                      "build_recipient_view")

    def __init__(
        self,
        keystore: KeyStore,
        random_bytes: Callable[[int], bytes] | None = None,
    ) -> None:
        self.keystore = keystore
        self.random_bytes = random_bytes

    def _fan_out_backend(self):
        """The backend to fan out over, or ``None`` to run serially —
        either no parallel backend is configured, or a subclass overrode
        a per-item hook (its deviation must see every call)."""
        backend = self.backend
        if backend is None or not getattr(backend, "parallel", False):
            return None
        cls = type(self)
        base = self._FAN_OUT_BASE
        for name in self._FAN_OUT_HOOKS:
            if getattr(cls, name) is not getattr(base, name):
                return None
        return backend

    # -- decision-relevant inputs ------------------------------------------

    def accept_announcements(
        self, config: RoundConfig, announcements: Mapping[str, Optional[SignedAnnouncement]]
    ) -> Dict[str, SignedAnnouncement]:
        """Validate and keep announcements that are well-formed for this
        round; malformed ones are treated as absent."""
        accepted: Dict[str, SignedAnnouncement] = {}
        for provider in config.providers:
            ann = announcements.get(provider)
            if ann is None:
                continue
            if ann.origin != provider or ann.recipient != config.prover:
                continue
            if ann.round != config.round:
                continue
            if not 1 <= len(ann.route.as_path) <= config.max_length:
                continue
            if not ann.verify(self.keystore):
                continue
            accepted[provider] = ann
        return accepted

    # -- override points ------------------------------------------------------

    def compute_bits(
        self, config: RoundConfig, accepted: Mapping[str, SignedAnnouncement]
    ) -> Tuple[int, ...]:
        lengths = [len(a.route.as_path) for a in accepted.values()]
        return compute_length_bits(lengths, config.max_length)

    def choose_winner(
        self, config: RoundConfig, accepted: Mapping[str, SignedAnnouncement]
    ) -> Optional[SignedAnnouncement]:
        """The shortest announcement; ties break on provider name."""
        if not accepted:
            return None
        return min(
            accepted.values(),
            key=lambda a: (len(a.route.as_path), a.origin),
        )

    def issue_receipt(
        self, config: RoundConfig, announcement: SignedAnnouncement
    ) -> Optional[Receipt]:
        return make_receipt(self.keystore, config.prover, announcement)

    def build_provider_view(
        self,
        config: RoundConfig,
        provider: str,
        announcement: Optional[SignedAnnouncement],
        receipt: Optional[Receipt],
        vector: CommittedBitVector,
        openings: BitVectorOpenings,
    ) -> ProviderView:
        if announcement is None:
            # a silent provider still hears the commitment via gossip but
            # receives no disclosure (it is owed nothing this round)
            return ProviderView(receipt=None, vector=vector, disclosure=None)
        index = len(announcement.route.as_path)
        disclosure = make_disclosure(
            self.keystore,
            config.prover,
            config.topic,
            config.round,
            index,
            openings.opening(index),
        )
        return ProviderView(receipt=receipt, vector=vector, disclosure=disclosure)

    def build_recipient_view(
        self,
        config: RoundConfig,
        winner: Optional[SignedAnnouncement],
        vector: CommittedBitVector,
        openings: BitVectorOpenings,
    ) -> RecipientView:
        attestation = self._attest(config, winner)
        disclosures = tuple(
            make_disclosure(
                self.keystore, config.prover, config.topic, config.round,
                index, openings.opening(index),
            )
            for index in range(1, config.max_length + 1)
        )
        return RecipientView(
            vector=vector, attestation=attestation, disclosures=disclosures
        )

    # -- the round ---------------------------------------------------------------

    def run(
        self,
        config: RoundConfig,
        announcements: Mapping[str, Optional[SignedAnnouncement]],
    ) -> RoundTranscript:
        accepted = self.accept_announcements(config, announcements)
        bits = self.compute_bits(config, accepted)
        vector, openings = commit_bits(
            self.keystore, config.prover, config.topic, config.round, bits,
            self.random_bytes,
        )
        winner = self.choose_winner(config, accepted)
        backend = self._fan_out_backend()
        if backend is not None:
            provider_views, recipient_view = self._run_fanned_out(
                backend, config, accepted, winner, vector, openings
            )
        else:
            receipts = {
                provider: self.issue_receipt(config, ann)
                for provider, ann in accepted.items()
            }
            provider_views = {
                provider: self.build_provider_view(
                    config,
                    provider,
                    accepted.get(provider),
                    receipts.get(provider),
                    vector,
                    openings,
                )
                for provider in config.providers
            }
            recipient_view = self.build_recipient_view(
                config, winner, vector, openings
            )
        return RoundTranscript(
            config=config,
            announcements=dict(announcements),
            provider_views=provider_views,
            recipient_view=recipient_view,
        )

    def _run_fanned_out(
        self,
        backend,
        config: RoundConfig,
        accepted: Mapping[str, SignedAnnouncement],
        winner: Optional[SignedAnnouncement],
        vector: CommittedBitVector,
        openings: BitVectorOpenings,
    ):
        """The honest round's signing work as parallel tasks.

        One task per provider (receipt + disclosure signature) and one
        per recipient-disclosure index; FDH-RSA determinism makes the
        resulting views byte-identical to the serial path, and
        :func:`repro.pvr.execution.run_tasks` merges operation counts in
        task order so the crypto counters match too.
        """
        from repro.pvr import execution

        tasks = [
            execution.CryptoTask(
                key=("provider", provider),
                fn=_provider_round_task,
                args=(config, provider, accepted.get(provider), vector,
                      openings),
            )
            for provider in config.providers
        ]
        tasks.extend(
            execution.CryptoTask(
                key=("disclosure", index),
                fn=_recipient_disclosure_task,
                args=(config, index, openings.opening(index)),
            )
            for index in range(1, config.max_length + 1)
        )
        return self._collect_fanned_out(backend, config, winner, vector, tasks)

    def _collect_fanned_out(
        self,
        backend,
        config: RoundConfig,
        winner: Optional[SignedAnnouncement],
        vector: CommittedBitVector,
        tasks,
    ):
        """Run ``("provider", name)`` / ``("disclosure", index)`` tasks,
        merge their results in task order, and assemble the recipient
        view — shared by the plain and batched fanned-out rounds so
        serial/parallel parity has exactly one merge path."""
        from repro.pvr import execution

        provider_views: Dict[str, ProviderView] = {}
        disclosures: Dict[int, SignedDisclosure] = {}
        for result in execution.run_tasks(backend, self.keystore, tasks):
            kind, key = result.key
            if kind == "provider":
                provider_views[key] = result.value
            else:
                disclosures[key] = result.value
        recipient_view = RecipientView(
            vector=vector,
            attestation=self._attest(config, winner),
            disclosures=tuple(
                disclosures[index]
                for index in range(1, config.max_length + 1)
            ),
        )
        return provider_views, recipient_view

    def _attest(
        self, config: RoundConfig, winner: Optional[SignedAnnouncement]
    ) -> ExportAttestation:
        """The signed export attestation for the round's chosen route."""
        if winner is None:
            return make_attestation(
                self.keystore, config.prover, config.recipient, config.round,
                None, None,
            )
        return make_attestation(
            self.keystore, config.prover, config.recipient, config.round,
            winner.route.exported_by(config.prover), winner,
        )


#: the class whose hook implementations count as "unmodified" for fan-out
HonestProver._FAN_OUT_BASE = HonestProver


# -- execution-backend tasks ---------------------------------------------------
#
# Module-level (hence picklable) units of the honest prover's signing
# work.  Each rebuilds a throwaway ``HonestProver`` around the worker's
# keystore view and calls the *base* hooks, so a fanned-out round
# produces exactly the views the serial honest path would.


def _provider_round_task(
    keystore: KeyStore,
    config: RoundConfig,
    provider: str,
    announcement: Optional[SignedAnnouncement],
    vector: CommittedBitVector,
    openings: BitVectorOpenings,
) -> ProviderView:
    """Receipt + provider view for one provider, on a worker."""
    helper = HonestProver(keystore)
    receipt = (
        None
        if announcement is None
        else helper.issue_receipt(config, announcement)
    )
    return helper.build_provider_view(
        config, provider, announcement, receipt, vector, openings
    )


def _recipient_disclosure_task(
    keystore: KeyStore,
    config: RoundConfig,
    index: int,
    opening,
) -> SignedDisclosure:
    """One of the recipient's L signed bit disclosures, on a worker."""
    return make_disclosure(
        keystore, config.prover, config.topic, config.round, index, opening
    )


# -- verifier side --------------------------------------------------------------


def verify_as_provider(
    keystore: KeyStore,
    config: RoundConfig,
    provider: str,
    announcement: Optional[SignedAnnouncement],
    view: ProviderView,
) -> Verdict:
    """Ni's checks: my route was receipted, counted (b_|ri| = 1), and the
    commitment I was shown is internally consistent."""
    violations = []
    prover = config.prover

    if view.vector is not None and not view.vector.is_consistent(keystore):
        violations.append(
            Violation(
                kind="malformed-commitment",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="malformed-commitment",
                ),
                detail="commitment vector fails signature/consistency checks",
            )
        )
        return Verdict(verifier=provider, violations=tuple(violations))

    if announcement is None:
        # nothing was provided, so nothing is owed
        return Verdict(verifier=provider)

    if view.receipt is None:
        violations.append(
            Violation(
                kind="missing-receipt",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="missing-receipt",
                ),
            )
        )
    elif not (
        view.receipt.verify(keystore)
        and view.receipt.issuer == prover
        and view.receipt.provider == provider
        and view.receipt.round == config.round
        and view.receipt.announcement_digest == announcement.digest()
    ):
        violations.append(
            Violation(
                kind="invalid-receipt",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="invalid-receipt",
                ),
            )
        )

    if view.vector is None:
        violations.append(
            Violation(
                kind="missing-commitment",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="missing-commitment",
                ),
            )
        )
        return Verdict(verifier=provider, violations=tuple(violations))

    expected_index = len(announcement.route.as_path)
    disclosure = view.disclosure
    if disclosure is None:
        violations.append(
            Violation(
                kind="missing-disclosure",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="missing-disclosure",
                    context=(expected_index,),
                ),
            )
        )
        return Verdict(verifier=provider, violations=tuple(violations))

    if not disclosure.verify_signature(keystore) or disclosure.round != config.round:
        violations.append(
            Violation(
                kind="unsigned-disclosure",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="unsigned-disclosure",
                ),
            )
        )
        return Verdict(verifier=provider, violations=tuple(violations))

    if not disclosure.matches(view.vector):
        violations.append(
            Violation(
                kind="bad-opening",
                accused=prover,
                evidence=BadOpeningEvidence(
                    vector=view.vector, disclosure=disclosure
                ),
            )
        )
        return Verdict(verifier=provider, violations=tuple(violations))

    if disclosure.index != expected_index:
        violations.append(
            Violation(
                kind="wrong-bit-disclosed",
                accused=prover,
                complaint=Complaint(
                    accuser=provider, accused=prover, round=config.round,
                    claim="wrong-bit-disclosed",
                    context=(disclosure.index, expected_index),
                ),
            )
        )
    elif disclosure.opening.value != 1:
        # my route has length L, so an honest b_L must be 1; with the
        # receipt this is transferable proof
        if view.receipt is not None:
            violations.append(
                Violation(
                    kind="false-bit",
                    accused=prover,
                    evidence=FalseBitEvidence(
                        vector=view.vector,
                        disclosure=disclosure,
                        announcement=announcement,
                        receipt=view.receipt,
                    ),
                )
            )
        else:
            violations.append(
                Violation(
                    kind="false-bit-unreceipted",
                    accused=prover,
                    complaint=Complaint(
                        accuser=provider, accused=prover, round=config.round,
                        claim="false-bit-unreceipted",
                    ),
                )
            )

    return Verdict(verifier=provider, violations=tuple(violations))


def verify_as_recipient(
    keystore: KeyStore, config: RoundConfig, view: RecipientView
) -> Verdict:
    """B's checks (Section 3.3): provenance, monotonicity, and that the
    exported route's length equals the least committed set bit."""
    violations = []
    prover = config.prover
    recipient = config.recipient

    def complain(claim: str, context: tuple = ()) -> None:
        violations.append(
            Violation(
                kind=claim,
                accused=prover,
                complaint=Complaint(
                    accuser=recipient, accused=prover, round=config.round,
                    claim=claim, context=context,
                ),
            )
        )

    vector = view.vector
    if vector is None or not vector.is_consistent(keystore):
        complain("missing-or-malformed-commitment")
        return Verdict(verifier=recipient, violations=tuple(violations))

    attestation = view.attestation
    if attestation is None:
        complain("missing-attestation")
        return Verdict(verifier=recipient, violations=tuple(violations))
    if not attestation.verify_signature(keystore) or (
        attestation.recipient != recipient or attestation.round != config.round
    ):
        complain("invalid-attestation")
        return Verdict(verifier=recipient, violations=tuple(violations))

    # condition 1: exported => provided, under the provider's signature
    if not attestation.provenance_valid(keystore) or (
        attestation.provenance is not None
        and attestation.provenance.origin not in config.providers
    ):
        violations.append(
            Violation(
                kind="bad-provenance",
                accused=prover,
                evidence=BadProvenanceEvidence(attestation=attestation),
            )
        )

    # reconstruct the bit vector from the disclosures
    by_index: Dict[int, SignedDisclosure] = {}
    for disclosure in view.disclosures:
        if not disclosure.verify_signature(keystore):
            complain("unsigned-disclosure", (disclosure.index,))
            continue
        if disclosure.round != config.round or disclosure.topic != config.topic:
            complain("mismatched-disclosure", (disclosure.index,))
            continue
        if not disclosure.matches(vector):
            violations.append(
                Violation(
                    kind="bad-opening",
                    accused=prover,
                    evidence=BadOpeningEvidence(
                        vector=vector, disclosure=disclosure
                    ),
                )
            )
            continue
        by_index[disclosure.index] = disclosure

    missing = [
        index
        for index in range(1, config.max_length + 1)
        if index not in by_index
    ]
    if missing:
        complain("missing-disclosures", tuple(missing))
        return Verdict(verifier=recipient, violations=tuple(violations))

    bits = {index: by_index[index].opening.value for index in by_index}

    # monotonicity: b_i = 1 implies b_j = 1 for all j > i
    set_indices = [i for i, b in bits.items() if b == 1]
    clear_indices = [i for i, b in bits.items() if b == 0]
    for i in set_indices:
        later_clear = [j for j in clear_indices if j > i]
        if later_clear:
            violations.append(
                Violation(
                    kind="non-monotone",
                    accused=prover,
                    evidence=MonotonicityEvidence(
                        vector=vector,
                        set_bit=by_index[i],
                        clear_bit=by_index[min(later_clear)],
                    ),
                )
            )
            break

    exported = attestation.exported_length()
    min_set = min(set_indices) if set_indices else None

    if exported is None:
        if min_set is not None:
            # a route was available but nothing was exported
            violations.append(
                Violation(
                    kind="suppression",
                    accused=prover,
                    evidence=SuppressionEvidence(
                        vector=vector,
                        attestation=attestation,
                        disclosure=by_index[min_set],
                    ),
                )
            )
    else:
        if not 1 <= exported <= config.max_length:
            complain("export-length-out-of-range", (exported,))
        else:
            if bits.get(exported) == 0:
                # exported a route the commitment says did not exist
                violations.append(
                    Violation(
                        kind="phantom-export",
                        accused=prover,
                        evidence=PhantomExportEvidence(
                            vector=vector,
                            attestation=attestation,
                            disclosure=by_index[exported],
                        ),
                    )
                )
            # condition 3, generalized to promise 3: a route more than
            # `slack` hops shorter than the export was available
            shorter_set = [i for i in set_indices if i < exported - config.slack]
            if shorter_set:
                violations.append(
                    Violation(
                        kind="shorter-available",
                        accused=prover,
                        evidence=ShorterAvailableEvidence(
                            vector=vector,
                            attestation=attestation,
                            disclosure=by_index[min(shorter_set)],
                            slack=config.slack,
                        ),
                    )
                )

    return Verdict(verifier=recipient, violations=tuple(violations))
