"""PVR attached to a running BGP network.

The protocol modules verify single rounds in isolation; this module runs
them *in situ*: after the simulated AS network converges on a prefix, a
monitored AS A executes one verification round per exporting neighbor,
with every protocol message travelling over the same simulated links as
the BGP updates (so the SCALE benchmark's bytes/messages/latency numbers
include PVR's real transport cost).

Message flow per round, mirroring Section 3.3:

1. each provider Ni re-announces its current route with a PVR signature
   (``AnnouncePayload``);
2. A receipts, commits, and broadcasts its signed commitment statement to
   every neighbor (``CommitPayload``) — the gossip substrate;
3. A sends each Ni its provider view and B its recipient view
   (``ViewPayload``);
4. neighbors verify locally and gossip the statements pairwise.

Crypto cost is measured via the keystore's operation counters and wall
clock; transport cost via the network's byte/message counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bgp.network import BGPNetwork
from repro.bgp.prefix import Prefix
from repro.crypto.keystore import KeyStore
from repro.promises.spec import ShortestRoute
from repro.pvr.engine import VerificationSession
from repro.pvr.evidence import Verdict
from repro.pvr.minimum import HonestProver
from repro.pvr.session import PromiseSpec


@dataclass(frozen=True)
class AnnouncePayload:
    """Ni -> A: the PVR-signed announcement."""

    announcement: object
    is_pvr = True


@dataclass(frozen=True)
class CommitPayload:
    """A -> all neighbors: the signed commitment statement."""

    statement: object
    is_pvr = True


@dataclass(frozen=True)
class ViewPayload:
    """A -> one neighbor: its round view (provider or recipient)."""

    view: object
    is_pvr = True


@dataclass
class RoundStats:
    """Cost accounting for one deployment round."""

    prover: str
    recipient: str
    providers: Tuple[str, ...]
    messages: int = 0
    bytes: int = 0
    signatures: int = 0
    verifications: int = 0
    wall_seconds: float = 0.0
    violations: int = 0
    equivocations: int = 0


@dataclass
class DeploymentReport:
    """Aggregate across all rounds of a deployment run."""

    rounds: List[RoundStats] = field(default_factory=list)

    def total(self, attribute: str) -> float:
        return sum(getattr(r, attribute) for r in self.rounds)

    def violation_free(self) -> bool:
        return all(r.violations == 0 and r.equivocations == 0 for r in self.rounds)


class PVRDeployment:
    """Runs PVR rounds for monitored ASes on a converged BGP network."""

    def __init__(
        self,
        network: BGPNetwork,
        keystore: KeyStore,
        max_length: int = 16,
    ) -> None:
        self.network = network
        self.keystore = keystore
        self.max_length = max_length
        for asn in network.as_names():
            keystore.register(asn)
        self._round_counter = 0
        self._pending: List[Tuple[str, Prefix]] = []

    # -- continuous operation -------------------------------------------------

    def watch(self, asn: str) -> None:
        """Arm continuous verification for ``asn``: every decision change
        queues a verification round ("such a task would have to be
        performed for every single BGP update", Section 3.1).

        Rounds cannot run inside the BGP event loop (their messages share
        the links), so they are queued and executed by
        :meth:`run_pending` once the network has quiesced.
        """
        router = self.network.router(asn)

        def on_decision(prefix, candidates, best) -> None:
            self._pending.append((asn, prefix))

        router.decision_hook = on_decision

    def run_pending(self) -> DeploymentReport:
        """Run one round per queued (AS, prefix) decision change, toward
        every neighbor the AS currently exports the prefix to."""
        report = DeploymentReport()
        pending, self._pending = self._pending, []
        for asn, prefix in dict.fromkeys(pending):
            router = self.network.router(asn)
            providers = router.adj_rib_in.neighbors_announcing(prefix)
            if not providers:
                continue
            for recipient in router.established_peers():
                if router.adj_rib_out.advertised(recipient, prefix) is None:
                    continue
                if recipient in providers and len(providers) == 1:
                    continue
                _, stats = self.monitored_round(asn, prefix, recipient)
                report.rounds.append(stats)
        return report

    def monitored_round(
        self,
        prover_as: str,
        prefix: Prefix,
        recipient: str,
        prover: HonestProver | None = None,
    ) -> Tuple[Dict[str, Verdict], RoundStats]:
        """One verification round: ``prover_as`` proves its export of
        ``prefix`` toward ``recipient`` against its current Adj-RIB-In."""
        router = self.network.router(prover_as)
        transport = self.network.transport
        providers = tuple(
            n
            for n in router.adj_rib_in.neighbors_announcing(prefix)
            if n != recipient
        )
        if not providers:
            raise ValueError(
                f"{prover_as} has no providers for {prefix} (besides the recipient)"
            )
        self._round_counter += 1
        spec = PromiseSpec(
            promise=ShortestRoute(),
            prover=prover_as,
            providers=providers,
            recipients=(recipient,),
            variant="minimum",
            max_length=self.max_length,
        )
        session = VerificationSession(
            self.keystore, spec, round=self._round_counter, prover=prover
        )
        routes = {
            n: router.adj_rib_in.route_from(n, prefix) for n in providers
        }

        sign_before = self.keystore.sign_count
        verify_before = self.keystore.verify_count
        bytes_before = transport.bytes_sent
        messages_before = transport.delivered
        started = time.perf_counter()

        # 1. providers announce over the wire
        announcements = session.announce(routes)
        for provider, ann in announcements.items():
            if ann is not None:
                transport.send(provider, prover_as, AnnouncePayload(ann))
        transport.run()

        # 2. the prover commits (accept + decide + sign)
        statement = session.commit()

        # 3. distribute commitment + views over the wire
        views = session.disclose()
        for provider in providers:
            transport.send(prover_as, provider, ViewPayload(views[provider]))
        transport.send(prover_as, recipient, ViewPayload(views[recipient]))
        if statement is not None:
            for neighbor in self.network.transport.neighbors(prover_as):
                transport.send(prover_as, neighbor, CommitPayload(statement))
        transport.run()

        # 4. collective verification from what actually ARRIVED (a dropped
        # or tampered wire message must affect the verdicts), incl. gossip
        received = self._collect_views(prover_as, providers, recipient)
        report = session.verify(received=received)
        verdicts: Dict[str, Verdict] = dict(report.verdicts)

        stats = RoundStats(
            prover=prover_as,
            recipient=recipient,
            providers=providers,
            messages=transport.delivered - messages_before,
            bytes=transport.bytes_sent - bytes_before,
            signatures=self.keystore.sign_count - sign_before,
            verifications=self.keystore.verify_count - verify_before,
            wall_seconds=time.perf_counter() - started,
            violations=sum(
                len(v.violations) for v in verdicts.values()
            ),
            equivocations=len(report.equivocations),
        )
        return verdicts, stats

    def _collect_views(
        self, prover_as: str, providers: Tuple[str, ...], recipient: str
    ) -> Dict[str, object]:
        """Drain each neighbor's PVR inbox for this round's view payload."""
        received: Dict[str, object] = {}
        for name in providers + (recipient,):
            router = self.network.router(name)
            remaining = []
            for message in router.pvr_inbox:
                payload = message.payload
                if message.src == prover_as and isinstance(payload, ViewPayload):
                    received[name] = payload.view
                else:
                    remaining.append(message)
            router.pvr_inbox[:] = remaining
        return received

    def promise4_round(self, prover_as: str, prefix: Prefix):
        """Promise 4 in deployment: A attests its export of ``prefix`` to
        *every* exporting neighbor; recipients gossip the attestations and
        cross-check lengths (see :mod:`repro.pvr.crosscheck`).

        Returns the :class:`repro.pvr.crosscheck.Promise4Result`.  BGP's
        own export already serves everyone the same Loc-RIB route, so an
        honest router always passes; the scenario choosers in crosscheck
        model the discriminating cases.
        """
        from repro.pvr.crosscheck import cross_check
        from repro.pvr.crosscheck import Promise4Result
        from repro.pvr.commitments import make_attestation
        from repro.pvr.announcements import make_announcement

        router = self.network.router(prover_as)
        recipients = [
            peer
            for peer in router.established_peers()
            if router.adj_rib_out.advertised(peer, prefix) is not None
        ]
        if len(recipients) < 2:
            raise ValueError(
                f"{prover_as} exports {prefix} to fewer than two neighbors"
            )
        self._round_counter += 1
        round_no = self._round_counter
        best = router.loc_rib.best(prefix)
        attestations = {}
        for recipient in recipients:
            if best is None or best.neighbor is None:
                attestations[recipient] = make_attestation(
                    self.keystore, prover_as, recipient, round_no, None, None
                )
                continue
            announced = router.adj_rib_in.route_from(best.neighbor, prefix)
            provenance = make_announcement(
                self.keystore, announced, best.neighbor, prover_as, round_no
            )
            attestations[recipient] = make_attestation(
                self.keystore, prover_as, recipient, round_no,
                announced.exported_by(prover_as), provenance,
            )
        verdicts = {
            recipient: cross_check(
                self.keystore, recipient, attestations[recipient],
                list(attestations.values()),
            )
            for recipient in recipients
        }
        return Promise4Result(attestations=attestations, verdicts=verdicts)

    def verify_prefix_everywhere(
        self, prefix: Prefix, max_rounds: int | None = None
    ) -> DeploymentReport:
        """Run one round for every (AS, exporting neighbor) pair that has
        providers for ``prefix`` — the whole-network deployment sweep."""
        report = DeploymentReport()
        count = 0
        for asn in self.network.as_names():
            router = self.network.router(asn)
            providers = router.adj_rib_in.neighbors_announcing(prefix)
            if not providers:
                continue
            for recipient in router.established_peers():
                if recipient in providers and len(providers) == 1:
                    continue  # the only provider cannot also be the auditor
                if router.adj_rib_out.advertised(recipient, prefix) is None:
                    continue
                if max_rounds is not None and count >= max_rounds:
                    return report
                _, stats = self.monitored_round(asn, prefix, recipient)
                report.rounds.append(stats)
                count += 1
        return report
