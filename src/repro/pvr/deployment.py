"""PVR attached to a running BGP network — the legacy one-shot API.

.. deprecated-design::
   :class:`PVRDeployment` predates the audit plane and is kept as a thin
   *compatibility façade* over :class:`repro.audit.monitor.Monitor`.
   New code should use the monitor directly: it adds policy selection
   (any promise, per-neighbor overrides), epoch scheduling with bounded
   work, incremental commitment reuse, a verdict-event stream and a
   queryable evidence store.  This module only translates the old
   call shapes — ``watch``/``run_pending``, ``monitored_round``,
   ``verify_prefix_everywhere`` — onto that engine.

The wire payloads (``AnnouncePayload``, ``CommitPayload``,
``ViewPayload``) and the cost records (:class:`RoundStats`,
:class:`DeploymentReport`) now live in :mod:`repro.audit.wire` and are
re-exported here unchanged for existing importers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.audit.monitor import Monitor
from repro.audit.wire import (
    AnnouncePayload,
    CommitPayload,
    DeploymentReport,
    RoundStats,
    ViewPayload,
)
from repro.bgp.network import BGPNetwork
from repro.bgp.prefix import Prefix
from repro.crypto.keystore import KeyStore
from repro.promises.spec import Promise, ShortestRoute
from repro.pvr.evidence import Verdict
from repro.pvr.minimum import HonestProver
from repro.pvr.session import PromiseSpec

__all__ = [
    "AnnouncePayload",
    "CommitPayload",
    "DeploymentReport",
    "PVRDeployment",
    "RoundStats",
    "ViewPayload",
]


class PVRDeployment:
    """Runs PVR rounds for monitored ASes on a converged BGP network.

    ``promise`` selects the contract every round verifies (default: the
    paper's promise 2, :class:`~repro.promises.spec.ShortestRoute`); any
    :class:`~repro.promises.spec.Promise` template works — the audit
    plane resolves it to the protocol variant that covers it.
    ``backend`` is passed to the execution layer.
    """

    def __init__(
        self,
        network: BGPNetwork,
        keystore: KeyStore,
        max_length: int = 16,
        promise: Optional[Promise] = None,
        backend: object = None,
    ) -> None:
        self.network = network
        self.keystore = keystore
        self.max_length = max_length
        self.promise = promise if promise is not None else ShortestRoute()
        self.monitor = Monitor(keystore, backend=backend).attach(network)
        self._watched: Dict[str, object] = {}

    @property
    def _round_counter(self) -> int:
        return self.monitor._round_counter

    # -- continuous operation -------------------------------------------------

    def watch(self, asn: str, promise: Optional[Promise] = None) -> None:
        """Arm continuous verification for ``asn``: every decision change
        queues a verification round ("such a task would have to be
        performed for every single BGP update", Section 3.1).

        Rounds cannot run inside the BGP event loop (their messages share
        the links), so they are queued and executed by
        :meth:`run_pending` once the network has quiesced.  This is a
        façade over :meth:`repro.audit.monitor.Monitor.policy`, which
        registers its churn hooks additively — other decision hooks on
        the router are preserved.  Like the legacy implementation,
        re-watching an AS replaces its watcher rather than stacking a
        second one, and the present state is not audited up front
        (``audit_now=False``; the monitor's own default would audit it).
        Beyond the legacy hook, the audit plane also picks up full-table
        resends when a session (re-)establishes — exports that change
        without any local decision are queued too.
        """
        previous = self._watched.pop(asn, None)
        if previous is not None:
            self.monitor.remove_policy(previous)
        self._watched[asn] = self.monitor.policy(
            asn,
            promise if promise is not None else self.promise,
            max_length=self.max_length,
            name=f"watch:{asn}",
            audit_now=False,
        )

    def run_pending(self) -> DeploymentReport:
        """Run one verification epoch over the queued decision changes.

        The audit plane's incremental path applies: a queued (AS,
        prefix, recipient) tuple whose inputs are unchanged since its
        last round is served from the commitment cache with zero crypto
        operations (its :class:`RoundStats` entry has ``reused=True``).
        """
        epoch = self.monitor.run_epoch()
        return DeploymentReport(rounds=[e.stats for e in epoch.events])

    def monitored_round(
        self,
        prover_as: str,
        prefix: Prefix,
        recipient: str,
        prover: HonestProver | None = None,
        promise: Optional[Promise] = None,
        spec: Optional[PromiseSpec] = None,
    ) -> Tuple[Dict[str, Verdict], RoundStats]:
        """One verification round: ``prover_as`` proves its export of
        ``prefix`` toward ``recipient`` against its current Adj-RIB-In.

        ``promise`` (or a full ``spec``) overrides the deployment's
        contract for this round; ``prover`` injects a Byzantine prover.
        """
        event = self.monitor.audit_once(
            prover_as,
            prefix,
            recipient,
            promise=promise if promise is not None else self.promise,
            spec=spec,
            prover=prover,
            max_length=self.max_length,
        )
        return dict(event.report.verdicts), event.stats

    def verify_prefix_everywhere(
        self, prefix: Prefix, max_rounds: int | None = None
    ) -> DeploymentReport:
        """Run one round for every (AS, exporting neighbor) pair that has
        providers for ``prefix`` — the whole-network deployment sweep."""
        report = DeploymentReport()
        count = 0
        for asn in self.network.as_names():
            router = self.network.router(asn)
            providers = router.adj_rib_in.neighbors_announcing(prefix)
            if not providers:
                continue
            for recipient in router.established_peers():
                if recipient in providers and len(providers) == 1:
                    continue  # the only provider cannot also be the auditor
                if router.adj_rib_out.advertised(recipient, prefix) is None:
                    continue
                if max_rounds is not None and count >= max_rounds:
                    return report
                _, stats = self.monitored_round(asn, prefix, recipient)
                report.rounds.append(stats)
                count += 1
        return report

    # -- promise 4 ------------------------------------------------------------

    def promise4_round(self, prover_as: str, prefix: Prefix):
        """Promise 4 in deployment: A attests its export of ``prefix`` to
        *every* exporting neighbor; recipients gossip the attestations and
        cross-check lengths (see :mod:`repro.pvr.crosscheck`).

        Returns the :class:`repro.pvr.crosscheck.Promise4Result`.  BGP's
        own export already serves everyone the same Loc-RIB route, so an
        honest router always passes; the scenario choosers in crosscheck
        model the discriminating cases.
        """
        from repro.pvr.crosscheck import cross_check
        from repro.pvr.crosscheck import Promise4Result
        from repro.pvr.commitments import make_attestation
        from repro.pvr.announcements import make_announcement

        router = self.network.router(prover_as)
        recipients = [
            peer
            for peer in router.established_peers()
            if router.adj_rib_out.advertised(peer, prefix) is not None
        ]
        if len(recipients) < 2:
            raise ValueError(
                f"{prover_as} exports {prefix} to fewer than two neighbors"
            )
        round_no = self.monitor._next_round()
        best = router.loc_rib.best(prefix)
        attestations = {}
        for recipient in recipients:
            if best is None or best.neighbor is None:
                attestations[recipient] = make_attestation(
                    self.keystore, prover_as, recipient, round_no, None, None
                )
                continue
            announced = router.adj_rib_in.route_from(best.neighbor, prefix)
            provenance = make_announcement(
                self.keystore, announced, best.neighbor, prover_as, round_no
            )
            attestations[recipient] = make_attestation(
                self.keystore, prover_as, recipient, round_no,
                announced.exported_by(prover_as), provenance,
            )
        verdicts = {
            recipient: cross_check(
                self.keystore, recipient, attestations[recipient],
                list(attestations.values()),
            )
            for recipient in recipients
        }
        return Promise4Result(attestations=attestations, verdicts=verdicts)
