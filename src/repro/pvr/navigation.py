"""Graph navigation and verification for the generalized protocol
(paper Section 3.7).

"We must enable a network's route-flow graph to be navigated by that
network's neighbors without learning about the existence of rules or
variables they are not authorized to see."

:class:`Navigator` is the verifier-side client: every record it fetches is
checked against the prover's *signed* Merkle root, and every disclosed
aspect against the record's commitment — so anything the navigator
accepts is attributable to the prover.

On top of navigation sit the two collective verification procedures:

* :func:`verify_as_input_owner` — Ni checks its announcement entered the
  graph (its input variable's payload equals its route) and was counted
  by the consuming operator (evidence bit ``b_|ri|`` = 1);
* :func:`verify_as_output_recipient` — B walks backward from its output
  variable, checks each operator's declared type against the expected
  skeleton, and checks the export against the final operator's evidence
  (minimum-length consistency, Section 3.3's condition set, generalized
  per operator type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.keystore import KeyStore
from repro.net.gossip import SignedStatement
from repro.pvr.announcements import Receipt, SignedAnnouncement
from repro.pvr.commitments import ExportAttestation, SignedDisclosure
from repro.pvr.evidence import (
    BadOpeningEvidence,
    Complaint,
    FalseBitEvidence,
    MonotonicityEvidence,
    PhantomExportEvidence,
    ShorterAvailableEvidence,
    SuppressionEvidence,
    Verdict,
    Violation,
)
from repro.pvr.protocol import AccessDenied, GraphProver, GraphRoundConfig
from repro.pvr.vertex_info import (
    ASPECT_PAYLOAD,
    ASPECT_PREDS,
    ASPECT_SUCCS,
    VertexRecord,
    verify_aspect,
)
from repro.util.encoding import canonical_decode

# operator type tags whose evidence semantics are "minimum length wins"
MIN_SEMANTICS = ("min-path-length", "shorter-of")
EXISTS_SEMANTICS = ("existential",)

# selection operators preserve the owner invariant: if a route of length L
# is among (or selected into) the inputs, the aggregate bit b_L is 1 both
# here and at every downstream selection operator
_SELECTION_TAGS = ("min-path-length", "shorter-of", "union")
_FILTER_TAGS = (
    "neighbor-filter",
    "community-filter",
    "as-absence-filter",
    "prefix-filter",
)


class NavigationError(Exception):
    """Raised when the prover's responses fail cryptographic checks."""


class Navigator:
    """A verifying client for one neighbor against one prover round."""

    def __init__(
        self,
        keystore: KeyStore,
        me: str,
        prover: GraphProver,
        root_statement: SignedStatement,
    ) -> None:
        if not keystore.verify(
            root_statement.author,
            root_statement.signed_bytes(),
            root_statement.signature,
        ):
            raise NavigationError("root statement signature invalid")
        self.keystore = keystore
        self.me = me
        self.prover = prover
        self.root_statement = root_statement
        self.root = root_statement.value
        self._records: Dict[str, VertexRecord] = {}

    # -- checked queries -----------------------------------------------------

    def fetch_record(self, vertex: str) -> Optional[VertexRecord]:
        """Retrieve and proof-check one vertex record."""
        if vertex in self._records:
            return self._records[vertex]
        response = self.prover.get_record(self.me, vertex)
        if response is None:
            return None
        record = response.record
        if record.name != vertex:
            raise NavigationError("record name mismatch")
        if response.proof.payload != record.leaf_payload():
            raise NavigationError("proof payload does not match record")
        if response.proof.path != record.address():
            raise NavigationError("proof path does not match vertex address")
        if not response.proof.verify(self.root):
            raise NavigationError("Merkle proof does not reach the signed root")
        self._records[vertex] = record
        return record

    def open_aspect(self, vertex: str, aspect: str):
        """Request an aspect opening; returns the opened value.

        Raises :class:`AccessDenied` (propagated) when α forbids it and
        :class:`NavigationError` when the opening fails its commitment.
        """
        record = self.fetch_record(vertex)
        if record is None:
            raise NavigationError(f"no record for {vertex!r}")
        response = self.prover.open_aspect(self.me, vertex, aspect)
        if response.vertex != vertex or response.aspect != aspect:
            raise NavigationError("aspect response mismatch")
        if not verify_aspect(record, aspect, response.opening):
            raise NavigationError(f"{aspect} opening does not match commitment")
        return response.opening.value

    def predecessors(self, vertex: str) -> Tuple[str, ...]:
        return tuple(self.open_aspect(vertex, ASPECT_PREDS))

    def successors(self, vertex: str) -> Tuple[str, ...]:
        return tuple(self.open_aspect(vertex, ASPECT_SUCCS))

    def payload(self, vertex: str):
        return self.open_aspect(vertex, ASPECT_PAYLOAD)


def _route_passes_filter(type_tag: str, params, route) -> bool:
    """Replicate a filter operator's effect on the owner's own route.

    The owner knows its route and (per the paper's α) the operator's
    function, so it can compute locally whether its announcement survives.
    """
    if type_tag == "neighbor-filter":
        (neighbors,) = params
        return route.neighbor in neighbors
    if type_tag == "community-filter":
        community, require = params
        return route.has_community(community) == bool(require)
    if type_tag == "as-absence-filter":
        (asn,) = params
        return not route.as_path.contains(asn)
    if type_tag == "prefix-filter":
        from repro.bgp.prefix import Prefix

        prefix_text, exact = params
        prefix = Prefix.parse(prefix_text)
        if exact:
            return route.prefix == prefix
        return prefix.contains(route.prefix)
    raise ValueError(f"not a filter: {type_tag}")


def owner_check_operators(
    navigator: Navigator, input_variable: str, route
) -> Tuple[str, ...]:
    """The operators whose evidence an input owner should check its bit
    against, derived by walking the graph structure.

    Starting from the owner's input variable, the walk follows successor
    edges: *selection* operators (min, shorter-of, union) preserve the
    "my length is counted" invariant and are added to the check list;
    *filter* operators are simulated on the owner's own route — if it
    passes, the walk continues past them; any other operator (existential
    rank selection, black-box best-path, composites) ends the walk after
    its own direct check, because the invariant is not guaranteed beyond
    it.
    """
    checks = []
    current = input_variable
    while True:
        consumers = navigator.successors(current)
        if not consumers:
            break
        operator = consumers[0]
        payload = navigator.payload(operator)
        if payload[0] != "op-payload":
            break
        type_tag = payload[1]
        if type_tag in _SELECTION_TAGS:
            checks.append(operator)
        elif type_tag in _FILTER_TAGS:
            # the filter's own evidence covers its *inputs* (pre-filter),
            # so the owner's bit is owed there unconditionally
            checks.append(operator)
            params = canonical_decode(payload[2])
            if not _route_passes_filter(type_tag, params, route):
                break  # legitimately dropped: nothing downstream is owed
        else:
            checks.append(operator)
            break
        outputs = navigator.successors(operator)
        if not outputs:
            break
        current = outputs[0]
    return tuple(checks)


@dataclass(frozen=True)
class OperatorSkeleton:
    """What a verifier expects of one operator on its path: the declared
    type tag and, optionally, the exact input vertex names."""

    name: str
    type_tag: str
    inputs: Optional[Tuple[str, ...]] = None


def verify_as_input_owner(
    navigator: Navigator,
    config: GraphRoundConfig,
    input_variable: str,
    announcement: Optional[SignedAnnouncement],
    receipt: Optional[Receipt],
    check_operators: Optional[Sequence[str]] = None,
) -> Verdict:
    """Ni's procedure in the generalized protocol.

    ``check_operators`` lists the operator vertices whose evidence Ni
    should check its bit against; it defaults to the input's direct
    consumer.  For multi-operator *selection* chains (min / shorter-of /
    union, as in Figure 2) the owner should check every operator its
    input transitively feeds — the selection semantics guarantee
    ``b_|ri| = 1`` downstream.  Filter operators legitimately drop routes,
    so owners must not check beyond a filter.
    """
    me = navigator.me
    prover_name = config.prover
    violations: List[Violation] = []

    def complain(claim: str, context: tuple = ()) -> None:
        violations.append(
            Violation(
                kind=claim,
                accused=prover_name,
                complaint=Complaint(
                    accuser=me, accused=prover_name, round=config.round,
                    claim=claim, context=context,
                ),
            )
        )

    if announcement is None:
        return Verdict(verifier=me)

    try:
        payload = navigator.payload(input_variable)
    except (AccessDenied, NavigationError):
        complain("input-payload-unavailable", (input_variable,))
        return Verdict(verifier=me, violations=tuple(violations))

    tag, committed_route = payload[0], payload[1]
    if tag != "var-payload" or committed_route != announcement.route.canonical():
        complain("announcement-not-in-graph", (input_variable,))

    try:
        consumers = navigator.successors(input_variable)
    except (AccessDenied, NavigationError):
        complain("structure-unavailable", (input_variable,))
        return Verdict(verifier=me, violations=tuple(violations))
    if not consumers:
        complain("input-unconsumed", (input_variable,))
        return Verdict(verifier=me, violations=tuple(violations))

    operators = tuple(check_operators) if check_operators else (consumers[0],)
    my_length = len(announcement.route.as_path)
    for operator in operators:
        try:
            vector = navigator.prover.evidence_vector(me, operator)
            disclosure = navigator.prover.evidence_disclosure(
                me, operator, my_length
            )
        except AccessDenied:
            complain("evidence-unavailable", (operator,))
            continue

        if not vector.is_consistent(navigator.keystore):
            complain("malformed-evidence-commitment", (operator,))
            continue
        if not disclosure.verify_signature(navigator.keystore) or (
            disclosure.round != config.round
        ):
            complain("unsigned-evidence-disclosure", (operator,))
            continue
        if not disclosure.matches(vector):
            violations.append(
                Violation(
                    kind="bad-opening",
                    accused=prover_name,
                    evidence=BadOpeningEvidence(
                        vector=vector, disclosure=disclosure
                    ),
                )
            )
            continue

        if disclosure.opening.value != 1:
            if receipt is not None:
                violations.append(
                    Violation(
                        kind="false-bit",
                        accused=prover_name,
                        evidence=FalseBitEvidence(
                            vector=vector,
                            disclosure=disclosure,
                            announcement=announcement,
                            receipt=receipt,
                        ),
                    )
                )
            else:
                complain("false-bit-unreceipted", (operator, my_length))

    return Verdict(verifier=me, violations=tuple(violations))


def verify_as_output_recipient(
    navigator: Navigator,
    config: GraphRoundConfig,
    output_variable: str,
    attestation: ExportAttestation,
    expected_skeleton: Sequence[OperatorSkeleton],
    known_providers: Sequence[str] = (),
) -> Verdict:
    """B's procedure: structure, operator types, evidence, export.

    ``expected_skeleton`` lists the operators B expects on the path from
    the inputs to its output, outermost (closest to the output) first —
    for Figure 1 that is ``[min]``; for Figure 2 ``[shorter-of, min]``.
    The *final* export consistency check uses the outermost operator's
    evidence.
    """
    me = navigator.me
    prover_name = config.prover
    violations: List[Violation] = []

    def complain(claim: str, context: tuple = ()) -> None:
        violations.append(
            Violation(
                kind=claim,
                accused=prover_name,
                complaint=Complaint(
                    accuser=me, accused=prover_name, round=config.round,
                    claim=claim, context=context,
                ),
            )
        )

    # attestation basics
    if not attestation.verify_signature(navigator.keystore) or (
        attestation.recipient != me or attestation.round != config.round
    ):
        complain("invalid-attestation")
        return Verdict(verifier=me, violations=tuple(violations))
    if not attestation.provenance_valid(navigator.keystore) or (
        attestation.provenance is not None
        and known_providers
        and attestation.provenance.origin not in known_providers
    ):
        from repro.pvr.evidence import BadProvenanceEvidence

        violations.append(
            Violation(
                kind="bad-provenance",
                accused=prover_name,
                evidence=BadProvenanceEvidence(attestation=attestation),
            )
        )

    # structural walk: the producer chain must match the declared skeleton
    try:
        current = output_variable
        for expected in expected_skeleton:
            producers = navigator.predecessors(current)
            if len(producers) != 1 or producers[0] != expected.name:
                complain(
                    "structure-mismatch",
                    (current, tuple(producers), expected.name),
                )
                return Verdict(verifier=me, violations=tuple(violations))
            payload = navigator.payload(expected.name)
            tag, type_tag = payload[0], payload[1]
            if tag != "op-payload" or type_tag != expected.type_tag:
                complain("operator-type-mismatch", (expected.name, type_tag))
                return Verdict(verifier=me, violations=tuple(violations))
            op_inputs = navigator.predecessors(expected.name)
            if expected.inputs is not None and tuple(op_inputs) != tuple(
                expected.inputs
            ):
                complain(
                    "operator-wiring-mismatch",
                    (expected.name, tuple(op_inputs)),
                )
                return Verdict(verifier=me, violations=tuple(violations))
            # descend along the first input for the next skeleton entry
            current = op_inputs[0] if op_inputs else current
            # the evidence digests in the payload must match the published
            # evidence vector (binding evidence to the committed operator)
            vector = navigator.prover.evidence_vector(me, expected.name)
            if tuple(payload[3]) != tuple(c.digest for c in vector.commitments):
                complain("evidence-digest-mismatch", (expected.name,))
                return Verdict(verifier=me, violations=tuple(violations))
    except (AccessDenied, NavigationError) as exc:
        complain("navigation-failed", (str(exc),))
        return Verdict(verifier=me, violations=tuple(violations))

    # evidence check on the outermost operator
    outer = expected_skeleton[0]
    vector = navigator.prover.evidence_vector(me, outer.name)
    if not vector.is_consistent(navigator.keystore):
        complain("malformed-evidence-commitment", (outer.name,))
        return Verdict(verifier=me, violations=tuple(violations))

    disclosures: Dict[int, SignedDisclosure] = {}
    for index in range(1, config.max_length + 1):
        try:
            disclosure = navigator.prover.evidence_disclosure(me, outer.name, index)
        except AccessDenied:
            complain("missing-evidence-disclosure", (outer.name, index))
            return Verdict(verifier=me, violations=tuple(violations))
        if not disclosure.verify_signature(navigator.keystore):
            complain("unsigned-evidence-disclosure", (outer.name, index))
            continue
        if not disclosure.matches(vector):
            violations.append(
                Violation(
                    kind="bad-opening",
                    accused=prover_name,
                    evidence=BadOpeningEvidence(
                        vector=vector, disclosure=disclosure
                    ),
                )
            )
            continue
        disclosures[index] = disclosure

    if len(disclosures) != config.max_length:
        return Verdict(verifier=me, violations=tuple(violations))

    bits = {i: d.opening.value for i, d in disclosures.items()}
    set_indices = sorted(i for i, b in bits.items() if b == 1)
    clear_after_set = [
        j for i in set_indices for j in bits if j > i and bits[j] == 0
    ]
    if clear_after_set:
        violations.append(
            Violation(
                kind="non-monotone",
                accused=prover_name,
                evidence=MonotonicityEvidence(
                    vector=vector,
                    set_bit=disclosures[set_indices[0]],
                    clear_bit=disclosures[min(clear_after_set)],
                ),
            )
        )

    exported = attestation.exported_length()
    if outer.type_tag in MIN_SEMANTICS:
        if exported is None:
            if set_indices:
                violations.append(
                    Violation(
                        kind="suppression",
                        accused=prover_name,
                        evidence=SuppressionEvidence(
                            vector=vector,
                            attestation=attestation,
                            disclosure=disclosures[set_indices[0]],
                        ),
                    )
                )
        elif not 1 <= exported <= config.max_length:
            complain("export-length-out-of-range", (exported,))
        else:
            if bits.get(exported) == 0:
                violations.append(
                    Violation(
                        kind="phantom-export",
                        accused=prover_name,
                        evidence=PhantomExportEvidence(
                            vector=vector,
                            attestation=attestation,
                            disclosure=disclosures[exported],
                        ),
                    )
                )
            shorter = [i for i in set_indices if i < exported]
            if shorter:
                violations.append(
                    Violation(
                        kind="shorter-available",
                        accused=prover_name,
                        evidence=ShorterAvailableEvidence(
                            vector=vector,
                            attestation=attestation,
                            disclosure=disclosures[min(shorter)],
                        ),
                    )
                )
    elif outer.type_tag in EXISTS_SEMANTICS:
        if exported is None and set_indices:
            violations.append(
                Violation(
                    kind="suppression",
                    accused=prover_name,
                    evidence=SuppressionEvidence(
                        vector=vector,
                        attestation=attestation,
                        disclosure=disclosures[set_indices[0]],
                    ),
                )
            )
        if exported is not None and not set_indices:
            violations.append(
                Violation(
                    kind="phantom-export",
                    accused=prover_name,
                    evidence=PhantomExportEvidence(
                        vector=vector,
                        attestation=attestation,
                        disclosure=disclosures[config.max_length],
                    ),
                )
            )
    else:
        complain("unsupported-operator-semantics", (outer.type_tag,))

    return Verdict(verifier=me, violations=tuple(violations))
