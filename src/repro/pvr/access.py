"""Access-control policies α (paper Section 2.2).

"A function α : N × V → {TRUE, FALSE} expresses which networks are
allowed to see which parts of the graph.  If v is a variable vertex,
α(n, v) = TRUE means that network n is allowed to learn the current value
of v; if v is an operator vertex, n is allowed to learn which function v
computes."

Section 3.7 refines vertex visibility into three independently-disclosable
*aspects*: the predecessor list, the successor list, and the payload (the
variable's value or the operator's type and evidence).  ``AccessPolicy``
therefore answers α per (network, vertex, aspect); the coarse paper-level
α corresponds to the ``PAYLOAD`` aspect, and structural aspects default to
visible (a neighbor may navigate edges without seeing data), which is what
lets B check *that* the min ranged over r1..rk without seeing the routes.
"""

from __future__ import annotations

from typing import Callable, Set, Tuple

from repro.rfg.graph import RouteFlowGraph

PREDS = "preds"
SUCCS = "succs"
PAYLOAD = "payload"

ASPECTS = (PREDS, SUCCS, PAYLOAD)


class AccessPolicy:
    """A concrete α over a fixed route-flow graph.

    Built from explicit grants; :meth:`allows` is the α function.  The
    ``structure_public`` flag controls whether predecessor/successor lists
    are visible by default (the paper's navigation mechanism assumes they
    are, unless a composite hides them).
    """

    def __init__(self, graph: RouteFlowGraph, structure_public: bool = True) -> None:
        self._graph = graph
        self._grants: Set[Tuple[str, str, str]] = set()
        self._structure_public = structure_public
        names = set(graph.vertex_names())
        self._names = names

    def grant(self, network: str, vertex: str, aspect: str = PAYLOAD) -> "AccessPolicy":
        if vertex not in self._names:
            raise KeyError(f"unknown vertex {vertex!r}")
        if aspect not in ASPECTS:
            raise ValueError(f"unknown aspect {aspect!r}")
        self._grants.add((network, vertex, aspect))
        return self

    def grant_all_networks(self, vertex: str, aspect: str = PAYLOAD) -> "AccessPolicy":
        """Grant an aspect to every network (the paper's α(n, min) = TRUE)."""
        if vertex not in self._names:
            raise KeyError(f"unknown vertex {vertex!r}")
        self._grants.add(("*", vertex, aspect))
        return self

    def allows(self, network: str, vertex: str, aspect: str = PAYLOAD) -> bool:
        """The α function (aspect-refined)."""
        if vertex not in self._names:
            return False
        if aspect in (PREDS, SUCCS) and self._structure_public:
            return True
        return (network, vertex, aspect) in self._grants or (
            "*",
            vertex,
            aspect,
        ) in self._grants

    def payload_alpha(self) -> Callable[[str, str], bool]:
        """The coarse two-argument α of Section 2.2 (payload visibility)."""
        return lambda network, vertex: self.allows(network, vertex, PAYLOAD)


def paper_alpha(graph: RouteFlowGraph) -> AccessPolicy:
    """The access policy of Section 3's running example.

    α(Ni, ri) = α(B, ro) = TRUE, α(n, op) = TRUE for every operator and
    every network n, and FALSE otherwise.  Internal variables (Figure 2's
    ``v``) are visible to nobody.
    """
    policy = AccessPolicy(graph)
    for vertex in graph.inputs():
        policy.grant(vertex.party, vertex.name, PAYLOAD)
    for vertex in graph.outputs():
        policy.grant(vertex.party, vertex.name, PAYLOAD)
    for op in graph.operators():
        policy.grant_all_networks(op.name, PAYLOAD)
    return policy


def opaque_alpha(graph: RouteFlowGraph) -> AccessPolicy:
    """The unverifiable policy of Section 4's trivial example: outputs are
    visible to their recipients, everything else — including every
    operator — is hidden."""
    policy = AccessPolicy(graph, structure_public=False)
    for vertex in graph.outputs():
        policy.grant(vertex.party, vertex.name, PAYLOAD)
    return policy
