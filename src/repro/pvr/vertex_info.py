"""Per-vertex commitment records I(x) (paper Section 3.7).

"We can enable this by choosing I(x) to be (c(x^p_1..x^p_a),
c(x^s_1..x^s_b), c(x̄)), where the c(·) are commitments and the x^p and
x^s are bitstrings identifying predecessor and successor vertices.  x̄ is
the route itself (in the case of a variable) or the operator type and the
evidence (in the case of an operator).  Thus, the three types of
information can be revealed independently, depending on the authorization
of the querying neighbor."

A :class:`VertexRecord` holds the three commitments; the record's
canonical encoding is the Merkle-leaf payload at the vertex's prefix-free
address.  The prover retains the matching :class:`VertexOpenings` for
selective disclosure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.bgp.route import Route
from repro.crypto.commitment import Commitment, Opening, commit, verify_opening
from repro.util.bitstrings import BitString, encode_prefix_free
from repro.util.encoding import canonical_encode

ASPECT_PREDS = "preds"
ASPECT_SUCCS = "succs"
ASPECT_PAYLOAD = "payload"


def vertex_address(name: str, is_operator: bool) -> BitString:
    """The paper's prefix-free identifiers: ``rule(x)`` / ``var(v)``."""
    tag = "rule" if is_operator else "var"
    return encode_prefix_free(f"{tag}({name})".encode("utf-8"))


def variable_payload(value: Optional[Route]) -> tuple:
    """x̄ for a variable vertex: the route itself (or None)."""
    return ("var-payload", value.canonical() if value is not None else None)


def operator_payload(type_tag: str, params: tuple, evidence_digests: tuple) -> tuple:
    """x̄ for an operator vertex: the operator type and the evidence.

    ``evidence_digests`` pins the operator's committed evidence (the
    aggregate bit-vector commitments of :mod:`repro.pvr.protocol`), so the
    payload binds type, parameters and evidence together.
    """
    return ("op-payload", type_tag, canonical_encode(params), tuple(evidence_digests))


@dataclass(frozen=True)
class VertexRecord:
    """The public half of I(x): three independent commitments."""

    name: str
    is_operator: bool
    preds: Commitment
    succs: Commitment
    payload: Commitment

    def address(self) -> BitString:
        return vertex_address(self.name, self.is_operator)

    def leaf_payload(self) -> bytes:
        """The bytes stored at this vertex's Merkle leaf."""
        return canonical_encode(
            (
                "vertex-record",
                self.name,
                self.is_operator,
                self.preds.digest,
                self.succs.digest,
                self.payload.digest,
            )
        )

    def commitment_for(self, aspect: str) -> Commitment:
        if aspect == ASPECT_PREDS:
            return self.preds
        if aspect == ASPECT_SUCCS:
            return self.succs
        if aspect == ASPECT_PAYLOAD:
            return self.payload
        raise ValueError(f"unknown aspect {aspect!r}")


@dataclass(frozen=True)
class VertexOpenings:
    """The private half, held by the prover."""

    preds: Opening
    succs: Opening
    payload: Opening

    def opening_for(self, aspect: str) -> Opening:
        if aspect == ASPECT_PREDS:
            return self.preds
        if aspect == ASPECT_SUCCS:
            return self.succs
        if aspect == ASPECT_PAYLOAD:
            return self.payload
        raise ValueError(f"unknown aspect {aspect!r}")


def make_vertex_record(
    name: str,
    is_operator: bool,
    preds: Tuple[str, ...],
    succs: Tuple[str, ...],
    payload: tuple,
    random_bytes: Callable[[int], bytes] | None = None,
) -> Tuple[VertexRecord, VertexOpenings]:
    """Commit to the three aspects of one vertex."""
    preds_c, preds_o = commit(f"vertex:{name}:preds", tuple(preds), random_bytes)
    succs_c, succs_o = commit(f"vertex:{name}:succs", tuple(succs), random_bytes)
    payload_c, payload_o = commit(f"vertex:{name}:payload", payload, random_bytes)
    record = VertexRecord(
        name=name,
        is_operator=is_operator,
        preds=preds_c,
        succs=succs_c,
        payload=payload_c,
    )
    openings = VertexOpenings(preds=preds_o, succs=succs_o, payload=payload_o)
    return record, openings


def verify_aspect(record: VertexRecord, aspect: str, opening: Opening) -> bool:
    """Check a disclosed aspect against the vertex record."""
    try:
        commitment = record.commitment_for(aspect)
    except ValueError:
        return False
    return verify_opening(commitment, opening)
