"""From-scratch RSA with full-domain-hash signatures.

Section 3.8 of the paper budgets "about two milliseconds" for an RSA-1024
signature and identifies signatures as PVR's dominant cost.  This module
provides the scheme: textbook RSA keys generated from our own Miller-Rabin
prime generator, with FDH-style signing (hash the message to a fixed-width
integer below the modulus, then apply the private permutation).  CRT is
used for the private operation, matching the constant-factor behaviour of
real implementations.

The same trapdoor permutation doubles as the building block of the RST
ring signature in :mod:`repro.crypto.ring` (Section 3.2's link-state
variant).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable

from repro.crypto import numbers
from repro.crypto.hashing import hash_int, hash_many

PUBLIC_EXPONENT = 65537
_SIG_DOMAIN = "repro.rsa.fdh"


class SignatureError(Exception):
    """Raised when a signature fails structural validation."""


@dataclass(frozen=True)
class PublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> bytes:
        """Stable identifier for key stores and evidence records."""
        return hash_many(
            "repro.rsa.fingerprint",
            self.n.to_bytes((self.bits + 7) // 8, "big"),
            self.e.to_bytes(8, "big"),
        )

    def apply(self, x: int) -> int:
        """The public (forward) permutation x -> x^e mod n."""
        if not 0 <= x < self.n:
            raise ValueError("input outside [0, n)")
        return pow(x, self.e, self.n)

    def canonical(self) -> bytes:
        from repro.util.encoding import canonical_encode

        return canonical_encode(("rsa-public", self.n, self.e))


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int
    dq: int
    q_inv: int

    @property
    def public(self) -> PublicKey:
        return PublicKey(n=self.n, e=self.e)

    def apply(self, x: int) -> int:
        """The private (inverse) permutation, computed via CRT."""
        if not 0 <= x < self.n:
            raise ValueError("input outside [0, n)")
        mp = pow(x % self.p, self.dp, self.p)
        mq = pow(x % self.q, self.dq, self.q)
        return numbers.crt_combine(mp, mq, self.p, self.q, self.q_inv) % self.n


def generate_keypair(
    bits: int = 1024, random_bytes: Callable[[int], bytes] | None = None
) -> PrivateKey:
    """Generate an RSA keypair with a ``bits``-bit modulus.

    ``random_bytes`` defaults to the OS CSPRNG; tests and deterministic
    benchmarks pass a :class:`repro.util.rng.DeterministicRandom` stream.
    """
    if bits < 256:
        raise ValueError("modulus below 256 bits is not supported")
    if bits % 2:
        raise ValueError("modulus size must be even")
    rand = random_bytes if random_bytes is not None else secrets.token_bytes
    half = bits // 2
    while True:
        p = numbers.generate_prime(half, rand)
        q = numbers.generate_prime(half, rand)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = numbers.modinv(PUBLIC_EXPONENT, phi)
        except ValueError:
            continue
        if p < q:
            p, q = q, p
        return PrivateKey(
            n=n,
            e=PUBLIC_EXPONENT,
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            q_inv=numbers.modinv(q, p),
        )


def _digest_to_point(message: bytes, n: int) -> int:
    """Full-domain hash of ``message`` into Z_n (one bit short of n)."""
    return hash_int(_SIG_DOMAIN, message, n.bit_length() - 1)


def sign(key: PrivateKey, message: bytes) -> bytes:
    """FDH-RSA signature over ``message``."""
    point = _digest_to_point(message, key.n)
    signature = key.apply(point)
    return signature.to_bytes((key.n.bit_length() + 7) // 8, "big")


def verify(key: PublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an FDH-RSA signature; returns False on any mismatch."""
    expected_len = (key.n.bit_length() + 7) // 8
    if len(signature) != expected_len:
        return False
    sig_int = int.from_bytes(signature, "big")
    if sig_int >= key.n:
        return False
    return key.apply(sig_int) == _digest_to_point(message, key.n)
