"""Merkle hash trees for commitment and selective disclosure (Section 3.6).

Two variants are provided:

* :class:`SparseMerkleTree` — the paper's structure-hiding tree.  Leaves
  are addressed by *prefix-free bitstrings* (rule/variable identifiers);
  the tree is the union of (a) instantiated leaves, (b) inner nodes on the
  paths from those leaves to the root, and (c) the immediate children of
  those inner nodes.  Children in class (c) that are not themselves
  instantiated are *blinded*: their "hash" is a fresh random bitstring.  A
  verifier holding a disclosure proof therefore cannot tell whether a
  sibling hash covers real vertices or nothing at all — which is exactly
  how the paper hides the presence or absence of unauthorized vertices.

* :class:`BatchTree` — the "small MHT" of Section 3.8 used to sign a burst
  of BGP updates with a single RSA operation while still being able to
  reveal routes individually.

Both produce :class:`MerkleProof` objects verified against the signed root.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.crypto.hashing import DIGEST_SIZE, hash_many
from repro.util.bitstrings import BitString, is_prefix_free

_LEAF = "repro.merkle.leaf"
_NODE = "repro.merkle.node"
_EMPTY = "repro.merkle.empty"


class MerkleError(Exception):
    """Raised on structurally invalid tree construction or proofs."""


def leaf_hash(payload: bytes) -> bytes:
    return hash_many(_LEAF, payload)


def node_hash(left: bytes, right: bytes) -> bytes:
    return hash_many(_NODE, left, right)


@dataclass(frozen=True)
class MerkleProof:
    """An authentication path from one leaf to the root.

    ``path`` gives the leaf's address (bit 0 = left, 1 = right, root
    first); ``siblings`` lists the sibling hash at each level, *leaf-most
    first*.  Verification folds the leaf hash upward and compares with the
    expected root.
    """

    path: BitString
    payload: bytes
    siblings: tuple

    def root(self) -> bytes:
        """Recompute the root implied by this proof."""
        if len(self.siblings) != len(self.path):
            raise MerkleError("sibling count does not match path length")
        current = leaf_hash(self.payload)
        # Fold from the leaf upward: the last path bit is the deepest.
        for bit, sibling in zip(reversed(self.path.bits), self.siblings):
            if bit == 0:
                current = node_hash(current, sibling)
            else:
                current = node_hash(sibling, current)
        return current

    def verify(self, expected_root: bytes) -> bool:
        try:
            return self.root() == expected_root
        except MerkleError:
            return False

    def canonical(self) -> bytes:
        from repro.util.encoding import canonical_encode

        return canonical_encode(
            (
                "merkle-proof",
                self.path.to_str(),
                self.payload,
                tuple(self.siblings),
            )
        )


class _Node:
    __slots__ = ("left", "right", "digest")

    def __init__(self) -> None:
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.digest: bytes | None = None


class SparseMerkleTree:
    """Structure-hiding sparse Merkle tree over prefix-free addresses.

    ``leaves`` maps each :class:`BitString` address to its payload bytes.
    Addresses must be mutually prefix-free: an address that prefixes
    another would make one leaf an inner node of the other's path.

    ``random_bytes`` supplies the blinding values for absent siblings; it
    defaults to the OS CSPRNG and is injected deterministically in tests.
    """

    def __init__(
        self,
        leaves: Mapping[BitString, bytes],
        random_bytes: Callable[[int], bytes] | None = None,
    ) -> None:
        addresses = list(leaves.keys())
        if not addresses:
            raise MerkleError("tree must contain at least one leaf")
        if len(set(addresses)) != len(addresses):
            raise MerkleError("duplicate leaf addresses")
        if not is_prefix_free(addresses):
            raise MerkleError("leaf addresses must be prefix-free")
        for address in addresses:
            if len(address) == 0:
                raise MerkleError("the empty address is reserved for the root")
        self._rand = random_bytes if random_bytes is not None else secrets.token_bytes
        self._leaves = {addr: bytes(payload) for addr, payload in leaves.items()}
        self._root = _Node()
        for address, payload in self._leaves.items():
            self._insert(address, payload)
        self._finalize(self._root)

    def _insert(self, address: BitString, payload: bytes) -> None:
        node = self._root
        for bit in address:
            if node.digest is not None:
                raise MerkleError("address passes through an existing leaf")
            if bit == 0:
                if node.left is None:
                    node.left = _Node()
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node()
                node = node.right
        if node.left is not None or node.right is not None:
            raise MerkleError("leaf address collides with an inner node")
        node.digest = leaf_hash(payload)

    def _finalize(self, node: _Node) -> bytes:
        """Fill in blinded siblings and compute digests bottom-up."""
        if node.digest is not None:
            return node.digest
        left = (
            self._finalize(node.left)
            if node.left is not None
            else self._blind()
        )
        right = (
            self._finalize(node.right)
            if node.right is not None
            else self._blind()
        )
        if node.left is None:
            node.left = _Node()
            node.left.digest = left
        if node.right is None:
            node.right = _Node()
            node.right.digest = right
        node.digest = node_hash(left, right)
        return node.digest

    def _blind(self) -> bytes:
        """A random value indistinguishable from a real subtree digest."""
        return hash_many(_EMPTY, self._rand(DIGEST_SIZE))

    @property
    def root(self) -> bytes:
        assert self._root.digest is not None
        return self._root.digest

    def addresses(self) -> tuple:
        return tuple(sorted(self._leaves.keys()))

    def payload(self, address: BitString) -> bytes:
        return self._leaves[address]

    def prove(self, address: BitString) -> MerkleProof:
        """Produce the disclosure proof for one leaf.

        The proof reveals the leaf payload and one sibling digest per
        level.  Because absent siblings were blinded at construction time,
        the proof leaks nothing about what else the tree contains.
        """
        if address not in self._leaves:
            raise MerkleError(f"no leaf at address {address!r}")
        node = self._root
        siblings: list[bytes] = []
        for bit in address:
            assert node.left is not None and node.right is not None
            if bit == 0:
                sibling, node = node.right, node.left
            else:
                sibling, node = node.left, node.right
            assert sibling.digest is not None
            siblings.append(sibling.digest)
        siblings.reverse()  # leaf-most first, as MerkleProof expects
        return MerkleProof(
            path=address,
            payload=self._leaves[address],
            siblings=tuple(siblings),
        )


class BatchTree:
    """Dense Merkle tree over an ordered batch of messages (Section 3.8).

    Signing the root of a :class:`BatchTree` amortizes one RSA signature
    over the whole burst; each message is later revealed with an
    O(log m) proof.  Leaves are indexed 0..m-1; the tree is padded to the
    next power of two with fixed padding leaves.
    """

    _PAD = b"repro.merkle.batch-pad"

    def __init__(self, messages: Iterable[bytes]) -> None:
        items = [bytes(m) for m in messages]
        if not items:
            raise MerkleError("batch must contain at least one message")
        self._messages = items
        size = 1
        while size < len(items):
            size *= 2
        self._size = size
        level = [leaf_hash(m) for m in items]
        level += [leaf_hash(self._PAD)] * (size - len(items))
        self._levels = [level]
        while len(level) > 1:
            level = [
                node_hash(level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._messages)

    def prove(self, index: int) -> MerkleProof:
        """Membership proof for the ``index``-th message of the batch."""
        if not 0 <= index < len(self._messages):
            raise MerkleError(f"index {index} out of range")
        depth = self._size.bit_length() - 1
        siblings: list[bytes] = []
        position = index
        for level in self._levels[:-1]:
            siblings.append(level[position ^ 1])
            position //= 2
        return MerkleProof(
            path=BitString.from_int(index, depth) if depth else BitString(),
            payload=self._messages[index],
            siblings=tuple(siblings),
        )
