"""Hash commitments: the paper's ``c := H(b || p)`` (Section 3.2).

A commitment binds the committer to a value without revealing it; opening
reveals the value plus the nonce ``p``, and anyone holding ``c`` can check
``c == H(value || p)``.  Footnote 2 of the paper explains why the nonce is
mandatory: without it a neighbor could brute-force the committed bit by
comparing ``c`` against ``H(0)`` and ``H(1)``.  The ablation benchmark D1
demonstrates exactly that attack against a nonce-free variant.

Values are serialized with :func:`repro.util.encoding.canonical_encode`, so
commitments are binding on the value, not on an accidental serialization.
"""

from __future__ import annotations

import hmac
import secrets
from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.hashing import hash_many
from repro.util.encoding import canonical_encode

NONCE_SIZE = 32
_DOMAIN = "repro.commitment.v1"


@dataclass(frozen=True)
class Commitment:
    """The public half of a commitment: the digest ``c``.

    ``label`` names *what* is being committed to (e.g. ``"bit[3]"``); it is
    hashed alongside the value so that openings cannot be replayed between
    differently-labelled slots of the same protocol round.
    """

    label: str
    digest: bytes

    def canonical(self) -> bytes:
        return canonical_encode(("commitment", self.label, self.digest))


@dataclass(frozen=True)
class Opening:
    """The private half: value and nonce, disclosed selectively."""

    label: str
    value: Any
    nonce: bytes

    def canonical(self) -> bytes:
        return canonical_encode(
            ("opening", self.label, canonical_encode(self.value), self.nonce)
        )


def _digest(label: str, value: Any, nonce: bytes) -> bytes:
    return hash_many(
        _DOMAIN, label.encode("utf-8"), canonical_encode(value), nonce
    )


def commit(
    label: str,
    value: Any,
    random_bytes: Callable[[int], bytes] | None = None,
) -> tuple[Commitment, Opening]:
    """Create a commitment to ``value`` under ``label``.

    Returns the public :class:`Commitment` and the private
    :class:`Opening`.  ``random_bytes`` overrides the nonce source for
    deterministic tests.
    """
    rand = random_bytes if random_bytes is not None else secrets.token_bytes
    nonce = rand(NONCE_SIZE)
    return (
        Commitment(label=label, digest=_digest(label, value, nonce)),
        Opening(label=label, value=value, nonce=nonce),
    )


def verify_opening(commitment: Commitment, opening: Opening) -> bool:
    """Check that ``opening`` opens ``commitment``.

    Comparison is constant-time on the digest; label mismatch fails
    immediately because the labels are public anyway.
    """
    if commitment.label != opening.label:
        return False
    expected = _digest(opening.label, opening.value, opening.nonce)
    return hmac.compare_digest(commitment.digest, expected)


def insecure_commit_no_nonce(label: str, value: Any) -> Commitment:
    """The broken commitment of footnote 2: ``c = H(value)`` with no nonce.

    Exists only so tests and the D1 ablation bench can demonstrate the
    brute-force attack.  Never used by the protocol.
    """
    return Commitment(label=label, digest=_digest(label, value, b""))


def brute_force_bit(commitment: Commitment) -> int | None:
    """The footnote-2 attack: recover a nonce-free committed bit.

    Returns the bit when the commitment was made without a nonce, or
    ``None`` when the guess fails (i.e. the commitment was properly
    randomized).
    """
    for bit in (0, 1):
        if hmac.compare_digest(
            commitment.digest, _digest(commitment.label, bit, b"")
        ):
            return bit
    return None
