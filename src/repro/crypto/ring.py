"""RST ring signatures ("How to leak a secret", Rivest-Shamir-Tauman 2001).

Section 3.2 of the paper observes that in a link-state setting the
neighbors N1..Nk could sign the statement "a route exists" with a ring
signature, so that B learns *some* Ni vouched for the route without
learning which one.  This module implements the original RSA-based RST
construction over our from-scratch RSA trapdoor permutations:

* each member's permutation ``f_i(x) = x^e mod n_i`` is extended to a
  common domain of ``b`` bits (``b`` exceeds every modulus) in the standard
  quotient-remainder way;
* the combining function ``C_{k,v}`` chains a keyed symmetric permutation
  ``E_k`` (a 4-round Feistel network over SHA-256 here) through XORs of the
  ``y_i`` values and must close the ring back to the glue value ``v``;
* the signer solves the ring equation at their own position using the
  private trapdoor; every other ``x_i`` is random.

Verification is symmetric in the members, which is what provides signer
anonymity: the distribution of a signature is identical regardless of
which ring member produced it (tested statistically in the test suite).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.crypto.hashing import hash_int, hash_many
from repro.crypto.rsa import PrivateKey, PublicKey

_KEY_DOMAIN = "repro.ring.key"
_FEISTEL_DOMAIN = "repro.ring.feistel"
_GLUE_DOMAIN = "repro.ring.glue"
_EXTRA_BITS = 160  # domain extension margin recommended by RST
_FEISTEL_ROUNDS = 4


class RingSignatureError(Exception):
    """Raised on malformed ring signatures."""


@dataclass(frozen=True)
class RingSignature:
    """A ring signature: the glue value ``v`` and one ``x_i`` per member."""

    glue: int
    xs: tuple

    def canonical(self) -> bytes:
        from repro.util.encoding import canonical_encode

        return canonical_encode(("ring-signature", self.glue, tuple(self.xs)))


def _common_bits(ring: Sequence[PublicKey]) -> int:
    widest = max(key.bits for key in ring)
    return widest + _EXTRA_BITS


def _extended_apply(key: PublicKey, x: int, bits: int) -> int:
    """Extend f_i to ``bits`` bits: permute the remainder within each full
    block of size n_i, pass the incomplete top block through unchanged."""
    if not 0 <= x < (1 << bits):
        raise RingSignatureError("input outside the common domain")
    q, r = divmod(x, key.n)
    if (q + 1) * key.n <= (1 << bits):
        return q * key.n + key.apply(r)
    return x


def _extended_invert(key: PrivateKey, y: int, bits: int) -> int:
    if not 0 <= y < (1 << bits):
        raise RingSignatureError("input outside the common domain")
    q, r = divmod(y, key.n)
    if (q + 1) * key.n <= (1 << bits):
        return q * key.n + key.apply(r)
    return y


def _feistel_round(k: bytes, round_index: int, half: int, half_bits: int) -> int:
    data = k + round_index.to_bytes(1, "big") + half.to_bytes(
        (half_bits + 7) // 8, "big"
    )
    return hash_int(_FEISTEL_DOMAIN, data, half_bits)


def _permute(k: bytes, value: int, bits: int, inverse: bool = False) -> int:
    """Keyed permutation E_k on ``bits``-bit blocks (balanced Feistel)."""
    half_bits = bits // 2
    left = value >> half_bits
    right = value & ((1 << half_bits) - 1)
    rounds = range(_FEISTEL_ROUNDS)
    if not inverse:
        for i in rounds:
            left, right = right, left ^ _feistel_round(k, i, right, half_bits)
    else:
        for i in reversed(rounds):
            left, right = right ^ _feistel_round(k, i, left, half_bits), left
    return (left << half_bits) | right


def _symmetric_key(message: bytes) -> bytes:
    return hash_many(_KEY_DOMAIN, message)


def sign(
    message: bytes,
    ring: Sequence[PublicKey],
    signer: PrivateKey,
    signer_index: int,
    random_bytes: Callable[[int], bytes] | None = None,
) -> RingSignature:
    """Produce a ring signature on ``message`` on behalf of ``ring``.

    ``signer_index`` locates the signer's public key inside ``ring``; the
    signature reveals the ring but not the index.
    """
    if not ring:
        raise RingSignatureError("ring must be non-empty")
    if not 0 <= signer_index < len(ring):
        raise RingSignatureError("signer index out of range")
    if ring[signer_index].n != signer.n:
        raise RingSignatureError("signer key does not match ring slot")
    rand = random_bytes if random_bytes is not None else secrets.token_bytes
    bits = _common_bits(ring)
    if bits % 2:
        bits += 1
    nbytes = (bits + 7) // 8
    k = _symmetric_key(message)
    mask = (1 << bits) - 1

    glue = int.from_bytes(rand(nbytes), "big") & mask
    xs: list[int | None] = [None] * len(ring)
    ys: list[int | None] = [None] * len(ring)
    for i, key in enumerate(ring):
        if i == signer_index:
            continue
        xs[i] = int.from_bytes(rand(nbytes), "big") & mask
        ys[i] = _extended_apply(key, xs[i], bits)

    # Walk the ring equation v -> E_k(y_1 ^ ...) forward up to the signer,
    # backward from the glue to find what y_signer must be.
    acc = glue
    for i in range(signer_index):
        acc = _permute(k, acc ^ ys[i], bits)
    target = glue
    for i in range(len(ring) - 1, signer_index, -1):
        target = _permute(k, target, bits, inverse=True) ^ ys[i]
    # acc is the chain value entering the signer slot; we need
    # E_k(acc ^ y_s) chained through the rest to equal glue, i.e.
    # E_k(acc ^ y_s) == value entering slot signer+1 == target'
    y_signer = acc ^ _permute(k, target, bits, inverse=True)
    xs[signer_index] = _extended_invert(signer, y_signer, bits)
    return RingSignature(glue=glue, xs=tuple(xs))


def verify(
    message: bytes, ring: Sequence[PublicKey], signature: RingSignature
) -> bool:
    """Check that ``signature`` closes the ring equation for ``message``."""
    if len(signature.xs) != len(ring):
        return False
    bits = _common_bits(ring)
    if bits % 2:
        bits += 1
    mask = (1 << bits) - 1
    if not 0 <= signature.glue <= mask:
        return False
    k = _symmetric_key(message)
    acc = signature.glue
    try:
        for key, x in zip(ring, signature.xs):
            if not 0 <= x <= mask:
                return False
            acc = _permute(k, acc ^ _extended_apply(key, x, bits), bits)
    except RingSignatureError:
        return False
    return acc == signature.glue
