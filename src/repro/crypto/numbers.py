"""Number-theoretic primitives for the from-scratch RSA implementation.

The paper's PVR sketch needs a public-key signature scheme ("such as RSA",
Section 3.8).  No external crypto library is used: modular arithmetic,
extended Euclid, Miller-Rabin primality testing and prime generation are
implemented here.  Key sizes are configurable; benchmarks use 512-2048 bit
moduli to reproduce the "signatures dominate, hashing is cheap" shape of
Section 3.8.
"""

from __future__ import annotations

from typing import Callable, Tuple

# Deterministic Miller-Rabin bases valid for all n < 3.3e24 — more than
# enough to make small-prime unit tests exact; larger candidates addi-
# tionally get randomized rounds.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises when gcd(a, m) != 1."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """True when ``a`` witnesses compositeness of ``n``."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, random_bytes: Callable[[int], bytes] | None = None,
                      rounds: int = 16) -> bool:
    """Miller-Rabin primality test.

    Uses the deterministic base set (exact below 3.3e24) plus, when a byte
    source is supplied, ``rounds`` random bases for large candidates.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _DETERMINISTIC_BASES:
        if a >= n - 1:
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    if random_bytes is not None and n.bit_length() > 81:
        nbytes = (n.bit_length() + 7) // 8
        for _ in range(rounds):
            a = (int.from_bytes(random_bytes(nbytes), "big") % (n - 3)) + 2
            if _miller_rabin_witness(n, a, d, r):
                return False
    return True


def generate_prime(bits: int, random_bytes: Callable[[int], bytes]) -> int:
    """Generate a ``bits``-bit probable prime using the given byte source.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, and the low bit is forced to 1 so the
    candidate is odd.
    """
    if bits < 16:
        raise ValueError("prime size below 16 bits is not supported")
    nbytes = (bits + 7) // 8
    while True:
        candidate = int.from_bytes(random_bytes(nbytes), "big")
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        # Skip forward over a window of odd numbers: much cheaper than
        # drawing fresh randomness for every composite.
        for offset in range(0, 512, 2):
            n = candidate + offset
            if n.bit_length() != bits:
                break
            if is_probable_prime(n, random_bytes):
                return n


def crt_combine(mp: int, mq: int, p: int, q: int, q_inv: int) -> int:
    """Garner's CRT recombination used by RSA private-key operations."""
    h = (q_inv * (mp - mq)) % p
    return mq + h * q
