"""Domain-separated hashing.

Every hash in the system is SHA-256 with an explicit ASCII domain tag, so a
digest produced for one purpose (say, a Merkle inner node) can never be
replayed as a digest for another (say, a commitment).  The paper's
constructions (Sections 3.2, 3.3, 3.6) all reduce to "a cryptographic hash
function such as SHA-256"; the domain separation is standard hygiene the
paper leaves implicit.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.util.encoding import canonical_encode

DIGEST_SIZE = 32

#: Running total of domain-separated digests computed in this process.
#: The bench runner (:mod:`repro.bench`) reports per-experiment deltas of
#: this counter; it is a plain int, so under thread workers the total is
#: best-effort (process workers do not report back at all).
_hash_count = 0


def hash_count() -> int:
    """Digests computed so far in this process (see :data:`_hash_count`)."""
    return _hash_count


def hash_bytes(domain: str, data: bytes) -> bytes:
    """SHA-256 of ``data`` under the given domain tag."""
    global _hash_count
    _hash_count += 1
    h = hashlib.sha256()
    tag = domain.encode("ascii")
    h.update(len(tag).to_bytes(2, "big"))
    h.update(tag)
    h.update(data)
    return h.digest()


def hash_value(domain: str, value: Any) -> bytes:
    """Hash an arbitrary supported value via canonical encoding."""
    return hash_bytes(domain, canonical_encode(value))


def hash_many(domain: str, *parts: bytes) -> bytes:
    """Hash several byte strings with unambiguous framing.

    Each part is length-prefixed so ``hash_many(d, a, b)`` can never equal
    ``hash_many(d, a + b)``.
    """
    global _hash_count
    _hash_count += 1
    h = hashlib.sha256()
    tag = domain.encode("ascii")
    h.update(len(tag).to_bytes(2, "big"))
    h.update(tag)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_int(domain: str, data: bytes, width_bits: int) -> int:
    """Derive a ``width_bits``-bit integer from ``data``.

    Used by the RSA layer (full-domain-hash style padding) and the ring
    signature's keyed permutation.  Output is the concatenation of counter-
    mode SHA-256 blocks truncated to the requested width.
    """
    if width_bits <= 0:
        raise ValueError("width_bits must be positive")
    nbytes = (width_bits + 7) // 8
    stream = bytearray()
    counter = 0
    while len(stream) < nbytes:
        stream += hash_bytes(domain, counter.to_bytes(4, "big") + data)
        counter += 1
    value = int.from_bytes(bytes(stream[:nbytes]), "big")
    excess = nbytes * 8 - width_bits
    return value >> excess
