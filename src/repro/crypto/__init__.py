"""Cryptographic substrate built from scratch on SHA-256.

The paper's three PVR building blocks (Section 3.4) map onto this package:

* **commitment** — :mod:`repro.crypto.commitment` (hash commitments) and
  :mod:`repro.crypto.merkle` (tree commitments over whole route-flow
  graphs, Section 3.6);
* **selective disclosure** — Merkle authentication paths with blinded
  siblings (:class:`repro.crypto.merkle.SparseMerkleTree`);
* **verification** — RSA signatures (:mod:`repro.crypto.rsa`) over
  commitments and evidence, plus RST ring signatures
  (:mod:`repro.crypto.ring`) for the link-state variant of Section 3.2.

Only the Python standard library (``hashlib``, ``secrets``) is used; RSA
key generation, Miller-Rabin and the Feistel permutation are implemented
in this package.
"""

from repro.crypto.commitment import (
    Commitment,
    Opening,
    brute_force_bit,
    commit,
    insecure_commit_no_nonce,
    verify_opening,
)
from repro.crypto.hashing import DIGEST_SIZE, hash_bytes, hash_int, hash_many, hash_value
from repro.crypto.keystore import KeyStore, UnknownKeyError
from repro.crypto.merkle import (
    BatchTree,
    MerkleError,
    MerkleProof,
    SparseMerkleTree,
)
from repro.crypto.ring import RingSignature, RingSignatureError
from repro.crypto.rsa import PrivateKey, PublicKey, generate_keypair, sign, verify

__all__ = [
    "Commitment",
    "Opening",
    "brute_force_bit",
    "commit",
    "insecure_commit_no_nonce",
    "verify_opening",
    "DIGEST_SIZE",
    "hash_bytes",
    "hash_int",
    "hash_many",
    "hash_value",
    "KeyStore",
    "UnknownKeyError",
    "BatchTree",
    "MerkleError",
    "MerkleProof",
    "SparseMerkleTree",
    "RingSignature",
    "RingSignatureError",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "sign",
    "verify",
]
