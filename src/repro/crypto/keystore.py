"""Key management for simulated ASes.

PVR assumes every participating network holds a signing keypair whose
public half is known to its neighbors (the paper piggybacks on the same
PKI assumptions as S-BGP).  :class:`KeyStore` is that PKI substrate: it
generates per-AS keypairs deterministically from a seed (so experiments
are replayable) and acts as the trusted directory the *judge* consults
when validating evidence.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.crypto import rsa
from repro.util.rng import DeterministicRandom


class UnknownKeyError(KeyError):
    """Raised when a public key is requested for an unregistered AS."""


class KeyStore:
    """Directory of per-AS RSA keypairs.

    ``key_bits`` trades speed for security margin; experiments default to
    1024 bits to match the paper's "RSA-1024" overhead discussion, while
    unit tests use smaller keys for speed.
    """

    def __init__(self, seed=0, key_bits: int = 1024) -> None:
        self._rng = DeterministicRandom(seed).fork("keystore")
        self._key_bits = key_bits
        self._private: Dict[str, rsa.PrivateKey] = {}
        # operation counters: the Section 3.8 overhead benchmarks report
        # signatures/verifications per protocol round from these
        self.sign_count = 0
        self.verify_count = 0

    @property
    def key_bits(self) -> int:
        return self._key_bits

    def register(self, asn: str) -> rsa.PublicKey:
        """Create (or return the existing) keypair for AS ``asn``."""
        if asn not in self._private:
            stream = self._rng.fork(f"as:{asn}")
            self._private[asn] = rsa.generate_keypair(
                self._key_bits, stream.bytes
            )
        return self._private[asn].public

    def register_all(self, asns: Iterable[str]) -> None:
        for asn in asns:
            self.register(asn)

    def private_key(self, asn: str) -> rsa.PrivateKey:
        """The private key — only the AS itself (or a test) may call this."""
        try:
            return self._private[asn]
        except KeyError:
            raise UnknownKeyError(asn) from None

    def public_key(self, asn: str) -> rsa.PublicKey:
        try:
            return self._private[asn].public
        except KeyError:
            raise UnknownKeyError(asn) from None

    def known(self) -> tuple:
        return tuple(sorted(self._private))

    def __contains__(self, asn: str) -> bool:
        return asn in self._private

    def sign(self, asn: str, message: bytes) -> bytes:
        """Sign ``message`` with AS ``asn``'s private key."""
        self.sign_count += 1
        return rsa.sign(self.private_key(asn), message)

    def verify(self, asn: str, message: bytes, signature: bytes) -> bool:
        """Verify a signature against AS ``asn``'s registered public key."""
        self.verify_count += 1
        try:
            key = self.public_key(asn)
        except UnknownKeyError:
            return False
        return rsa.verify(key, message, signature)
