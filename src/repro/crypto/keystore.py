"""Key management for simulated ASes.

PVR assumes every participating network holds a signing keypair whose
public half is known to its neighbors (the paper piggybacks on the same
PKI assumptions as S-BGP).  :class:`KeyStore` is that PKI substrate: it
generates per-AS keypairs deterministically from a seed (so experiments
are replayable) and acts as the trusted directory the *judge* consults
when validating evidence.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable

from repro.crypto import rsa
from repro.util.rng import DeterministicRandom


class UnknownKeyError(KeyError):
    """Raised when a public key is requested for an unregistered AS."""


class KeyStore:
    """Directory of per-AS RSA keypairs.

    ``key_bits`` trades speed for security margin; experiments default to
    1024 bits to match the paper's "RSA-1024" overhead discussion, while
    unit tests use smaller keys for speed.

    The store is safe to hand to execution-backend workers: key
    derivation depends only on the seed material (a lazily-generated key
    is identical wherever it is generated), registration is locked for
    thread workers, pickling carries the key table to process workers,
    and :meth:`worker_view` gives each worker its own operation counters
    to merge back via :meth:`add_counts`.
    """

    def __init__(self, seed=0, key_bits: int = 1024) -> None:
        self._rng = DeterministicRandom(seed).fork("keystore")
        self._key_bits = key_bits
        self._private: Dict[str, rsa.PrivateKey] = {}
        self._lock = threading.Lock()
        # operation counters: the Section 3.8 overhead benchmarks report
        # signatures/verifications per protocol round from these
        self.sign_count = 0
        self.verify_count = 0

    @property
    def key_bits(self) -> int:
        return self._key_bits

    def register(self, asn: str) -> rsa.PublicKey:
        """Create (or return the existing) keypair for AS ``asn``.

        Generation draws from a stream forked off immutable seed
        material, so concurrent or worker-side registration yields the
        same keypair the parent would have generated.
        """
        if asn not in self._private:
            stream = self._rng.fork(f"as:{asn}")
            keypair = rsa.generate_keypair(self._key_bits, stream.bytes)
            with self._lock:
                self._private.setdefault(asn, keypair)
        return self._private[asn].public

    def register_all(self, asns: Iterable[str]) -> None:
        for asn in asns:
            self.register(asn)

    def private_key(self, asn: str) -> rsa.PrivateKey:
        """The private key — only the AS itself (or a test) may call this."""
        try:
            return self._private[asn]
        except KeyError:
            raise UnknownKeyError(asn) from None

    def public_key(self, asn: str) -> rsa.PublicKey:
        try:
            return self._private[asn].public
        except KeyError:
            raise UnknownKeyError(asn) from None

    def known(self) -> tuple:
        return tuple(sorted(self._private))

    def __contains__(self, asn: str) -> bool:
        return asn in self._private

    def sign(self, asn: str, message: bytes) -> bytes:
        """Sign ``message`` with AS ``asn``'s private key."""
        self.sign_count += 1
        return rsa.sign(self.private_key(asn), message)

    def verify(self, asn: str, message: bytes, signature: bytes) -> bool:
        """Verify a signature against AS ``asn``'s registered public key."""
        self.verify_count += 1
        try:
            key = self.public_key(asn)
        except UnknownKeyError:
            return False
        return rsa.verify(key, message, signature)

    # -- execution-backend support ------------------------------------------

    def worker_view(self) -> "KeyStore":
        """A keystore sharing this store's key table but with fresh
        operation counters.

        Workers sign and verify through their view; the caller merges
        each view's counts back with :meth:`add_counts` in deterministic
        order, so parallel runs report the same totals as serial ones.
        """
        view = KeyStore.__new__(KeyStore)
        view._rng = self._rng
        view._key_bits = self._key_bits
        view._private = self._private
        view._lock = self._lock
        view.sign_count = 0
        view.verify_count = 0
        return view

    def add_counts(self, signatures: int, verifications: int) -> None:
        """Fold a worker view's operation counts into this store."""
        self.sign_count += signatures
        self.verify_count += verifications

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; workers get their own
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
