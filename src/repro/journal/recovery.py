"""Deterministic journal replay: rebuild the coordinator at a boundary.

The coordinator journals at its fold seams, so replay is a pure fold
over the record stream:

* ``genesis``      — spec fingerprint (refuses a mismatched restart);
* ``checkpoint``   — a full coordinator state capture: replay restarts
  from it (the journal compacts everything older away);
* ``churn``        — one admitted churn group's steps, in churn-log
  order (the replica fast-forward a recovery spawn replays);
* ``plan``         — an epoch began: the ledger settles (exactly what
  the live coordinator does before broadcasting the epoch command) and
  the pending-invalidation slate resets;
* ``event``        — one folded slice event, seq-preserved into the
  store (subscribers — the ledger — fire in the original order) and
  applied to the cache mirror; the journaled mirror decision is
  cross-checked against the replayed one;
* ``commit``       — a request group completed: the recovery boundary;
* ``adjudicate``   — a served adjudication request (judge rulings and
  ledger slashing re-derive deterministically);
* ``reshard``      — the placement changed;
* ``replace``      — informational (a rolling replacement ran).

Everything after the **last boundary record** (genesis, checkpoint,
commit, adjudicate, reshard) is an interrupted request group: recovery
truncates it from the journal and the client re-drives the request —
which is why the recovered trail is byte-identical to an uncrashed
run's.

:class:`JournalReplayer` is deliberately *stateful and incremental*
(``feed`` one record at a time): the Hypothesis suite replays every
prefix/suffix split of a real journal and checks the state digest is
independent of where the split fell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.audit.monitor import Monitor
from repro.audit.store import EvidenceStore
from repro.cluster.requests import AdjudicateRequest, answer_adjudicate
from repro.journal.journal import Journal, JournalError, unpack

__all__ = [
    "BOUNDARY_TYPES",
    "JournalReplayer",
    "RecoveredState",
    "genesis_fingerprint",
    "mirror_note",
    "policy_choosers",
    "recover_state",
]

#: record types after which the coordinator is between requests — the
#: points recovery may stop at; anything later is an interrupted group
BOUNDARY_TYPES = ("genesis", "checkpoint", "commit", "adjudicate", "reshard")


def policy_choosers(spec) -> Dict[str, object]:
    """Policy name -> chooser ref, mirroring monitor registration
    (auto-names included) — the mapping both the coordinator's cache
    mirror and journal replay reconstruct fingerprints with."""
    mapping: Dict[str, object] = {}
    for counter, policy in enumerate(spec.policies):
        name = policy.options.get("name") or (
            f"{policy.asn}/{Monitor._describe(policy.spec)}#{counter}"
        )
        mapping[name] = policy.options.get("chooser")
    return mapping


def mirror_note(
    mirror: Dict[tuple, tuple], event, choosers: Dict[str, object]
) -> Optional[str]:
    """Apply one folded event to a commitment-cache mirror exactly as
    each owner maintains its own cache: a fresh ok verdict caches
    (``"set"``), a fresh violation evicts (``"pop"``), a reused event
    leaves the entry untouched (``None``).  Shared by the live
    coordinator and journal replay so the two can never drift."""
    if event.reused:
        return None
    key = (event.asn, event.prefix, event.policy, event.spec.recipients)
    if event.ok():
        fingerprint = (
            (
                event.spec,
                tuple(sorted(event.routes.items(), key=lambda kv: kv[0])),
            ),
            choosers.get(event.policy),
        )
        mirror[key] = (fingerprint, event)
        return "set"
    mirror.pop(key, None)
    return "pop"


def genesis_fingerprint(spec) -> Dict[str, object]:
    """What must match for a journal to belong to this spec."""
    return {
        "key_bits": spec.key_bits,
        "seed": repr(spec.rng_seed),
        "policies": sorted(policy_choosers(spec)),
        "workers": spec.workers,
    }


@dataclass
class RecoveredState:
    """Everything a restarted coordinator adopts from replay."""

    store: EvidenceStore
    ledger: Optional[object]
    mirror: Dict[tuple, tuple]
    seen_pairs: set
    invalidations: List[tuple]
    epoch: int
    round_counter: int
    placement: Optional[object]
    #: the donor replica pickled at the last checkpoint (``None`` =
    #: rebuild from the spec's factory: no checkpoint has run yet)
    network: Optional[bytes]
    #: churn groups journaled since the network capture, in order —
    #: exactly the fast-forward suffix a recovery spawn replays
    churn_suffix: Tuple[Tuple[object, ...], ...]
    #: mutating requests committed before the boundary (the CLI skips
    #: this many script entries on re-drive)
    committed_requests: int
    replayed_records: int = 0
    truncated_records: int = 0


class JournalReplayer:
    """Fold journal records back into coordinator state, one at a time."""

    def __init__(self, spec, *, keystore=None) -> None:
        self.spec = spec
        self.keystore = (
            keystore if keystore is not None else spec.build_keystore()
        )
        self.choosers = policy_choosers(spec)
        self.store = EvidenceStore(
            self.keystore, max_events=spec.max_events
        )
        self.ledger = None
        if spec.ledger is not None:
            from repro.ledger import TrustLedger

            self.ledger = TrustLedger(spec.ledger).attach(self.store)
        self.mirror: Dict[tuple, tuple] = {}
        self.seen_pairs: set = set()
        self.invalidations: List[tuple] = []
        self.epoch = 0
        self.round_counter = 0
        self.placement = None
        self.network: Optional[bytes] = None
        self.churn: List[Tuple[object, ...]] = []
        self.committed = 0
        self.replayed = 0

    # -- replay --------------------------------------------------------------

    def feed(self, seq: int, rtype: str, data: object) -> None:
        handler = getattr(self, f"_on_{rtype}", None)
        if handler is None:
            raise JournalError(f"unknown journal record type {rtype!r}")
        handler(seq, data)
        self.replayed += 1

    def _on_genesis(self, seq: int, data: object) -> None:
        expected = genesis_fingerprint(self.spec)
        for field_name in ("key_bits", "seed", "policies"):
            if data.get(field_name) != expected[field_name]:
                raise JournalError(
                    f"journal genesis mismatch on {field_name}: journal "
                    f"has {data.get(field_name)!r}, spec has "
                    f"{expected[field_name]!r} — refusing to recover a "
                    f"different cluster's journal"
                )

    def _on_checkpoint(self, seq: int, data: object) -> None:
        state = unpack(data)
        self.store = EvidenceStore(
            self.keystore, max_events=self.spec.max_events
        )
        self.store.restore(state["store"])
        self.ledger = state["ledger"]
        if self.ledger is not None:
            self.ledger.attach(self.store)
        self.mirror = dict(state["mirror"])
        self.seen_pairs = set(state["seen"])
        self.invalidations = list(state["invalidations"])
        self.epoch = state["epoch"]
        self.round_counter = state["round"]
        self.placement = state["placement"]
        self.network = state["network"]
        self.churn = []
        self.committed = state["committed"]

    def _on_churn(self, seq: int, data: object) -> None:
        self.churn.append(tuple(unpack(data["steps"])))

    def _on_plan(self, seq: int, data: object) -> None:
        if self.ledger is not None:
            self.ledger.settle()
        self.invalidations = []
        self.epoch = max(self.epoch, data["epoch"])

    def _on_event(self, seq: int, data: object) -> None:
        event = unpack(data["e"])
        stored = self.store.adopt(event)
        if stored.epoch is not None:
            self.epoch = max(self.epoch, stored.epoch)
        if stored.round:
            self.round_counter = max(self.round_counter, stored.round)
        if not data.get("probe"):
            self.seen_pairs.add((stored.asn, stored.prefix))
            op = mirror_note(self.mirror, stored, self.choosers)
            if op != data.get("m"):
                raise JournalError(
                    f"journal record {seq}: replayed mirror decision "
                    f"{op!r} diverges from the journaled {data.get('m')!r}"
                )
            if not stored.reused and not stored.ok():
                self.invalidations.append(
                    (
                        stored.asn,
                        stored.prefix,
                        stored.policy,
                        stored.spec.recipients,
                    )
                )

    def _on_commit(self, seq: int, data: object) -> None:
        self.committed += data["requests"]

    def _on_adjudicate(self, seq: int, data: object) -> None:
        rulings = answer_adjudicate(
            self.store, AdjudicateRequest(seq=data["seq"])
        )
        if self.ledger is not None:
            self.ledger.fold_adjudications(rulings)
        self.committed += 1

    def _on_reshard(self, seq: int, data: object) -> None:
        self.placement = unpack(data["placement"])

    def _on_replace(self, seq: int, data: object) -> None:
        pass  # informational: the replacement worker's state is derived

    # -- results -------------------------------------------------------------

    def state(self) -> RecoveredState:
        return RecoveredState(
            store=self.store,
            ledger=self.ledger,
            mirror=dict(self.mirror),
            seen_pairs=set(self.seen_pairs),
            invalidations=list(self.invalidations),
            epoch=self.epoch,
            round_counter=self.round_counter,
            placement=self.placement,
            network=self.network,
            churn_suffix=tuple(self.churn),
            committed_requests=self.committed,
            replayed_records=self.replayed,
        )

    def digest(self) -> Dict[str, object]:
        """A comparable fingerprint of the replayed state — what the
        prefix-closure Hypothesis property checks for split-independence."""
        return {
            "events": [
                (
                    e.seq,
                    e.epoch,
                    e.round,
                    e.asn,
                    str(e.prefix),
                    e.policy,
                    e.reused,
                    e.report.verdicts,
                )
                for e in self.store.events()
            ],
            "evicted": self.store.evicted,
            "seq": self.store._seq,
            "mirror": sorted(
                (str(key), entry[1].seq)
                for key, entry in self.mirror.items()
            ),
            "seen": sorted(
                (asn, str(prefix)) for asn, prefix in self.seen_pairs
            ),
            "invalidations": [
                (asn, str(prefix), policy, recipients)
                for asn, prefix, policy, recipients in self.invalidations
            ],
            "epoch": self.epoch,
            "round": self.round_counter,
            "committed": self.committed,
            "churn_groups": len(self.churn),
            "trust": (
                sorted(self.ledger.trust_map().items())
                if self.ledger is not None
                else None
            ),
        }


def recover_state(
    spec, journal: Journal, *, keystore=None
) -> Optional[RecoveredState]:
    """Replay ``journal`` up to its last boundary record, truncating
    the interrupted suffix, and return the coordinator state — or
    ``None`` for a journal with no records (a fresh start)."""
    if not journal.records:
        return None
    boundary = None
    for seq, rtype, _data in journal.records:
        if rtype in BOUNDARY_TYPES:
            boundary = seq
    if boundary is None:
        # nothing ever committed: recover to the empty cluster
        boundary = journal.records[0][0] - 1
    replayer = JournalReplayer(spec, keystore=keystore)
    for seq, rtype, data in list(journal.records):
        if seq > boundary:
            break
        replayer.feed(seq, rtype, data)
    truncated = journal.truncate(boundary)
    state = replayer.state()
    state.truncated_records = truncated
    return state
