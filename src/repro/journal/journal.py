"""The segmented, checksummed JSONL write-ahead journal.

One journal is one directory of ``segment-NNNNNN.jsonl`` files.  Each
line is one record::

    {"n": <seq>, "t": <type>, "d": <data>, "c": <crc32 hex>}

``c`` is the CRC-32 of the canonical JSON encoding of ``[n, t, d]``, so
a flipped bit anywhere in a record fails validation.  Sequence numbers
are contiguous across segments; a gap or an out-of-order record is
corruption and refuses to open.  The **one** tolerated defect is a torn
tail: a crash mid-``write`` leaves a truncated or garbled *final* line
in the *final* segment, which :class:`Journal` physically truncates on
open (with a loud log line) — everything before it is intact by
construction, because the writer never mutates published bytes.

Durability contract: :meth:`Journal.append` buffers through the OS
(``flush`` always, ``fsync`` every ``fsync_batch`` appends);
:meth:`Journal.sync` forces an fsync — callers invoke it at their
commit boundaries, which is what makes those boundaries recoverable.
Segments rotate at ``segment_max_records`` records;
:meth:`Journal.checkpoint` starts a fresh segment whose first record is
the checkpoint and unlinks every older segment — replay cost is bounded
by the inter-checkpoint interval, not the journal's lifetime.

Binary payloads (pickled events, network snapshots) travel through
:func:`pack`/:func:`unpack` — zlib-compressed pickle, base64-armored so
the journal stays one-JSON-object-per-line throughout.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.obs import log as obs_log

__all__ = ["Journal", "JournalError", "pack", "unpack"]

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jsonl"


class JournalError(RuntimeError):
    """The journal is corrupt beyond the tolerated torn tail, or was
    asked to do something inconsistent with its on-disk state."""


def pack(obj: object) -> str:
    """Armor an arbitrary picklable object for a JSONL record."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj))
    ).decode("ascii")


def unpack(text: str) -> object:
    """Inverse of :func:`pack`."""
    return pickle.loads(zlib.decompress(base64.b64decode(text)))


def _checksum(seq: int, rtype: str, data: object) -> str:
    canonical = json.dumps(
        [seq, rtype, data], sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return f"{zlib.crc32(canonical) & 0xFFFFFFFF:08x}"


def _segment_name(segment_id: int) -> str:
    return f"{SEGMENT_PREFIX}{segment_id:06d}{SEGMENT_SUFFIX}"


def _segment_id(name: str) -> Optional[int]:
    if not (
        name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    ):
        return None
    middle = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(middle) if middle.isdigit() else None


class Journal:
    """One coordinator's write-ahead log, open for appending.

    ``records`` holds the validated replay suffix — every record from
    the most recent checkpoint (inclusive) onward, as ``(seq, type,
    data)`` tuples — which is exactly what
    :func:`~repro.journal.recovery.recover_state` consumes.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync_batch: int = 64,
        segment_max_records: int = 4096,
    ) -> None:
        if fsync_batch < 1:
            raise ValueError(f"fsync_batch must be >= 1, got {fsync_batch}")
        if segment_max_records < 2:
            # a segment must fit a checkpoint plus at least one record
            raise ValueError(
                f"segment_max_records must be >= 2, "
                f"got {segment_max_records}"
            )
        self.directory = directory
        self.fsync_batch = fsync_batch
        self.segment_max_records = segment_max_records
        #: validated (seq, type, data) replay suffix, last checkpoint on
        self.records: List[Tuple[int, str, object]] = []
        # write-side counters, surfaced in the recovery bench
        self.appended = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.wall_seconds = 0.0
        self.truncated_tail = False
        self._seq = 0
        self._handle = None
        self._segment_id = 0
        self._segment_records = 0
        self._unsynced = 0
        os.makedirs(directory, exist_ok=True)
        self._load()

    # -- open-time validation ------------------------------------------------

    def _segment_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.directory):
            segment_id = _segment_id(name)
            if segment_id is not None:
                ids.append(segment_id)
        return sorted(ids)

    def _segment_path(self, segment_id: int) -> str:
        return os.path.join(self.directory, _segment_name(segment_id))

    def _parse_line(self, line: str) -> Tuple[int, str, object]:
        record = json.loads(line)
        seq, rtype, data = record["n"], record["t"], record["d"]
        if record["c"] != _checksum(seq, rtype, data):
            raise ValueError("checksum mismatch")
        return seq, rtype, data

    def _load(self) -> None:
        ids = self._segment_ids()
        all_records: List[Tuple[int, str, object]] = []
        last_seq = None
        for position, segment_id in enumerate(ids):
            final_segment = position == len(ids) - 1
            path = self._segment_path(segment_id)
            with open(path, "rb") as handle:
                raw = handle.read()
            if final_segment and raw and not raw.endswith(b"\n"):
                # a tear that took only the trailing newline: the last
                # record's bytes are whole, but an append would land on
                # the same line and corrupt it — restore the newline
                # before parsing (a torn *record* below re-truncates)
                with open(path, "ab") as whole:
                    whole.write(b"\n")
                raw += b"\n"
            offset = 0
            lines = raw.split(b"\n")
            for index, blob in enumerate(lines):
                if not blob.strip():
                    offset += len(blob) + 1
                    continue
                try:
                    seq, rtype, data = self._parse_line(
                        blob.decode("utf-8")
                    )
                    if last_seq is not None and seq != last_seq + 1:
                        raise ValueError(
                            f"sequence gap: {last_seq} -> {seq}"
                        )
                except (ValueError, KeyError, TypeError) as exc:
                    trailing = any(
                        rest.strip() for rest in lines[index + 1:]
                    )
                    if not final_segment or trailing:
                        raise JournalError(
                            f"journal {self.directory} is corrupt at "
                            f"{_segment_name(segment_id)} record "
                            f"{index + 1}: {exc}"
                        ) from exc
                    # the torn tail: the crash write.  Truncate the
                    # published bytes at its start and carry on.
                    with open(path, "ab") as whole:
                        whole.truncate(offset)
                    self.truncated_tail = True
                    obs_log.emit(
                        "journal",
                        f"truncated torn tail of "
                        f"{_segment_name(segment_id)} at byte {offset} "
                        f"({exc}); the interrupted record is discarded "
                        f"and will be re-driven",
                        level="warning",
                        segment=_segment_name(segment_id),
                        offset=offset,
                    )
                    break
                last_seq = seq
                all_records.append((seq, rtype, data))
                if rtype == "checkpoint":
                    # replay starts at the newest checkpoint; anything
                    # older survives only until compaction cleanup below
                    all_records = [(seq, rtype, data)]
                offset += len(blob) + 1
        self.records = all_records
        self._seq = last_seq or 0
        # a crash between checkpoint() writing the new segment and
        # unlinking the old ones leaves stale segments; finish the job
        if self.records and self.records[0][1] == "checkpoint":
            keep_from = self._segment_of(self.records[0][0], ids)
            for segment_id in ids:
                if segment_id < keep_from:
                    os.unlink(self._segment_path(segment_id))
            ids = [i for i in ids if i >= keep_from]
        self._segment_id = ids[-1] if ids else 0
        self._segment_records = self._count_records(self._segment_id)

    def _segment_of(self, seq: int, ids: List[int]) -> int:
        """The segment holding record ``seq`` (first-record scan)."""
        owner = ids[0] if ids else 0
        for segment_id in ids:
            first = self._first_seq(segment_id)
            if first is None or first > seq:
                break
            owner = segment_id
        return owner

    def _first_seq(self, segment_id: int) -> Optional[int]:
        path = self._segment_path(segment_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    return json.loads(line)["n"]
        return None

    def _count_records(self, segment_id: int) -> int:
        path = self._segment_path(segment_id)
        if not os.path.exists(path):
            return 0
        with open(path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    # -- appending -----------------------------------------------------------

    @property
    def seq(self) -> int:
        return self._seq

    def _open_segment(self, segment_id: int) -> None:
        if self._handle is not None:
            self._fsync()
            self._handle.close()
        self._segment_id = segment_id
        self._segment_records = self._count_records(segment_id)
        self._handle = open(
            self._segment_path(segment_id), "a", encoding="utf-8"
        )

    def _ensure_open(self) -> None:
        if self._handle is None:
            self._open_segment(self._segment_id or 1)

    def append(self, rtype: str, data: object) -> int:
        """Durably order one record; returns its sequence number."""
        started = time.perf_counter()
        self._ensure_open()
        if self._segment_records >= self.segment_max_records:
            self._open_segment(self._segment_id + 1)
        self._seq += 1
        seq = self._seq
        line = json.dumps(
            {
                "n": seq,
                "t": rtype,
                "d": data,
                "c": _checksum(seq, rtype, data),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._handle.write(line)
        self._handle.write("\n")
        self._handle.flush()
        self._segment_records += 1
        self.records.append((seq, rtype, data))
        self.appended += 1
        self.bytes_written += len(line) + 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_batch:
            self._fsync()
        self.wall_seconds += time.perf_counter() - started
        return seq

    def _fsync(self) -> None:
        if self._handle is not None and self._unsynced:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
            self._unsynced = 0

    def sync(self) -> None:
        """Force the journal to stable storage — the commit barrier."""
        started = time.perf_counter()
        if self._handle is not None:
            self._handle.flush()
            self._fsync()
        self.wall_seconds += time.perf_counter() - started

    def checkpoint(self, data: object) -> int:
        """Write ``data`` as a checkpoint and compact: the checkpoint
        opens a fresh segment, is fsynced immediately, and every older
        segment is unlinked — replay restarts from it."""
        retired = self._segment_ids()
        self._open_segment((retired[-1] if retired else 0) + 1)
        self._seq += 1
        seq = self._seq
        line = json.dumps(
            {
                "n": seq,
                "t": "checkpoint",
                "d": data,
                "c": _checksum(seq, "checkpoint", data),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._handle.write(line)
        self._handle.write("\n")
        self._handle.flush()
        self._segment_records += 1
        self.appended += 1
        self.bytes_written += len(line) + 1
        self._unsynced += 1
        self._fsync()
        self.records = [(seq, "checkpoint", data)]
        for segment_id in retired:
            path = self._segment_path(segment_id)
            if os.path.exists(path):
                os.unlink(path)
        return seq

    def truncate(self, last_seq: int) -> int:
        """Discard every record with seq > ``last_seq`` (an uncommitted
        suffix recovery is abandoning).  Returns how many were dropped."""
        if self._handle is not None:
            self._fsync()
            self._handle.close()
            self._handle = None
        dropped = 0
        for segment_id in reversed(self._segment_ids()):
            path = self._segment_path(segment_id)
            kept_lines: List[str] = []
            drop_here = 0
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    if json.loads(line)["n"] > last_seq:
                        drop_here += 1
                    else:
                        kept_lines.append(line)
            if not drop_here:
                break
            dropped += drop_here
            if kept_lines:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.writelines(kept_lines)
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                os.unlink(path)
        self.records = [r for r in self.records if r[0] <= last_seq]
        self._seq = min(self._seq, last_seq)
        ids = self._segment_ids()
        self._segment_id = ids[-1] if ids else 0
        self._segment_records = self._count_records(self._segment_id)
        return dropped

    def stats(self) -> Dict[str, object]:
        return {
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "wall_seconds": self.wall_seconds,
            "segments": len(self._segment_ids()),
            "seq": self._seq,
        }

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
