"""``repro.journal``: write-ahead durability for the cluster coordinator.

The cluster's workers have been crash-tolerant since the streaming fold
landed (reap → buddy backfill → respawn), but the coordinator itself —
the central :class:`~repro.audit.store.EvidenceStore`, the
commitment-cache mirror, the churn log and the placement — lived in one
process.  This package makes that state durable:

* :class:`~repro.journal.journal.Journal` — a segmented, checksummed
  JSONL write-ahead log.  The coordinator appends a record at every
  fold seam (admitted churn, epoch plan headers, folded slice events
  with their mirror decision, commit boundaries, adjudications,
  reshards) and fsyncs at commit boundaries; segments rotate at a size
  bound and a checkpoint compacts everything older away.  Opening a
  journal validates every record's CRC and sequence; a torn final
  record (the crash write) is truncated with a loud log line.

* :func:`~repro.journal.recovery.recover_state` — deterministic replay.
  A restarted coordinator rebuilds its evidence store (seq for seq),
  ledger, cache mirror, churn suffix, placement and epoch/round
  counters to the exact last *commit boundary*, then respawns (or
  re-adopts) workers through the ordinary snapshot path — the recovered
  trail is byte-identical to an uncrashed run's, which is exactly what
  the kill-the-coordinator tests pin.
"""

from repro.journal.journal import Journal, JournalError, pack, unpack
from repro.journal.recovery import (
    BOUNDARY_TYPES,
    JournalReplayer,
    RecoveredState,
    mirror_note,
    policy_choosers,
    recover_state,
)

__all__ = [
    "BOUNDARY_TYPES",
    "Journal",
    "JournalError",
    "JournalReplayer",
    "RecoveredState",
    "mirror_note",
    "pack",
    "policy_choosers",
    "recover_state",
    "unpack",
]
