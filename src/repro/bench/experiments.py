"""The registered experiment catalogue.

Every experiment the repo measures, as named registry entries with full
and ``--quick`` parameter profiles:

* the eight ``benchmarks/bench_*.py`` series (Figure 1, the detection
  matrix, Section 3.2, Figure 2, the sparse MHT, Section 3.8's crypto
  primitives and batching, the BGP-scale sweep, the strawman gap);
* the ``examples/internet_scale.py`` audit sweep;
* the serial-vs-parallel scaling scenario over the execution backends
  (providers k ∈ {4, 16, 64}), which records ``speedup_vs_serial``;
* the continuous-audit churn experiments (``audit-churn``,
  ``audit-churn-steady``): a :class:`repro.audit.monitor.Monitor` over
  the registered churn scenarios, measuring epochs, incremental
  commitment reuse and the evidence trail.

Metric convention (enforced by the determinism test): wall-clock numbers
live under ``metrics["timing"]``; everything else must be reproducible
for fixed parameters.
"""

from __future__ import annotations

import time

from repro.bench import workloads
from repro.bench.registry import ExperimentContext, register
from repro.pvr import scenarios
from repro.pvr.engine import VerificationSession
from repro.pvr.judge import Judge

__all__ = ["run_internet_scale_audit"]


def _run_session(ctx, spec, routes, *, round: int = 1, judge=None, **options):
    keystore = ctx.keystore()
    for party in spec.parties:
        keystore.register(party)
    session = VerificationSession(keystore, spec, round=round, **options)
    return session.run(routes, judge=judge)


@register(
    "fig1-minimum-round",
    "Figure 1 / Section 3.3: one honest minimum-protocol round",
    params={"k": 16, "key_bits": 1024, "max_length": workloads.MAX_LEN},
    quick={"k": 4, "key_bits": 512},
    tags=("fig1", "engine"),
)
def _fig1_minimum(ctx: ExperimentContext):
    k = int(ctx.params["k"])
    max_length = int(ctx.params["max_length"])
    spec = workloads.minimum_spec(k, max_length)
    routes = workloads.fig1_routes(k, max_length=max_length)
    started = time.perf_counter()
    report = _run_session(ctx, spec, routes)
    elapsed = time.perf_counter() - started
    assert report.accuracy_ok
    ctx.table(
        "FIG1 round cost",
        ["k", "signatures", "verifications", "round ms"],
        [(k, report.crypto.signatures, report.crypto.verifications,
          f"{elapsed * 1000:.1f}")],
    )
    return {
        "k": k,
        "signatures": report.crypto.signatures,
        "verifications": report.crypto.verifications,
        "accuracy_ok": report.accuracy_ok,
        "timing": {"round_seconds": elapsed},
    }


@register(
    "fig1-detection-matrix",
    "Every adversary class detected by the predicted party, with "
    "judge-valid evidence",
    params={"k": 8, "key_bits": 1024, "seed": 3},
    quick={"key_bits": 512},
    tags=("fig1", "adversary"),
)
def _detection_matrix(ctx: ExperimentContext):
    from repro.pvr.adversary import (
        BadOpeningProver,
        EquivocatingProver,
        LongerRouteProver,
        LyingSuppressor,
        NonMonotoneProver,
        SuppressingProver,
        UnderstatingProver,
    )

    k = int(ctx.params["k"])
    keystore = ctx.keystore()
    spec = workloads.minimum_spec(k)
    for party in spec.parties:
        keystore.register(party)
    judge = Judge(keystore)
    adversaries = [
        ("honest", None),
        ("longer-route", LongerRouteProver(keystore)),
        ("understating", UnderstatingProver(keystore)),
        ("suppressing", SuppressingProver(keystore)),
        ("lying-suppressor", LyingSuppressor(keystore)),
        ("non-monotone", NonMonotoneProver(keystore)),
        ("equivocating", EquivocatingProver(keystore)),
        ("bad-opening", BadOpeningProver(keystore)),
    ]
    routes = workloads.fig1_routes(k, seed=int(ctx.params["seed"]))
    rows, detected = [], 0
    for index, (name, prover) in enumerate(adversaries):
        session = VerificationSession(
            keystore, spec, round=index + 1, prover=prover
        )
        report = session.run(routes, judge=judge)
        deviated = prover is not None
        assert report.detection_ok(deviated), name
        assert report.adjudication.evidence_ok(), name
        if deviated:
            detected += 1
        detectors = list(report.detecting_parties())
        if report.equivocations:
            detectors.append("gossip")
        rows.append((name, "yes" if deviated else "no",
                     ",".join(detectors) or "-"))
    ctx.table(
        f"FIG1 detection matrix (k={k})",
        ["adversary", "deviated", "detected by"],
        rows,
    )
    deviating = len(adversaries) - 1
    return {
        "adversaries": deviating,
        "detected": detected,
        "detection_rate": detected / deviating,
    }


@register(
    "sec32-existential-round",
    "Section 3.2: the single-bit existential protocol round",
    params={"k": 8, "key_bits": 1024},
    quick={"k": 4, "key_bits": 512},
    tags=("existential", "engine"),
)
def _existential(ctx: ExperimentContext):
    k = int(ctx.params["k"])
    spec = workloads.existential_spec(k)
    routes = workloads.existential_routes(k)
    started = time.perf_counter()
    report = _run_session(ctx, spec, routes, round=300 + k)
    elapsed = time.perf_counter() - started
    assert report.variant == "existential"
    assert all(v.ok for v in report.verdicts.values())
    return {
        "k": k,
        "signatures": report.crypto.signatures,
        "verifications": report.crypto.verifications,
        "timing": {"round_seconds": elapsed},
    }


@register(
    "fig2-graph-round",
    "Figure 2 / Sections 3.5-3.7: the two-operator route-flow graph",
    params={"k": 4, "key_bits": 1024},
    quick={"k": 3, "key_bits": 512},
    tags=("fig2", "engine"),
)
def _fig2(ctx: ExperimentContext):
    k = int(ctx.params["k"])
    spec = workloads.figure2_spec(k)
    routes = {
        f"N{i}": workloads.route(f"N{i}", 2 + (i % 5))
        for i in range(1, k + 1)
    }
    started = time.perf_counter()
    report = _run_session(ctx, spec, routes)
    elapsed = time.perf_counter() - started
    assert report.variant == "graph"
    assert all(v.ok for v in report.verdicts.values())
    return {
        "k": k,
        "signatures": report.crypto.signatures,
        "verifications": report.crypto.verifications,
        "timing": {"round_seconds": elapsed},
    }


@register(
    "sec36-merkle",
    "Section 3.6: sparse Merkle tree construction, proofs, verification",
    params={"vertices": 1000},
    quick={"vertices": 100},
    tags=("merkle",),
)
def _merkle(ctx: ExperimentContext):
    from repro.crypto.merkle import SparseMerkleTree
    from repro.util.bitstrings import encode_prefix_free
    from repro.util.rng import DeterministicRandom

    vertices = int(ctx.params["vertices"])
    leaves = {
        encode_prefix_free(f"var(v{i})".encode()): f"payload-{i}".encode()
        for i in range(vertices)
    }
    rng = DeterministicRandom(vertices)
    started = time.perf_counter()
    tree = SparseMerkleTree(leaves, rng.bytes)
    built = time.perf_counter() - started
    target = encode_prefix_free(b"var(v0)")
    proof = tree.prove(target)
    assert proof.verify(tree.root)
    return {
        "vertices": vertices,
        "proof_siblings": len(proof.siblings),
        "timing": {"build_seconds": built},
    }


@register(
    "sec38-crypto-primitives",
    "Section 3.8: RSA sign/verify and SHA-256 microbenchmarks, plus "
    "MHT batch amortization",
    params={"key_bits": 1024, "signs": 20, "hashes": 5000, "burst": 64},
    quick={"key_bits": 512, "signs": 5, "hashes": 500, "burst": 16},
    tags=("sec38", "crypto"),
)
def _crypto_primitives(ctx: ExperimentContext):
    from repro.crypto import rsa
    from repro.crypto.hashing import hash_bytes
    from repro.crypto.merkle import BatchTree

    message = b"UPDATE 10.0.0.0/8 AS-path N2 T0 T1" * 2
    keystore = ctx.keystore()
    keystore.register("A")
    keypair = keystore.private_key("A")
    signs = int(ctx.params["signs"])
    hashes = int(ctx.params["hashes"])
    burst = int(ctx.params["burst"])

    t0 = time.perf_counter()
    for _ in range(signs):
        signature = rsa.sign(keypair, message)
    sign_seconds = (time.perf_counter() - t0) / signs
    t0 = time.perf_counter()
    for _ in range(signs):
        assert rsa.verify(keypair.public, message, signature)
    verify_seconds = (time.perf_counter() - t0) / signs
    t0 = time.perf_counter()
    for _ in range(hashes):
        hash_bytes("bench", message)
    hash_seconds = (time.perf_counter() - t0) / hashes

    updates = [message + str(i).encode() for i in range(burst)]
    t0 = time.perf_counter()
    tree = BatchTree(updates)
    rsa.sign(keypair, tree.root)
    batched_per_update = (time.perf_counter() - t0) / burst

    ctx.table(
        "OVH crypto primitives",
        ["op", "time"],
        [("rsa sign", f"{sign_seconds * 1000:.3f} ms"),
         ("rsa verify", f"{verify_seconds * 1000:.3f} ms"),
         ("sha-256", f"{hash_seconds * 1e6:.2f} us"),
         (f"batched sign / update (burst={burst})",
          f"{batched_per_update * 1000:.3f} ms")],
    )
    return {
        "burst": burst,
        "timing": {
            "sign_seconds": sign_seconds,
            "verify_seconds": verify_seconds,
            "hash_seconds": hash_seconds,
            "batched_sign_per_update_seconds": batched_per_update,
            "sign_hash_ratio": sign_seconds / hash_seconds,
        },
    }


@register(
    "sec38-batching",
    "Section 3.8: per-disclosure vs batched signatures through the engine",
    params={"k": 6, "key_bits": 1024, "max_length": workloads.MAX_LEN},
    quick={"k": 4, "key_bits": 512, "max_length": 8},
    tags=("sec38", "batching"),
)
def _batching(ctx: ExperimentContext):
    k = int(ctx.params["k"])
    max_length = int(ctx.params["max_length"])
    spec = workloads.minimum_spec(k, max_length)
    routes = workloads.fig1_routes(k, seed=4, max_length=max_length)
    signatures = {}
    for label, batching in (("plain", False), ("batched", True)):
        report = _run_session(
            ctx, spec, routes, round=888 + batching, batching=batching
        )
        assert report.accuracy_ok, label
        signatures[label] = report.crypto.signatures
    assert signatures["batched"] < signatures["plain"]
    ctx.table(
        f"FIG1 batching option (k={k}, L={max_length})",
        ["prover", "signatures"],
        sorted(signatures.items()),
    )
    return {
        "k": k,
        "signatures_plain": signatures["plain"],
        "signatures_batched": signatures["batched"],
    }


@register(
    "scale-bgp-sweep",
    "PVR deployed on a converging BGP network: per-round cost at scale",
    params={"tier1": 3, "tier2": 8, "stubs": 20, "seed": 12,
            "key_bits": 1024, "max_rounds": 10},
    quick={"tier1": 2, "tier2": 4, "stubs": 6, "seed": 11,
           "key_bits": 512, "max_rounds": 10},
    tags=("scale", "bgp"),
)
def _bgp_sweep(ctx: ExperimentContext):
    report = run_internet_scale_audit(ctx)
    return {
        "ases": report["ases"],
        "rounds": report["rounds"],
        "signatures": report["signatures"],
        "verifications": report["verifications"],
        "messages": report["messages"],
        "violation_free": report["violation_free"],
        "timing": {"sweep_seconds": report["sweep_seconds"]},
    }


@register(
    "internet-scale-audit",
    "The examples/internet_scale.py audit: topology → BGP convergence → "
    "PVR sweep of every exporting AS",
    params={"tier1": 3, "tier2": 8, "stubs": 20, "seed": 2011,
            "key_bits": 1024, "max_rounds": 20},
    quick={"tier1": 2, "tier2": 4, "stubs": 6, "seed": 2011,
           "key_bits": 512, "max_rounds": 8},
    tags=("scale", "example"),
)
def _internet_scale(ctx: ExperimentContext):
    report = run_internet_scale_audit(ctx)
    timing = {"sweep_seconds": report.pop("sweep_seconds")}
    report["timing"] = timing
    return report


AUDIT_PREFIX = "203.0.113.0/24"


def run_internet_scale_audit(ctx: ExperimentContext) -> dict:
    """Generate a Gao-Rexford topology, converge BGP for a prefix
    originated at a true stub (providers, no customers), and PVR-audit
    every exporting AS.  Shared by the sweep experiments and
    ``examples/internet_scale.py``, which prints its narrative from the
    returned fields so both describe the same run."""
    from repro.bgp.prefix import Prefix
    from repro.pvr.deployment import PVRDeployment
    from repro.topology.generate import TopologyParams, generate, true_stub
    from repro.topology.internet import build_bgp_network

    prefix = Prefix.parse(AUDIT_PREFIX)
    params = TopologyParams(
        tier1=int(ctx.params["tier1"]),
        tier2=int(ctx.params["tier2"]),
        stubs=int(ctx.params["stubs"]),
        seed=int(ctx.params["seed"]),
    )
    graph = generate(params)
    net = build_bgp_network(graph)
    origin = true_stub(graph)
    net.originate(origin, prefix)
    events = net.run_to_quiescence()
    reach = net.reachability(prefix)
    tier1 = graph.tier1_core()[0]
    keystore = ctx.keystore(seed=int(ctx.params["seed"]))
    deployment = PVRDeployment(net, keystore, max_length=16)
    started = time.perf_counter()
    report = deployment.verify_prefix_everywhere(
        prefix, max_rounds=int(ctx.params["max_rounds"])
    )
    sweep_seconds = time.perf_counter() - started
    assert report.rounds
    assert report.violation_free()
    return {
        "ases": len(graph.ases()),
        "edges": graph.edge_count(),
        "tier1_core": list(graph.tier1_core()),
        "origin": origin,
        "events": events,
        "updates": net.total_updates(),
        "reached": sum(1 for r in reach.values() if r is not None),
        "forwarding_path": list(net.forwarding_path(tier1, prefix)),
        "rounds": len(report.rounds),
        "signatures": int(report.total("signatures")),
        "verifications": int(report.total("verifications")),
        "messages": int(report.total("messages")),
        "bytes": int(report.total("bytes")),
        "violation_free": report.violation_free(),
        "sweep_seconds": sweep_seconds,
    }


@register(
    "audit-churn",
    "Continuous audit plane: a Monitor over a churned synthetic "
    "Internet — epochs, incremental reuse, evidence trail",
    params={"scenario": "churn-64as", "key_bits": 1024},
    quick={"scenario": "churn-fig1", "key_bits": 512},
    tags=("audit", "churn"),
)
def _audit_churn(ctx: ExperimentContext):
    from repro.audit.churn import run_churn

    keystore = ctx.keystore()
    started = time.perf_counter()
    result = run_churn(str(ctx.params["scenario"]), keystore)
    elapsed = time.perf_counter() - started
    assert result.violation_free()
    assert result.reused > 0, "churn run exercised no incremental reuse"
    ctx.table(
        f"AUDIT churn epochs ({result.scenario})",
        ["epoch", "events", "verified", "reused", "signs"],
        [(e.epoch, len(e.events), e.verified, e.reused, e.signatures)
         for e in result.epochs],
    )
    return {
        "scenario": result.scenario,
        "epochs": len(result.epochs),
        "events": result.events,
        "verified": result.verified,
        "reused": result.reused,
        "reuse_ratio": result.reuse_ratio(),
        "signatures": result.signatures,
        "verifications": result.verifications,
        "violation_free": result.violation_free(),
        "timing": {"run_seconds": elapsed},
    }


@register(
    "audit-churn-steady",
    "Audit-plane steady state: epochs whose inputs are unchanged are "
    "served entirely from the commitment cache (zero crypto)",
    params={"scenario": "churn-steady", "key_bits": 1024},
    quick={"key_bits": 512},
    tags=("audit", "churn"),
)
def _audit_churn_steady(ctx: ExperimentContext):
    from repro.audit.churn import run_churn

    keystore = ctx.keystore()
    started = time.perf_counter()
    result = run_churn(str(ctx.params["scenario"]), keystore)
    elapsed = time.perf_counter() - started
    assert result.violation_free()
    first, rest = result.epochs[0], result.epochs[1:]
    assert first.signatures > 0
    # every post-churn epoch settles back to the cached commitments
    assert all(e.signatures == 0 and e.reused == len(e.events) for e in rest)
    return {
        "scenario": result.scenario,
        "epochs": len(result.epochs),
        "cold_signatures": first.signatures,
        "steady_signatures": sum(e.signatures for e in rest),
        "reuse_ratio": result.reuse_ratio(),
        "timing": {"run_seconds": elapsed},
    }


@register(
    "strawman-gap",
    "Section 3.1: measured PVR vs modelled SMC/ZKP for the Figure 1 task",
    params={"ks": [2, 4, 8], "key_bits": 1024, "bits": 4},
    quick={"ks": [2, 4], "key_bits": 512},
    tags=("strawman",),
)
def _strawman(ctx: ExperimentContext):
    from repro.strawman.circuits import minimum_length_circuit
    from repro.strawman.smc import SMCCostModel
    from repro.strawman.zkp import ZKPCostModel

    bits = int(ctx.params["bits"])
    smc_model, zkp_model = SMCCostModel(), ZKPCostModel()
    and_gates, smc_seconds, zkp_seconds, pvr_seconds = {}, {}, {}, {}
    rows = []
    for k in ctx.params["ks"]:
        parties = [f"N{i}" for i in range(1, k + 1)]
        circuit = minimum_length_circuit(parties, bits)
        spec = workloads.minimum_spec(k)
        routes = workloads.fig1_routes(k, seed=k)
        started = time.perf_counter()
        report = _run_session(ctx, spec, routes, round=700 + k)
        measured = time.perf_counter() - started
        assert not report.violation_found()
        key = str(k)
        and_gates[key] = circuit.and_gate_count()
        smc_seconds[key] = smc_model.modelled_seconds(and_gates[key], k)
        zkp_seconds[key] = zkp_model.modelled_seconds(circuit.gate_count(), 40)
        pvr_seconds[key] = measured
        rows.append((k, and_gates[key], f"{measured * 1000:.1f} ms",
                     f"{smc_seconds[key]:.2f} s",
                     f"{smc_seconds[key] / measured:.0f}x"))
    ctx.table(
        "STRAW: PVR (measured) vs SMC (modelled)",
        ["k", "AND gates", "PVR", "SMC", "SMC/PVR"],
        rows,
    )
    return {
        "and_gates": and_gates,
        "smc_model_seconds": smc_seconds,
        "zkp_model_seconds": zkp_seconds,
        "timing": {"pvr_seconds": pvr_seconds},
    }


@register(
    "scale-parallel",
    "The Section 3.8 scaling scenarios (k ∈ {4, 16, 64}) on the serial "
    "vs parallel execution backends",
    params={"ks": list(scenarios.SCALING_KS), "key_bits": 512,
            "parallel_backend": "process"},
    quick={},
    tags=("scale", "parallel"),
)
def _scale_parallel(ctx: ExperimentContext):
    from repro.pvr.execution import resolve_backend

    keystore = ctx.keystore()
    parallel = str(ctx.params["parallel_backend"])
    # keep key generation and worker-pool start-up out of the timed
    # rounds; the pool is lazy, so spawn its workers with a real map
    for k in ctx.params["ks"]:
        for party in scenarios.get(f"scale-k{k}").spec.parties:
            keystore.register(party)
    pool = resolve_backend(parallel)
    pool.map(len, [()] * pool.parallelism)
    signatures, timing = {}, {}
    speedup = None
    rows = []
    for k in ctx.params["ks"]:
        name = f"scale-k{k}"
        seconds = {}
        reports = {}
        for backend in ("serial", parallel):
            started = time.perf_counter()
            report = scenarios.run(
                name, keystore, judge=False, backend=backend
            )
            seconds[backend] = time.perf_counter() - started
            reports[backend] = report
            assert report.accuracy_ok, (name, backend)
        # the parallel run must be *observably identical*, only faster
        assert reports[parallel].verdicts == reports["serial"].verdicts
        assert reports[parallel].crypto == reports["serial"].crypto
        key = str(k)
        signatures[key] = reports["serial"].crypto.signatures
        speedup = seconds["serial"] / seconds[parallel]
        timing[key] = {
            "serial_seconds": seconds["serial"],
            "parallel_seconds": seconds[parallel],
            "speedup": speedup,
        }
        rows.append((k, signatures[key],
                     f"{seconds['serial'] * 1000:.0f} ms",
                     f"{seconds[parallel] * 1000:.0f} ms",
                     f"{speedup:.2f}x"))
    ctx.table(
        f"Scaling: serial vs {parallel} backend",
        ["k", "signatures", "serial", parallel, "speedup"],
        rows,
    )
    return {
        "ks": list(ctx.params["ks"]),
        "signatures": signatures,
        "parallel_backend": parallel,
        "timing": timing,
        # the headline number: the k=64 point (last in the sweep)
        "speedup_vs_serial": speedup,
    }


@register(
    "serve-throughput",
    "The sharded serving layer: one scripted mixed workload through 1 "
    "shard vs N, verdict parity self-checked, speedup recorded",
    params={"prefixes": 10, "requests": 28, "shards": 4, "burst": 4,
            "key_bits": 512, "seed": 7, "parity_sample": 4},
    quick={"prefixes": 6, "requests": 12, "shards": 2, "burst": 3},
    tags=("serve", "scale"),
)
def _serve_throughput(ctx: ExperimentContext):
    from repro.serve.bench import run_workload

    shards = int(ctx.params["shards"])
    common = dict(
        prefixes=int(ctx.params["prefixes"]),
        requests=int(ctx.params["requests"]),
        seed=int(ctx.params["seed"]),
        key_bits=int(ctx.params["key_bits"]),
        burst=int(ctx.params["burst"]),
        parity_sample=int(ctx.params["parity_sample"]),
    )
    serial = run_workload(shards=1, **common)
    sharded = run_workload(shards=shards, **common)
    for run in (serial, sharded):
        ctx.track(run.service.keystore)
        assert not run.report.errors, run.report.errors[:1]
        assert run.service.metrics.parity_failed == 0
    # the partition must not change what was verified, only where
    for attribute in ("events", "verified", "reused", "violations"):
        assert getattr(serial.service.metrics, attribute) == getattr(
            sharded.service.metrics, attribute
        ), attribute
    speedup = serial.wall_seconds / sharded.wall_seconds
    completed = sum(
        tm.completed for tm in sharded.service.metrics._types.values()
    )
    ctx.table(
        "SERVE throughput: 1 shard vs N",
        ["shards", "requests", "verified", "reused", "serial s",
         "sharded s", "speedup"],
        [(shards, common["requests"], sharded.service.metrics.verified,
          sharded.service.metrics.reused, f"{serial.wall_seconds:.2f}",
          f"{sharded.wall_seconds:.2f}", f"{speedup:.2f}x")],
    )
    return {
        "shards": shards,
        "requests": common["requests"],
        "events": sharded.service.metrics.events,
        "verified": sharded.service.metrics.verified,
        "reused": sharded.service.metrics.reused,
        "violations": sharded.service.metrics.violations,
        "parity_checked": sharded.service.metrics.parity_checked,
        "parity_failed": sharded.service.metrics.parity_failed,
        "timing": {
            "serial_seconds": serial.wall_seconds,
            "sharded_seconds": sharded.wall_seconds,
            "requests_per_second": completed / sharded.wall_seconds,
        },
        "speedup_vs_serial": speedup,
    }


@register(
    "serve-tail-latency",
    "Open-loop tail latency: Poisson arrivals with hot-prefix skew and "
    "violation probes; p50/p90/p99 per request type",
    params={"prefixes": 8, "requests": 40, "rate": 150.0, "shards": 2,
            "violation_every": 8, "key_bits": 512, "seed": 7,
            "queue_depth": 64},
    quick={"prefixes": 6, "requests": 16, "rate": 120.0},
    tags=("serve", "latency"),
)
def _serve_tail_latency(ctx: ExperimentContext):
    from repro.serve.bench import run_workload

    run = run_workload(
        shards=int(ctx.params["shards"]),
        prefixes=int(ctx.params["prefixes"]),
        requests=int(ctx.params["requests"]),
        rate=float(ctx.params["rate"]),
        violation_every=int(ctx.params["violation_every"]),
        seed=int(ctx.params["seed"]),
        key_bits=int(ctx.params["key_bits"]),
        queue_depth=int(ctx.params["queue_depth"]),
        parity_sample=4,
    )
    ctx.track(run.service.keystore)
    assert not run.report.errors, run.report.errors[:1]
    assert run.service.metrics.parity_failed == 0
    snapshot = run.snapshot
    latency = {
        kind: record["latency"]
        for kind, record in snapshot["requests"].items()
    }
    ctx.table(
        "SERVE tail latency (ms)",
        ["type", "completed", "p50", "p90", "p99"],
        [
            (kind, record["count"],
             *(f"{record[f'p{p}_s'] * 1000:.1f}" for p in (50, 90, 99)))
            for kind, record in sorted(latency.items())
            if record["count"]
        ],
    )
    # admission/coalescing outcomes are load-timing-dependent, so
    # everything observed lands under "timing"; the deterministic part
    # is the offered schedule itself
    return {
        "shards": int(ctx.params["shards"]),
        "requests_offered": run.report.offered,
        "timing": {
            "wall_seconds": run.wall_seconds,
            "delivered": run.report.delivered,
            "rejected": run.report.rejected,
            "latency": latency,
            "epochs": snapshot["epochs"],
            "probes": snapshot["probes"],
            "parity": snapshot["parity"],
        },
    }


@register(
    "serve-overload",
    "Open-loop overload ramp with and without the control plane: the "
    "deterministic stage schedule drives arrival rates past capacity; "
    "without the controller queries queue behind the adjudication "
    "pipeline and their p99 degrades with the rate, with it the "
    "AdaptiveAdmission policy sheds stale queries (never churn or "
    "adjudication) and the completed-query p99 plateaus; the per-stage "
    "p99-under-overload curve is recorded for both runs",
    params={"rates": [4.0, 16.0, 64.0], "per_stage": 24, "prefixes": 6,
            "key_bits": 1024, "batch_max": 2, "queue_depth": 16,
            "violation_every": 1, "latency_bound": 0.02,
            "stale_after": 0.06, "seed": 7},
    quick={"rates": [8.0, 64.0], "per_stage": 16},
    tags=("serve", "control", "overload"),
)
def _serve_overload(ctx: ExperimentContext):
    from repro.serve.bench import run_overload_ramp

    common = dict(
        rates=tuple(float(r) for r in ctx.params["rates"]),
        per_stage=int(ctx.params["per_stage"]),
        prefixes=int(ctx.params["prefixes"]),
        key_bits=int(ctx.params["key_bits"]),
        batch_max=int(ctx.params["batch_max"]),
        queue_depth=int(ctx.params["queue_depth"]),
        violation_every=int(ctx.params["violation_every"]),
        latency_bound=float(ctx.params["latency_bound"]),
        stale_after=float(ctx.params["stale_after"]),
        seed=int(ctx.params["seed"]),
    )
    runs = {}
    for label, controller in (("disabled", False), ("enabled", True)):
        run = run_overload_ramp(controller=controller, **common)
        ctx.track(run.service.keystore)
        snapshot = run.snapshot
        assert snapshot["parity"]["failed"] == 0, label
        requests = snapshot["requests"]
        for kind in ("churn", "adjudicate"):
            record = requests.get(kind)
            assert record is None or record["shed"] == 0, (
                f"{label}: protected kind {kind!r} was shed"
            )
        runs[label] = {"run": run, "snapshot": snapshot}
    # without the controller nothing sheds — the degradation is real
    assert runs["disabled"]["run"].report.shed == 0

    disabled = runs["disabled"]["run"].report.curve()
    enabled = runs["enabled"]["run"].report.curve()
    final_disabled = disabled[-1]["query_p99_s"]
    final_enabled = enabled[-1]["query_p99_s"]
    # the acceptance curve: the controlled run's completed-query p99
    # stays bounded at the top of the ramp (None means every late
    # query was shed — fully bounded) while the uncontrolled one
    # absorbs the whole backlog
    if final_enabled is not None and final_disabled is not None:
        assert final_enabled < final_disabled, (
            f"controller did not bound query p99: "
            f"{final_enabled} >= {final_disabled}"
        )
    control = runs["enabled"]["snapshot"].get("control") or {}
    decisions = control.get("decisions", [])
    assert decisions, "controller emitted no decisions under overload"
    ctx.table(
        "SERVE overload ramp: query p99 by stage",
        ["stage", "rate", "off p99 ms", "off shed", "ctl p99 ms",
         "ctl shed"],
        [
            (d["stage"], d["rate"],
             f"{(d['query_p99_s'] or 0) * 1000:.1f}", d["shed"],
             f"{(e['query_p99_s'] or 0) * 1000:.1f}" if e["query_p99_s"]
             is not None else "all shed", e["shed"])
            for d, e in zip(disabled, enabled)
        ],
    )
    return {
        "rates": [float(r) for r in ctx.params["rates"]],
        "per_stage": common["per_stage"],
        "offered": runs["disabled"]["run"].report.offered,
        "protected_shed": 0,
        "parity_failed": 0,
        "timing": {
            "disabled": {
                "wall_seconds": runs["disabled"]["run"].wall_seconds,
                "curve": disabled,
            },
            "enabled": {
                "wall_seconds": runs["enabled"]["run"].wall_seconds,
                "curve": enabled,
                "shed": runs["enabled"]["run"].report.shed,
                "decisions": len(decisions),
            },
        },
    }


@register(
    "cluster-reshard",
    "Placement-driven multi-process cluster: a churn script submitted "
    "as coalesced epoch-pipelined bursts through process-isolated "
    "Monitor workers with one online ConsistentHash reshard (grow + "
    "cache migration) mid-run; byte parity asserted against an "
    "unsharded monitor driven with the same coalescing, speedup "
    "recorded against the pre-pipelining request-at-a-time serial "
    "drive (coalesced groups settle churn before verifying, so the "
    "pipeline does strictly less crypto)",
    params={"workers": 2, "grow": 1, "prefixes": 8, "rounds": 8,
            "reshard_at": 5, "key_bits": 512, "seed": 2011},
    quick={"prefixes": 6, "rounds": 6, "reshard_at": 4},
    tags=("cluster", "scale"),
)
def _cluster_reshard(ctx: ExperimentContext):
    from repro.cluster import ClusterSpec, PolicySpec
    from repro.cluster.workload import (
        churn_script,
        drive_monitor,
        trail_mismatches,
    )
    from repro.promises.spec import ShortestRoute

    workers = int(ctx.params["workers"])
    grow = int(ctx.params["grow"])
    prefix_count = int(ctx.params["prefixes"])
    rounds = int(ctx.params["rounds"])
    reshard_at = int(ctx.params["reshard_at"])
    seed = int(ctx.params["seed"])
    key_bits = int(ctx.params["key_bits"])

    def network():
        return scenarios.serve_network(prefix_count)[0]

    _, prefixes = scenarios.serve_network(prefix_count)
    spec = ClusterSpec(
        network=network,
        policies=(
            PolicySpec(
                "A",
                ShortestRoute(),
                {"recipients": ("B",), "name": "A/min->B", "max_length": 8},
            ),
        ),
        workers=workers,
        placement="consistent",
        transport="process",
        rng_seed=seed,
        key_bits=key_bits,
        # sparse online self-check: the full byte-parity oracle below is
        # the real gate, and a dense sample would re-prove every verdict
        # serially in the coordinator, drowning the workers' parallelism
        parity_sample=8,
        coalesce_max=reshard_at,
    )
    requests = churn_script(prefixes, rounds=rounds)
    # two equal coalesced bursts with the reshard between them, so the
    # reference's uniform coalesce groups line up with the cluster's
    assert len(requests) == 2 * reshard_at, (
        f"reshard_at={reshard_at} must split the {len(requests)}-request "
        "script into two equal coalesced bursts"
    )

    cluster = spec.build()
    started = time.perf_counter()
    try:
        for request in requests[:reshard_at]:
            cluster.submit(request)
        cluster.pump()
        record = cluster.reshard(workers=cluster.workers + grow)
        for request in requests[reshard_at:]:
            cluster.submit(request)
        cluster.pump()
        cluster_seconds = time.perf_counter() - started
        metrics = cluster.metrics
        assert metrics.parity_failed == 0, "online parity self-check failed"
        assert metrics.coalesced_requests == len(requests), (
            "every request should ride a coalesced epoch group"
        )

        # byte-parity oracle: a monitor driven with the same coalescing
        monitor = spec.build_monitor()
        ctx.track(monitor.keystore)
        drive_monitor(monitor, requests, coalesce=reshard_at)
        mismatches = trail_mismatches(cluster.evidence, monitor.evidence)
        assert not mismatches, mismatches[:3]

        # speedup baseline: the pre-pipelining synchronous path, one
        # request (and its epoch) at a time — coalescing lets churn
        # settle before anything is verified, so the pipelined cluster
        # does strictly less crypto than this drive
        serial = spec.build_monitor()
        ctx.track(serial.keystore)
        serial_started = time.perf_counter()
        drive_monitor(serial, requests)
        serial_seconds = time.perf_counter() - serial_started
        events_per_worker = dict(metrics.worker_events)
    finally:
        cluster.stop()

    speedup = serial_seconds / cluster_seconds
    ctx.table(
        "CLUSTER online reshard: process workers vs serial monitor",
        ["workers", "events", "verified", "reused", "moved/tracked",
         "migrated", "serial s", "cluster s", "speedup"],
        [(f"{workers}->{workers + grow}", metrics.events,
          metrics.verified, metrics.reused,
          f"{record['moved_pairs']}/{record['tracked_pairs']}",
          record["migrated_cache_entries"],
          f"{serial_seconds:.2f}", f"{cluster_seconds:.2f}",
          f"{speedup:.2f}x")],
    )
    return {
        "workers_before": workers,
        "workers_after": workers + grow,
        "events": metrics.events,
        "verified": metrics.verified,
        "reused": metrics.reused,
        "violations": metrics.violations,
        "keys_moved": record["moved_pairs"],
        "tracked_pairs": record["tracked_pairs"],
        "keys_moved_fraction": record["moved_fraction"],
        "migrated_cache_entries": record["migrated_cache_entries"],
        "parity_mismatches": 0,
        "parity_failed": metrics.parity_failed,
        "timing": {
            "serial_seconds": serial_seconds,
            "cluster_seconds": cluster_seconds,
            "parity_checked": metrics.parity_checked,
            "events_per_worker": {
                str(k): v for k, v in sorted(events_per_worker.items())
            },
        },
        "speedup_vs_serial": speedup,
    }


@register(
    "ledger-steady-honest",
    "Accountability ledger feedback on an honest steady-state churn "
    "workload: the same script drives a ledger-free monitor and a "
    "ledger-enabled one (promotion after N clean epochs, TRUSTED "
    "sampled at rate r < 1); records signatures with and without "
    "trust-driven sampling and asserts a strict steady-state reduction "
    "once the audited AS reaches TRUSTED",
    params={"prefixes": 6, "rounds": 10, "promote_after": 2,
            "trusted_rate": 0.5, "key_bits": 512, "seed": 2011},
    quick={"prefixes": 4, "rounds": 8},
    tags=("ledger", "audit"),
)
def _ledger_steady_honest(ctx: ExperimentContext):
    from repro.cluster import ClusterSpec, PolicySpec
    from repro.cluster.workload import churn_script, drive_monitor
    from repro.ledger import LedgerPolicy, TrustLevel
    from repro.promises.spec import ShortestRoute

    prefix_count = int(ctx.params["prefixes"])
    rounds = int(ctx.params["rounds"])
    promote_after = int(ctx.params["promote_after"])
    trusted_rate = float(ctx.params["trusted_rate"])
    seed = int(ctx.params["seed"])
    key_bits = int(ctx.params["key_bits"])

    def network():
        return scenarios.serve_network(prefix_count)[0]

    _, prefixes = scenarios.serve_network(prefix_count)
    requests = churn_script(prefixes, rounds=rounds)
    policy = LedgerPolicy(
        clean_epochs_to_promote=promote_after,
        sampling_rates={TrustLevel.TRUSTED: trusted_rate},
    )

    def spec(ledger):
        return ClusterSpec(
            network=network,
            policies=(
                PolicySpec(
                    "A",
                    ShortestRoute(),
                    {"recipients": ("B",), "name": "A/min->B",
                     "max_length": 8},
                ),
            ),
            rng_seed=seed,
            key_bits=key_bits,
            ledger=ledger,
        )

    results = {}
    for label, ledger in (("without", None), ("with", policy)):
        monitor = spec(ledger).build_monitor()
        ctx.track(monitor.keystore)
        started = time.perf_counter()
        drive_monitor(monitor, requests)
        results[label] = {
            "monitor": monitor,
            "seconds": time.perf_counter() - started,
            "signatures": monitor.keystore.sign_count,
            "events": len(monitor.evidence),
        }

    with_ledger = results["with"]["monitor"]
    ledger = with_ledger.ledger
    ledger.settle()
    trusted_at = next(
        (
            record.epoch
            for record in ledger.history.records()
            if record.to_level is TrustLevel.TRUSTED
        ),
        None,
    )
    assert trusted_at is not None, "the honest AS never reached TRUSTED"
    assert ledger.history.verify(), "transition hash chain broken"
    sampled_out = with_ledger.intensity.sampled_out
    assert sampled_out > 0, "trust sampling never skipped a tuple"
    signatures_without = results["without"]["signatures"]
    signatures_with = results["with"]["signatures"]
    assert signatures_with < signatures_without, (
        f"no steady-state signature reduction: "
        f"{signatures_with} >= {signatures_without}"
    )

    ctx.table(
        "LEDGER steady honest: trust-sampled vs full verification",
        ["run", "events", "signatures", "sampled out", "TRUSTED at",
         "seconds"],
        [
            ("ledger-free", results["without"]["events"],
             signatures_without, "-", "-",
             f"{results['without']['seconds']:.2f}"),
            (f"ledger r={trusted_rate}", results["with"]["events"],
             signatures_with, sampled_out, f"epoch {trusted_at}",
             f"{results['with']['seconds']:.2f}"),
        ],
    )
    return {
        "prefixes": prefix_count,
        "rounds": rounds,
        "promote_after": promote_after,
        "trusted_rate": trusted_rate,
        "signatures_without_ledger": signatures_without,
        "signatures_with_ledger": signatures_with,
        "signature_reduction": signatures_without - signatures_with,
        "events_without_ledger": results["without"]["events"],
        "events_with_ledger": results["with"]["events"],
        "sampled_out": sampled_out,
        "trusted_at_epoch": trusted_at,
        "transitions": len(ledger.history),
        "chain_verified": True,
        "timing": {
            "without_seconds": results["without"]["seconds"],
            "with_seconds": results["with"]["seconds"],
        },
    }


@register(
    "cluster-recovery",
    "Coordinator durability: a journaled cluster run (write-ahead "
    "records at every fold seam, periodic checkpoint compaction) "
    "crashed mid-script and restarted — measures the journal's append "
    "overhead against the epoch wall, the cold replay, and asserts the "
    "recovered-and-finished trail is byte-identical to an uncrashed "
    "unsharded monitor",
    params={"workers": 3, "prefixes": 8, "rounds": 8,
            "checkpoint_every": 4, "key_bits": 512, "seed": 2011},
    quick={"prefixes": 6, "rounds": 6, "checkpoint_every": 3},
    tags=("cluster", "durability"),
)
def _cluster_recovery(ctx: ExperimentContext):
    import os
    import tempfile

    from repro.cluster import ClusterSpec, PolicySpec
    from repro.cluster.workload import (
        churn_script,
        drive_monitor,
        trail_mismatches,
    )
    from repro.promises.spec import ShortestRoute

    workers = int(ctx.params["workers"])
    prefix_count = int(ctx.params["prefixes"])
    rounds = int(ctx.params["rounds"])
    checkpoint_every = int(ctx.params["checkpoint_every"])
    seed = int(ctx.params["seed"])
    key_bits = int(ctx.params["key_bits"])

    def network():
        return scenarios.serve_network(prefix_count)[0]

    _, prefixes = scenarios.serve_network(prefix_count)
    requests = churn_script(prefixes, rounds=rounds)

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as base:
        spec = ClusterSpec(
            network=network,
            policies=(
                PolicySpec(
                    "A",
                    ShortestRoute(),
                    {"recipients": ("B",), "name": "A/min->B",
                     "max_length": 8},
                ),
            ),
            workers=workers,
            placement="consistent",
            transport="inline",
            rng_seed=seed,
            key_bits=key_bits,
            parity_sample=0,
            journal=os.path.join(base, "journal"),
            journal_checkpoint_every=checkpoint_every,
        )

        # phase 1: the journaled run, crashed two thirds in.  The
        # abandon (no stop()) is exactly what a coordinator death
        # leaves behind; every journal append up to it is on disk.
        crash_at = max(1, (2 * len(requests)) // 3)
        cluster = spec.build()
        for request in requests[:crash_at]:
            cluster.request(request)
        journal_stats = cluster.journal.stats()
        epoch_summary = cluster.metrics.epoch_wall.summary()
        epoch_wall = (
            (epoch_summary["count"] or 0) * (epoch_summary["mean_s"] or 0.0)
        )
        overhead = (
            journal_stats["wall_seconds"] / epoch_wall if epoch_wall else 0.0
        )
        if ctx.quick:
            assert overhead < 0.05, (
                f"journal append overhead {overhead:.1%} of epoch wall "
                f"exceeds the 5% budget"
            )

        # phase 2: the restart — replay the journal, cold-respawn the
        # fleet, finish the script
        recovery_started = time.perf_counter()
        recovered = spec.build()
        recovery_seconds = time.perf_counter() - recovery_started
        try:
            recovery = recovered.metrics.recoveries[0]
            assert recovered.recovered_requests == crash_at
            for request in requests[recovered.recovered_requests:]:
                recovered.request(request)

            monitor = spec.build_monitor()
            ctx.track(monitor.keystore)
            drive_monitor(monitor, requests)
            mismatches = trail_mismatches(
                recovered.evidence, monitor.evidence
            )
            assert not mismatches, mismatches[:3]
            events = len(recovered.evidence.events())
        finally:
            recovered.stop()

    ctx.table(
        "CLUSTER durability: journaled run, crash and replay",
        ["requests", "crash at", "records", "bytes", "append overhead",
         "recovery s"],
        [(len(requests), crash_at, journal_stats["appended"],
          journal_stats["bytes_written"], f"{overhead:.2%}",
          f"{recovery_seconds:.3f}")],
    )
    return {
        "requests": len(requests),
        "crashed_after_requests": crash_at,
        "events": events,
        "parity_mismatches": 0,
        "journal": journal_stats,
        "append_overhead_fraction": overhead,
        "recovery": {
            "seconds": recovery_seconds,
            "replayed_records": recovery["replayed_records"],
            "committed_requests": recovery["committed_requests"],
            "spawned_workers": recovery["spawned_workers"],
        },
        "timing": {
            "epoch_wall_seconds": epoch_wall,
            "journal_wall_seconds": journal_stats["wall_seconds"],
            "recovery_seconds": recovery_seconds,
        },
    }
