"""Paper-style text tables for benchmark output.

The JSON report (:mod:`repro.bench.runner`) is the machine-readable
artifact; these tables are the human-readable rendering the original
``benchmarks/`` scripts printed, kept byte-compatible so existing series
remain comparable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_table(title: str, headers: Sequence, rows: Iterable) -> str:
    """Render one aligned results table.

    ``rows`` may be any iterable (including a one-shot generator) and may
    be empty; short rows are padded per-column.  Column widths fit the
    widest cell or header.
    """
    rows = [tuple(row) for row in rows]
    widths = [
        max([len(str(h))] + [len(str(row[i])) for row in rows if i < len(row)])
        for i, h in enumerate(headers)
    ]
    lines = [f"\n== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence,
    rows: Iterable,
    path: Optional[str] = None,
) -> str:
    """Print a table to stdout and optionally append it to ``path``."""
    text = format_table(title, headers, rows)
    print(text)
    if path is not None:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
