"""repro.bench — the machine-readable benchmark subsystem.

The paper's cost story (Section 3.8) is quantitative: per-round PVR cost
is dominated by signatures and verification, linear in the number of
providers.  This package turns the repo's experiments into *named,
parameterized, machine-checkable* specs:

* :mod:`repro.bench.registry` — the experiment registry: each experiment
  declares full-run and ``--quick`` parameter profiles and a function
  producing deterministic metrics;
* :mod:`repro.bench.runner` — runs experiments, measures wall time and
  crypto op counters (signatures / verifications / hashes), and emits a
  schema-versioned JSON report plus the paper-style text tables;
* :mod:`repro.bench.workloads` — the shared spec/route builders the
  pytest benchmarks under ``benchmarks/`` draw from;
* :mod:`repro.bench.experiments` — the registered experiment catalogue
  (the eight ``bench_*.py`` series, the internet-scale audit, and the
  serial-vs-parallel scaling scenario);
* ``python -m repro.bench`` — the CLI: ``--quick --out bench.json``
  produces the report CI gates on (``--baseline``/``--gate``).
"""

from repro.bench.registry import (
    ExperimentContext,
    ExperimentSpec,
    get,
    names,
    register,
)
from repro.bench.runner import (
    SCHEMA,
    SCHEMA_VERSION,
    BenchReportError,
    compare_to_baseline,
    deterministic_view,
    load_report,
    run_experiment,
    run_suite,
    validate_report,
    write_report,
)
from repro.bench.tables import format_table, print_table

# importing the catalogue populates the registry
from repro.bench import experiments as _experiments  # noqa: F401

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "BenchReportError",
    "ExperimentContext",
    "ExperimentSpec",
    "compare_to_baseline",
    "deterministic_view",
    "format_table",
    "get",
    "load_report",
    "names",
    "print_table",
    "register",
    "run_experiment",
    "run_suite",
    "validate_report",
    "write_report",
]
