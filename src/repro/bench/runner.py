"""The benchmark runner: measure, report, gate.

``run_suite`` executes registered experiments and produces one
schema-versioned, JSON-serializable report::

    {
      "schema": "repro.bench/report",
      "schema_version": 1,
      "quick": true,
      "host": {"python": "3.11.7", "platform": "...", "cpus": 4},
      "experiments": [
        {
          "name": "fig1-minimum-round",
          "description": "...",
          "params": {"k": 4, "key_bits": 512, ...},
          "quick": true,
          "wall_seconds": 0.18,
          "ops": {"signatures": 28, "verifications": 34, "hashes": 911},
          "metrics": {...},               # deterministic except "timing"
          "speedup_vs_serial": null       # set by scaling experiments
        }, ...
      ]
    }

``validate_report`` structurally checks a report (CI round-trips the
JSON through it); ``deterministic_view`` projects away wall-clock noise
so two ``--quick`` runs can be compared byte-for-byte; and
``compare_to_baseline`` is the CI perf-regression gate — an experiment
fails the gate when its wall time exceeds ``factor ×`` its baseline.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench import registry
from repro.bench.tables import print_table
from repro.crypto import hashing
from repro.obs.timeline import stage_shares
from repro.obs.trace import record_collector

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "BenchReportError",
    "calibrate",
    "compare_to_baseline",
    "deterministic_view",
    "load_report",
    "make_report",
    "run_experiment",
    "run_suite",
    "validate_report",
    "write_report",
]

SCHEMA = "repro.bench/report"
SCHEMA_VERSION = 1

#: wall times below this are treated as this when computing gate ratios,
#: so microsecond-scale experiments cannot trip the gate on noise
GATE_FLOOR_SECONDS = 0.005


class BenchReportError(ValueError):
    """A report failed structural validation."""


def run_experiment(
    spec: registry.ExperimentSpec,
    *,
    quick: bool = False,
    overrides: Optional[Mapping[str, object]] = None,
    tables_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run one experiment and return its report record."""
    params = spec.resolved_params(quick=quick, overrides=overrides)
    ctx = registry.ExperimentContext(params, quick)
    hashes_before = hashing.hash_count()
    started = time.perf_counter()
    with record_collector() as trace_records:
        metrics = dict(spec.fn(ctx))
    wall = time.perf_counter() - started
    ops = ctx.ops()
    ops["hashes"] = hashing.hash_count() - hashes_before
    trace = stage_shares(trace_records)
    if trace["spans"]:
        # under "timing" so deterministic_view strips it with the other
        # wall-clock noise (shares shift run to run)
        metrics.setdefault("timing", {})["trace"] = trace
    for title, headers, rows in ctx.tables:
        print_table(title, headers, rows, path=tables_path)
    return {
        "name": spec.name,
        "description": spec.description,
        "params": params,
        "quick": quick,
        "wall_seconds": wall,
        "ops": ops,
        "metrics": metrics,
        "speedup_vs_serial": metrics.get("speedup_vs_serial"),
    }


def calibrate() -> float:
    """Wall time of a fixed reference workload (deterministic RSA keygen
    + signatures), stored per report so the baseline gate can compare
    wall times *relative to each machine's speed* instead of absolutely.
    """
    from repro.crypto import rsa
    from repro.util.rng import DeterministicRandom

    started = time.perf_counter()
    key = rsa.generate_keypair(512, DeterministicRandom(0xCA1).bytes)
    for i in range(8):
        rsa.sign(key, b"calibration-%d" % i)
    return time.perf_counter() - started


def make_report(
    records: Sequence[Mapping],
    *,
    quick: bool = False,
    calibration_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Wrap experiment records in the schema-versioned report envelope."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": cpus,
            "calibration_seconds": (
                calibrate()
                if calibration_seconds is None
                else calibration_seconds
            ),
        },
        "experiments": list(records),
    }


def run_suite(
    only: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    overrides: Optional[Mapping[str, object]] = None,
    tables_path: Optional[str] = None,
    progress=None,
) -> Dict[str, object]:
    """Run the selected experiments (default: all) into one report."""
    selected = list(only) if only else list(registry.names())
    records = []
    for name in selected:
        spec = registry.get(name)
        if progress is not None:
            progress(name)
        records.append(
            run_experiment(
                spec, quick=quick, overrides=overrides,
                tables_path=tables_path,
            )
        )
    return make_report(records, quick=quick)


# -- persistence & validation --------------------------------------------------


def write_report(report: Mapping, path: str) -> None:
    validate_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    validate_report(report)
    return report


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchReportError(message)


def validate_report(report: Mapping) -> None:
    """Structurally validate a report; raises :class:`BenchReportError`.

    Also checks JSON round-trippability, so a validated report is
    guaranteed to serialize.
    """
    _require(isinstance(report, Mapping), "report must be an object")
    _require(report.get("schema") == SCHEMA,
             f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    _require(report.get("schema_version") == SCHEMA_VERSION,
             f"unsupported schema_version {report.get('schema_version')!r}")
    _require(isinstance(report.get("quick"), bool), "quick must be a bool")
    host = report.get("host")
    _require(isinstance(host, Mapping), "host must be an object")
    for key in ("python", "platform"):
        _require(isinstance(host.get(key), str), f"host.{key} must be a string")
    experiments = report.get("experiments")
    _require(isinstance(experiments, list) and experiments,
             "experiments must be a non-empty list")
    seen = set()
    for record in experiments:
        _require(isinstance(record, Mapping), "experiment must be an object")
        name = record.get("name")
        _require(isinstance(name, str) and name, "experiment name required")
        _require(name not in seen, f"duplicate experiment {name!r}")
        seen.add(name)
        _require(isinstance(record.get("params"), Mapping),
                 f"{name}: params must be an object")
        wall = record.get("wall_seconds")
        _require(isinstance(wall, (int, float)) and wall >= 0,
                 f"{name}: wall_seconds must be a non-negative number")
        ops = record.get("ops")
        _require(isinstance(ops, Mapping), f"{name}: ops must be an object")
        for op in ("signatures", "verifications", "hashes"):
            count = ops.get(op)
            _require(isinstance(count, int) and count >= 0,
                     f"{name}: ops.{op} must be a non-negative int")
        _require(isinstance(record.get("metrics"), Mapping),
                 f"{name}: metrics must be an object")
        speedup = record.get("speedup_vs_serial")
        _require(speedup is None or isinstance(speedup, (int, float)),
                 f"{name}: speedup_vs_serial must be a number or null")
    try:
        json.dumps(report)
    except (TypeError, ValueError) as exc:
        raise BenchReportError(f"report is not JSON-serializable: {exc}") from None


def deterministic_view(report: Mapping) -> Dict[str, object]:
    """The portion of a report that must be identical across runs with
    the same parameters: params, sign/verify op counts, and every metric
    outside the ``"timing"`` sub-dict."""
    view = {}
    for record in report["experiments"]:
        metrics = {
            key: value
            for key, value in record["metrics"].items()
            if key not in ("timing", "speedup_vs_serial")
        }
        view[record["name"]] = {
            "params": dict(record["params"]),
            "signatures": record["ops"]["signatures"],
            "verifications": record["ops"]["verifications"],
            "metrics": metrics,
        }
    return view


# -- the CI perf-regression gate -----------------------------------------------


def _speed_scale(current: Mapping, baseline: Mapping) -> float:
    """How much slower the current host is than the baseline host, from
    the reports' calibration workloads.  Baseline wall times are scaled
    by this before gating, so a slow CI runner does not read as a code
    regression.  Reports without calibration (older schema revisions)
    compare absolutely (scale 1)."""
    current_cal = current.get("host", {}).get("calibration_seconds")
    baseline_cal = baseline.get("host", {}).get("calibration_seconds")
    if not current_cal or not baseline_cal:
        return 1.0
    return current_cal / baseline_cal


def compare_to_baseline(
    current: Mapping,
    baseline: Mapping,
    factor: float,
) -> Tuple[bool, List[Tuple[str, str, str, str]]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(ok, rows)`` where each row is ``(experiment, baseline_s,
    current_s, status)`` and status is ``ok``, ``REGRESSION`` (wall time
    above ``factor`` × the machine-speed-scaled baseline, see
    :func:`_speed_scale`), ``MISSING`` (in the baseline but not the
    current run — also a failure, so experiments cannot silently drop
    out of the gate) or ``new`` (not yet in the baseline).
    """
    current_by_name = {r["name"]: r for r in current["experiments"]}
    baseline_by_name = {r["name"]: r for r in baseline["experiments"]}
    scale = _speed_scale(current, baseline)
    ok = True
    rows = []
    for name in sorted(set(current_by_name) | set(baseline_by_name)):
        base = baseline_by_name.get(name)
        now = current_by_name.get(name)
        if base is None:
            rows.append((name, "-", f"{now['wall_seconds']:.3f}", "new"))
            continue
        if now is None:
            rows.append((name, f"{base['wall_seconds']:.3f}", "-", "MISSING"))
            ok = False
            continue
        base_wall = max(base["wall_seconds"] * scale, GATE_FLOOR_SECONDS)
        now_wall = max(now["wall_seconds"], GATE_FLOOR_SECONDS)
        ratio = now_wall / base_wall
        status = "ok" if ratio <= factor else "REGRESSION"
        if status != "ok":
            ok = False
        rows.append((
            name,
            f"{base['wall_seconds']:.3f}",
            f"{now['wall_seconds']:.3f}",
            f"{status} ({ratio:.2f}x)",
        ))
    return ok, rows
