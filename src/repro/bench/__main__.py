"""The benchmark CLI: ``python -m repro.bench``.

Usage::

    python -m repro.bench --quick --out bench.json
    python -m repro.bench --list
    python -m repro.bench --only fig1-minimum-round --only sec38-batching
    python -m repro.bench --quick --out bench.json \\
        --baseline benchmarks/baseline.json --gate 2.5

Exit status: 0 on success, 1 when the baseline gate fails, 2 on bad
usage (unknown experiment, invalid baseline file).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import registry, runner
from repro.bench.tables import print_table
from repro.pvr.execution import shutdown_backends


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the registered benchmark experiments and emit a "
        "schema-versioned JSON report.",
    )
    parser.add_argument("--out", metavar="PATH",
                        help="write the JSON report here")
    parser.add_argument("--quick", action="store_true",
                        help="use the quick parameter profiles (CI smoke)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only this experiment (repeatable)")
    parser.add_argument("--list", action="store_true", dest="list_experiments",
                        help="list registered experiments and exit")
    parser.add_argument("--baseline", metavar="PATH",
                        help="gate wall times against this baseline report")
    parser.add_argument("--gate", type=float, default=2.5, metavar="FACTOR",
                        help="fail when an experiment exceeds FACTOR x its "
                        "baseline wall time (default: 2.5)")
    parser.add_argument("--tables", metavar="PATH",
                        help="append the paper-style text tables here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_experiments:
        rows = [
            (name, "quick" if registry.get(name).quick else "-",
             registry.get(name).description)
            for name in registry.names()
        ]
        print_table("registered experiments",
                    ["name", "profiles", "description"], rows)
        return 0

    try:
        baseline = (
            runner.load_report(args.baseline) if args.baseline else None
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot load baseline {args.baseline!r}: {exc}",
              file=sys.stderr)
        return 2

    if args.only:
        # validate the selection up front, so a KeyError escaping an
        # experiment body surfaces as a traceback, not a usage error
        try:
            for name in args.only:
                registry.get(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    try:
        report = runner.run_suite(
            args.only,
            quick=args.quick,
            tables_path=args.tables,
            progress=lambda name: print(f"[bench] running {name} ..."),
        )
    finally:
        shutdown_backends()

    print_table(
        "results",
        ["experiment", "wall s", "signs", "verifies", "hashes", "speedup"],
        [
            (
                record["name"],
                f"{record['wall_seconds']:.3f}",
                record["ops"]["signatures"],
                record["ops"]["verifications"],
                record["ops"]["hashes"],
                "-" if record["speedup_vs_serial"] is None
                else f"{record['speedup_vs_serial']:.2f}x",
            )
            for record in report["experiments"]
        ],
    )

    if args.out:
        runner.write_report(report, args.out)
        print(f"[bench] report written to {args.out}")

    if baseline is not None:
        if args.only:
            # a partial run gates only the selected experiments; the
            # rest of the baseline is out of scope, not MISSING
            baseline = dict(baseline)
            baseline["experiments"] = [
                record
                for record in baseline["experiments"]
                if record["name"] in set(args.only)
            ]
        ok, rows = runner.compare_to_baseline(report, baseline, args.gate)
        print_table(
            f"baseline gate (fail above {args.gate:.1f}x)",
            ["experiment", "baseline s", "current s", "status"],
            rows,
        )
        if not ok:
            print("[bench] FAIL: performance regression against baseline",
                  file=sys.stderr)
            return 1
        print("[bench] baseline gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
