"""The benchmark experiment registry.

An *experiment* is a named, parameterized measurement: a function
``fn(ctx) -> metrics`` plus two parameter profiles — the full run and
the ``--quick`` profile CI smokes on.  Experiments register themselves
with the decorator::

    @register(
        "fig1-minimum-round",
        "Figure 1 round latency and crypto cost",
        params={"k": 16, "key_bits": 1024},
        quick={"k": 4, "key_bits": 512},
    )
    def _fig1(ctx):
        ...
        return {"signatures": ..., "timing": {"round_seconds": ...}}

Metric convention: everything outside the ``"timing"`` sub-dict must be
deterministic for fixed parameters (the ``--quick`` determinism test
enforces this); wall-clock measurements go under ``"timing"``.  A
``"speedup_vs_serial"`` key, where present, is surfaced at the record's
top level by the runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.crypto.keystore import KeyStore

__all__ = [
    "ExperimentContext",
    "ExperimentSpec",
    "get",
    "names",
    "register",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus parameter profiles."""

    name: str
    description: str
    fn: Callable[["ExperimentContext"], Mapping]
    params: Mapping[str, object]
    quick: Mapping[str, object]
    tags: Tuple[str, ...] = ()

    def resolved_params(
        self,
        quick: bool = False,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """The effective parameters for one run."""
        resolved = dict(self.params)
        if quick:
            resolved.update(self.quick)
        if overrides:
            resolved.update(overrides)
        return resolved


class ExperimentContext:
    """What an experiment function gets to work with.

    ``ctx.params`` are the resolved parameters; ``ctx.keystore(...)``
    builds deterministic keystores whose signature/verification counters
    the runner folds into the record's op totals; ``ctx.table(...)``
    queues a paper-style table for the runner to render.
    """

    def __init__(self, params: Mapping[str, object], quick: bool) -> None:
        self.params = dict(params)
        self.quick = quick
        self.tables: List[Tuple[str, tuple, list]] = []
        self._keystores: List[KeyStore] = []

    def keystore(self, seed: int = 2011, key_bits: Optional[int] = None) -> KeyStore:
        """A deterministic keystore, tracked for op accounting.

        ``key_bits`` defaults to the experiment's ``key_bits`` parameter
        (falling back to 512), so quick profiles shrink keys uniformly.
        """
        if key_bits is None:
            key_bits = int(self.params.get("key_bits", 512))
        store = KeyStore(seed=seed, key_bits=key_bits)
        self._keystores.append(store)
        return store

    def track(self, store: KeyStore) -> KeyStore:
        """Track an externally-built keystore for op accounting."""
        self._keystores.append(store)
        return store

    def table(self, title: str, headers, rows) -> None:
        self.tables.append((title, tuple(headers), [tuple(r) for r in rows]))

    def ops(self) -> Dict[str, int]:
        """Signature/verification totals across every tracked keystore."""
        return {
            "signatures": sum(ks.sign_count for ks in self._keystores),
            "verifications": sum(ks.verify_count for ks in self._keystores),
        }


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    name: str,
    description: str,
    *,
    params: Optional[Mapping[str, object]] = None,
    quick: Optional[Mapping[str, object]] = None,
    tags: Tuple[str, ...] = (),
):
    """Decorator: register ``fn(ctx) -> metrics`` under ``name``."""

    def wrap(fn):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            description=description,
            fn=fn,
            params=dict(params or {}),
            quick=dict(quick or {}),
            tags=tuple(tags),
        )
        return fn

    return wrap


def get(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
