"""Shared workload builders for benchmarks and registry experiments.

The ``benchmarks/bench_*.py`` pytest series and the
:mod:`repro.bench.experiments` catalogue measure the *same* workloads;
this module is the single definition of those specs and route sets so
the two stay comparable.  Route generation is seeded through
:class:`repro.util.rng.DeterministicRandom` forks, preserving the exact
streams the original benchmark scripts used.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bgp.aspath import ASPath
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.promises.spec import ExistentialPromise, ShortestRoute
from repro.pvr.session import PromiseSpec
from repro.util.rng import DeterministicRandom

__all__ = [
    "BENCH_PREFIX",
    "MAX_LEN",
    "existential_routes",
    "existential_spec",
    "figure2_spec",
    "fig1_routes",
    "minimum_spec",
    "providers_for",
    "route",
]

BENCH_PREFIX = Prefix.parse("10.0.0.0/8")
MAX_LEN = 12


def providers_for(k: int):
    return tuple(f"N{i}" for i in range(1, k + 1))


def route(neighbor: str, length: int) -> Route:
    """A route of the given AS-path length announced by ``neighbor``."""
    return Route(
        prefix=BENCH_PREFIX,
        as_path=ASPath(tuple(f"T{j}" for j in range(length))),
        neighbor=neighbor,
    )


def fig1_routes(k: int, seed: int = 0, max_length: int = MAX_LEN) -> Dict[str, Route]:
    """The Figure 1 benchmark's randomized per-provider routes (the
    ``fig1`` fork keeps the series identical to the original script)."""
    rng = DeterministicRandom(seed).fork("fig1")
    return {
        f"N{i}": route(f"N{i}", rng.randint(1, max_length))
        for i in range(1, k + 1)
    }


def minimum_spec(k: int, max_length: int = MAX_LEN) -> PromiseSpec:
    """Promise 2 (shortest route) over k providers — the Figure 1 shape."""
    return PromiseSpec(
        promise=ShortestRoute(),
        prover="A",
        providers=providers_for(k),
        recipients=("B",),
        max_length=max_length,
    )


def existential_spec(k: int, max_length: int = 8) -> PromiseSpec:
    """The Section 3.2 existential promise over the full provider set."""
    providers = providers_for(k)
    return PromiseSpec(
        promise=ExistentialPromise(providers),
        prover="A",
        providers=providers,
        recipients=("B",),
        max_length=max_length,
    )


def existential_routes(k: int, length: int = 3) -> Dict[str, Optional[Route]]:
    """Every other provider stays silent — the existential benchmark mix."""
    return {
        f"N{i}": (route(f"N{i}", length) if i % 2 else None)
        for i in range(1, k + 1)
    }


def figure2_spec(k: int, max_length: int = MAX_LEN) -> PromiseSpec:
    """The Figure 2 two-operator graph over k providers."""
    from repro.rfg.builder import figure2_graph

    providers = providers_for(k)
    return PromiseSpec(
        promise=ShortestRoute(),
        prover="A",
        providers=providers,
        recipients=("B",),
        max_length=max_length,
        plan=figure2_graph(providers, recipient="B"),
    )
