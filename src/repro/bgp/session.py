"""BGP session finite-state machine.

A compact version of the RFC 4271 FSM with the states that matter for an
AS-level simulator: Idle → OpenSent → OpenConfirm → Established, with
Notification tearing the session back to Idle.  TCP connection management
(Connect/Active) is collapsed into the message layer — the simulated links
are reliable, so "send Open" doubles as connection establishment.

The FSM exists so that routers only exchange routes over *established*
sessions and so that session resets correctly flush the Adj-RIBs, which
matters when benchmarks inject failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.bgp.messages import Keepalive, Notification, Open


class SessionState(Enum):
    IDLE = "idle"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"


class SessionError(Exception):
    """Raised on FSM-violating input (the sender is misbehaving)."""


@dataclass
class Session:
    """One side of a BGP peering."""

    local_as: str
    peer_as: str
    state: SessionState = SessionState.IDLE

    def start(self) -> Open:
        """Operator start event: emit our OPEN."""
        if self.state != SessionState.IDLE:
            raise SessionError(f"start in state {self.state}")
        self.state = SessionState.OPEN_SENT
        return Open(asn=self.local_as)

    def handle_open(self, message: Open) -> Optional[Keepalive]:
        """Peer's OPEN arrives; reply with KEEPALIVE to confirm."""
        if message.asn != self.peer_as:
            self.state = SessionState.IDLE
            raise SessionError(
                f"OPEN from unexpected AS {message.asn!r}, expected {self.peer_as!r}"
            )
        if self.state == SessionState.IDLE:
            # passive side: peer opened first; answer with our own
            # OPEN-equivalent confirmation
            self.state = SessionState.OPEN_CONFIRM
            return Keepalive()
        if self.state == SessionState.OPEN_SENT:
            self.state = SessionState.OPEN_CONFIRM
            return Keepalive()
        raise SessionError(f"OPEN in state {self.state}")

    def handle_keepalive(self) -> None:
        if self.state == SessionState.OPEN_CONFIRM:
            self.state = SessionState.ESTABLISHED
        elif self.state == SessionState.ESTABLISHED:
            pass  # refreshes hold timer, which the simulator does not model
        else:
            raise SessionError(f"KEEPALIVE in state {self.state}")

    def handle_notification(self, message: Notification) -> None:
        """Any NOTIFICATION resets to Idle; caller must flush RIBs."""
        self.state = SessionState.IDLE

    @property
    def established(self) -> bool:
        return self.state == SessionState.ESTABLISHED

    def reset(self) -> None:
        self.state = SessionState.IDLE
