"""BGP message types carried over the simulated network.

Only the message semantics the simulator needs are modelled: UPDATE
(announce or withdraw routes for prefixes) plus the session-management
messages (OPEN / KEEPALIVE / NOTIFICATION) used by the session FSM.
Messages are immutable values; signatures (when PVR or S-BGP-style
signing is enabled) wrap them rather than mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.util.encoding import canonical_encode


@dataclass(frozen=True)
class Open:
    """Session establishment: announces the speaker's AS."""

    asn: str
    hold_time: float = 90.0

    def canonical(self) -> bytes:
        return canonical_encode(("bgp-open", self.asn, int(self.hold_time)))


@dataclass(frozen=True)
class Keepalive:
    def canonical(self) -> bytes:
        return canonical_encode(("bgp-keepalive",))


@dataclass(frozen=True)
class Notification:
    """Error report; receipt tears the session down."""

    code: str
    detail: str = ""

    def canonical(self) -> bytes:
        return canonical_encode(("bgp-notification", self.code, self.detail))


@dataclass(frozen=True)
class Update:
    """A route announcement and/or a set of withdrawals.

    ``announced`` is None or a single Route (one prefix per Update keeps
    the simulator simple without losing generality); ``withdrawn`` lists
    prefixes no longer reachable via the sender.
    """

    announced: Optional[Route] = None
    withdrawn: Tuple[Prefix, ...] = ()

    def __post_init__(self) -> None:
        if self.announced is None and not self.withdrawn:
            raise ValueError("empty UPDATE")
        if not isinstance(self.withdrawn, tuple):
            object.__setattr__(self, "withdrawn", tuple(self.withdrawn))

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "bgp-update",
                self.announced,
                tuple(self.withdrawn),
            )
        )


@dataclass(frozen=True)
class SignedUpdate:
    """An Update plus the sender's signature over its announcement.

    This is the paper's "we can sign all the routing announcements"
    (Section 3.2, condition 1): B can check that the route A exported was
    really provided by the Ni on its path.  The signature covers the
    announcement key of the route, so receiver-local fields do not break
    verification.
    """

    update: Update
    signer: str
    signature: bytes

    def signed_bytes(self) -> bytes:
        return signed_update_bytes(self.update, self.signer)

    def verify(self, keystore) -> bool:
        return keystore.verify(self.signer, self.signed_bytes(), self.signature)

    def canonical(self) -> bytes:
        return canonical_encode(
            ("signed-update", self.update, self.signer, self.signature)
        )


def signed_update_bytes(update: Update, signer: str) -> bytes:
    """The byte string a SignedUpdate signature covers: the announcement
    content plus withdrawals plus the signer identity."""
    announced = (
        update.announced.announcement_key()
        if update.announced is not None
        else None
    )
    return canonical_encode(
        ("bgp-signed-update", announced, tuple(update.withdrawn), signer)
    )


def sign_update(keystore, signer: str, update: Update) -> SignedUpdate:
    """S-BGP-style origin signing of an UPDATE."""
    signature = keystore.sign(signer, signed_update_bytes(update, signer))
    return SignedUpdate(update=update, signer=signer, signature=signature)
