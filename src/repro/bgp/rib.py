"""Routing information bases.

The classic three-RIB structure of a BGP speaker:

* :class:`AdjRIBIn` — routes received from each neighbor, post-import-
  policy.  This is exactly the set PVR commits to: "the set of input
  routes the AS might receive" (Section 2).
* :class:`LocRIB` — the selected best route per prefix.
* :class:`AdjRIBOut` — what was last advertised to each neighbor, used to
  suppress duplicate announcements and to generate withdrawals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route


class AdjRIBIn:
    """Per-neighbor, per-prefix store of received routes."""

    def __init__(self) -> None:
        self._routes: Dict[Tuple[str, Prefix], Route] = {}

    def insert(self, neighbor: str, route: Route) -> None:
        """Store ``route`` as the current announcement from ``neighbor``.

        A newer announcement for the same prefix implicitly replaces the
        older one (BGP's implicit-withdraw rule).
        """
        if route.neighbor != neighbor:
            route = route.with_neighbor(neighbor)
        self._routes[(neighbor, route.prefix)] = route

    def withdraw(self, neighbor: str, prefix: Prefix) -> Optional[Route]:
        """Remove and return the route ``neighbor`` announced for ``prefix``."""
        return self._routes.pop((neighbor, prefix), None)

    def candidates(self, prefix: Prefix) -> List[Route]:
        """All currently-valid routes to ``prefix``, sorted by neighbor."""
        found = [
            route
            for (neighbor, pfx), route in self._routes.items()
            if pfx == prefix
        ]
        found.sort(key=lambda r: r.neighbor or "")
        return found

    def route_from(self, neighbor: str, prefix: Prefix) -> Optional[Route]:
        return self._routes.get((neighbor, prefix))

    def neighbors_announcing(self, prefix: Prefix) -> Tuple[str, ...]:
        return tuple(
            sorted(n for (n, pfx) in self._routes if pfx == prefix)
        )

    def prefixes(self) -> Tuple[Prefix, ...]:
        return tuple(sorted({pfx for (_, pfx) in self._routes}))

    def drop_neighbor(self, neighbor: str) -> List[Prefix]:
        """Remove everything from ``neighbor`` (session teardown); returns
        the affected prefixes."""
        affected = [pfx for (n, pfx) in self._routes if n == neighbor]
        for pfx in affected:
            del self._routes[(neighbor, pfx)]
        return affected

    def __len__(self) -> int:
        return len(self._routes)


class LocRIB:
    """Best route per prefix, as chosen by the decision process."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}

    def set_best(self, prefix: Prefix, route: Optional[Route]) -> bool:
        """Record the new best route; returns True when it changed."""
        current = self._best.get(prefix)
        if route is None:
            if prefix in self._best:
                del self._best[prefix]
                return True
            return False
        if current == route:
            return False
        self._best[prefix] = route
        return True

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def prefixes(self) -> Tuple[Prefix, ...]:
        return tuple(sorted(self._best))

    def routes(self) -> Tuple[Route, ...]:
        return tuple(self._best[p] for p in sorted(self._best))

    def __len__(self) -> int:
        return len(self._best)


class AdjRIBOut:
    """Last route advertised to each neighbor, per prefix."""

    def __init__(self) -> None:
        self._advertised: Dict[Tuple[str, Prefix], Route] = {}

    def record(self, neighbor: str, route: Route) -> None:
        self._advertised[(neighbor, route.prefix)] = route

    def advertised(self, neighbor: str, prefix: Prefix) -> Optional[Route]:
        return self._advertised.get((neighbor, prefix))

    def clear(self, neighbor: str, prefix: Prefix) -> Optional[Route]:
        return self._advertised.pop((neighbor, prefix), None)

    def prefixes_to(self, neighbor: str) -> Tuple[Prefix, ...]:
        return tuple(
            sorted(pfx for (n, pfx) in self._advertised if n == neighbor)
        )

    def __len__(self) -> int:
        return len(self._advertised)
