"""Routes: a destination prefix plus its BGP path attributes.

A :class:`Route` is the unit that flows through route-flow graphs, gets
committed to in PVR, and is compared by the decision process.  Attributes
follow RFC 4271's usage:

* ``local_pref`` — operator preference, highest wins (import policy sets
  it; it never crosses AS boundaries in eBGP, which the router enforces);
* ``as_path`` — loop prevention and the paper's length comparisons;
* ``origin`` — IGP < EGP < INCOMPLETE;
* ``med`` — multi-exit discriminator, lowest wins among same-neighbor
  routes;
* ``communities`` — opaque tags used by policies (e.g. the partial-transit
  example tags European-peer routes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional

from repro.bgp.aspath import ASPath
from repro.bgp.prefix import Prefix
from repro.util.encoding import canonical_encode

ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

_ORIGIN_NAMES = {ORIGIN_IGP: "IGP", ORIGIN_EGP: "EGP", ORIGIN_INCOMPLETE: "?"}

DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True)
class Route:
    """An immutable route announcement.

    ``neighbor`` records which peer the route was learned from (None for
    locally-originated routes); it is the identity PVR uses when deciding
    which Ni may see which openings.
    """

    prefix: Prefix
    as_path: ASPath = field(default_factory=ASPath)
    neighbor: Optional[str] = None
    local_pref: int = DEFAULT_LOCAL_PREF
    med: int = 0
    origin: int = ORIGIN_IGP
    communities: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.origin not in _ORIGIN_NAMES:
            raise ValueError(f"invalid origin {self.origin}")
        if not isinstance(self.communities, frozenset):
            object.__setattr__(self, "communities", frozenset(self.communities))

    # -- derived ---------------------------------------------------------

    @property
    def path_length(self) -> int:
        return len(self.as_path)

    def has_community(self, community: str) -> bool:
        return community in self.communities

    # -- transformations (used by policies and export) -------------------

    def with_local_pref(self, local_pref: int) -> "Route":
        return replace(self, local_pref=local_pref)

    def with_med(self, med: int) -> "Route":
        return replace(self, med=med)

    def with_neighbor(self, neighbor: Optional[str]) -> "Route":
        return replace(self, neighbor=neighbor)

    def with_communities(self, communities) -> "Route":
        return replace(self, communities=frozenset(communities))

    def add_community(self, community: str) -> "Route":
        return replace(self, communities=self.communities | {community})

    def remove_community(self, community: str) -> "Route":
        return replace(self, communities=self.communities - {community})

    def prepended(self, asn: str, count: int = 1) -> "Route":
        return replace(self, as_path=self.as_path.prepend(asn, count))

    def exported_by(self, asn: str) -> "Route":
        """The route as it appears on the wire after ``asn`` exports it:
        path prepended, and the non-transitive LOCAL_PREF reset."""
        return replace(
            self,
            as_path=self.as_path.prepend(asn),
            local_pref=DEFAULT_LOCAL_PREF,
            neighbor=asn,
        )

    # -- identity ---------------------------------------------------------

    def announcement_key(self) -> bytes:
        """Canonical bytes identifying the *announced* content of the route
        (what a signature covers): prefix and path attributes, excluding
        receiver-local metadata like ``neighbor`` and ``local_pref``."""
        return canonical_encode(
            (
                "route-announcement",
                self.prefix,
                self.as_path,
                self.med,
                self.origin,
                tuple(sorted(self.communities)),
            )
        )

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "route",
                self.prefix,
                self.as_path,
                self.neighbor,
                self.local_pref,
                self.med,
                self.origin,
                tuple(sorted(self.communities)),
            )
        )

    def __str__(self) -> str:
        return (
            f"{self.prefix} via [{self.as_path}]"
            f" lp={self.local_pref} med={self.med}"
            f" origin={_ORIGIN_NAMES[self.origin]}"
            + (f" from {self.neighbor}" if self.neighbor else "")
        )
