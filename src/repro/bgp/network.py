"""AS-level BGP network simulation.

Glues :class:`repro.bgp.router.BGPRouter` nodes onto the simulated message
network, establishes all sessions, originates prefixes and runs the event
loop to convergence.  This is the substrate the SCALE benchmark and the
Internet-scale example run PVR on top of.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.policy import Policy, PERMIT_ALL
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.bgp.router import BGPRouter
from repro.net.simnet import Network


class ConvergenceError(RuntimeError):
    """Raised when the network fails to converge within the event budget."""


class BGPNetwork:
    """A set of AS routers joined by BGP sessions over simulated links."""

    def __init__(self) -> None:
        self.transport = Network()
        self.routers: Dict[str, BGPRouter] = {}

    # -- construction -----------------------------------------------------

    def add_as(self, asn: str) -> BGPRouter:
        router = BGPRouter(asn)
        self.routers[asn] = router
        self.transport.add_node(router)
        return router

    def connect(
        self,
        a: str,
        b: str,
        latency: float = 0.01,
        import_policy_a: Policy = PERMIT_ALL,
        export_policy_a: Policy = PERMIT_ALL,
        import_policy_b: Policy = PERMIT_ALL,
        export_policy_b: Policy = PERMIT_ALL,
    ) -> None:
        """Create the link and the two peering configurations for a<->b.

        The ``_a`` policies belong to router ``a`` (its import/export with
        peer ``b``), and symmetrically for ``_b``.
        """
        self.transport.add_link(a, b, latency)
        self.routers[a].add_peer(
            b, import_policy=import_policy_a, export_policy=export_policy_a
        )
        self.routers[b].add_peer(
            a, import_policy=import_policy_b, export_policy=export_policy_b
        )

    def router(self, asn: str) -> BGPRouter:
        return self.routers[asn]

    def as_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.routers))

    # -- operation ----------------------------------------------------------

    def establish_sessions(self, max_events: int = 1_000_000) -> None:
        """Bring every configured session to Established."""
        for asn in sorted(self.routers):
            self.routers[asn].start_all_sessions(self.transport)
        self.run_to_quiescence(max_events)
        for asn, router in self.routers.items():
            for peer, session in router.sessions.items():
                if not session.established:
                    raise ConvergenceError(
                        f"session {asn}<->{peer} failed to establish"
                    )

    def originate(self, asn: str, prefix: Prefix) -> None:
        self.routers[asn].originate(self.transport, prefix)

    def drop_session(self, a: str, b: str) -> None:
        """Administratively drop the a<->b BGP session on both sides;
        each router withdraws everything learned over it.  Re-establish
        with ``routers[a].start_session(transport, b)``."""
        self.routers[a].drop_peer(self.transport, b)
        self.routers[b].drop_peer(self.transport, a)

    def withdraw(self, asn: str, prefix: Prefix) -> None:
        self.routers[asn].withdraw_origin(self.transport, prefix)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Process events until no messages remain in flight.

        Returns the number of events processed.  Raises
        :class:`ConvergenceError` when the budget is exhausted, which in a
        correct configuration indicates a persistent oscillation (e.g. a
        BGP wedgie built from conflicting policies).
        """
        processed = self.transport.run(max_events=max_events)
        if self.transport.simulator.pending():
            raise ConvergenceError(
                f"network did not quiesce within {max_events} events"
            )
        return processed

    # -- inspection ----------------------------------------------------------

    def best_route(self, asn: str, prefix: Prefix) -> Optional[Route]:
        return self.routers[asn].loc_rib.best(prefix)

    def reachability(self, prefix: Prefix) -> Dict[str, Optional[Route]]:
        """Best route to ``prefix`` at every AS (None = unreachable)."""
        return {
            asn: self.routers[asn].loc_rib.best(prefix)
            for asn in sorted(self.routers)
        }

    def forwarding_path(
        self, source: str, prefix: Prefix, max_hops: int = 64
    ) -> List[str]:
        """Follow best-route next hops from ``source`` to the originator.

        The next hop of an AS-level route is the first AS on its path.
        Returns the sequence of ASes traversed, starting at ``source``.
        """
        path = [source]
        current = source
        for _ in range(max_hops):
            router = self.routers[current]
            if prefix in router.originated:
                return path
            best = router.loc_rib.best(prefix)
            if best is None or best.neighbor is None:
                raise ValueError(f"{current} has no route to {prefix}")
            current = best.neighbor
            path.append(current)
        raise ValueError("forwarding loop or path too long")

    def total_updates(self) -> int:
        return sum(r.updates_sent for r in self.routers.values())
