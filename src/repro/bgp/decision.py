"""The BGP decision process.

Section 2.1 of the paper observes that "a pipeline of such operators, one
for each attribute, makes up the usual route selection process".  This
module is that pipeline in its conventional (non-PVR) form, used by the
plain BGP simulator and as the ground truth the route-flow-graph encoding
is checked against:

1. highest LOCAL_PREF;
2. shortest AS_PATH;
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED (compared across all candidates — "always-compare-med" —
   to keep the process a total preorder);
5. deterministic tie-break on the neighbor name (stands in for the
   lowest-router-id step).

``decide`` is exposed both as a one-shot function over candidate sets and
as composable elimination steps (reused by :mod:`repro.rfg.operators`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from repro.bgp.route import Route

EliminationStep = Callable[[Sequence[Route]], List[Route]]


def step_local_pref(candidates: Sequence[Route]) -> List[Route]:
    """Keep only routes with the highest LOCAL_PREF."""
    if not candidates:
        return []
    best = max(r.local_pref for r in candidates)
    return [r for r in candidates if r.local_pref == best]


def step_as_path_length(candidates: Sequence[Route]) -> List[Route]:
    """Keep only routes with the shortest AS path."""
    if not candidates:
        return []
    best = min(r.path_length for r in candidates)
    return [r for r in candidates if r.path_length == best]


def step_origin(candidates: Sequence[Route]) -> List[Route]:
    """Keep only routes with the lowest ORIGIN code."""
    if not candidates:
        return []
    best = min(r.origin for r in candidates)
    return [r for r in candidates if r.origin == best]


def step_med(candidates: Sequence[Route]) -> List[Route]:
    """Keep only routes with the lowest MED."""
    if not candidates:
        return []
    best = min(r.med for r in candidates)
    return [r for r in candidates if r.med == best]


def step_neighbor_tiebreak(candidates: Sequence[Route]) -> List[Route]:
    """Deterministic final tie-break: lowest neighbor name."""
    if not candidates:
        return []
    best = min(candidates, key=lambda r: (r.neighbor is None, r.neighbor or ""))
    return [best]


STANDARD_PIPELINE: tuple = (
    step_local_pref,
    step_as_path_length,
    step_origin,
    step_med,
    step_neighbor_tiebreak,
)


def decide(
    candidates: Iterable[Route],
    pipeline: Sequence[EliminationStep] = STANDARD_PIPELINE,
) -> Route | None:
    """Run the elimination pipeline and return the single best route.

    Returns ``None`` when there are no candidates.  Raises when the
    pipeline fails to reach a unique winner (a mis-built custom pipeline).
    """
    remaining: List[Route] = list(candidates)
    if not remaining:
        return None
    for step in pipeline:
        remaining = step(remaining)
        if len(remaining) == 1:
            return remaining[0]
        if not remaining:
            raise RuntimeError("elimination step removed all candidates")
    if len(remaining) != 1:
        raise RuntimeError(
            f"pipeline did not reach a unique winner ({len(remaining)} left)"
        )
    return remaining[0]


def rank_key(route: Route) -> tuple:
    """A sort key consistent with ``decide`` under the standard pipeline:
    ``min(candidates, key=rank_key)`` equals ``decide(candidates)``.

    Useful for property tests and for the permitted-set semantics of
    promises, where "the best route" must be computable without running
    the elimination pipeline.
    """
    return (
        -route.local_pref,
        route.path_length,
        route.origin,
        route.med,
        route.neighbor is None,
        route.neighbor or "",
    )
