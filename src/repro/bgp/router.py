"""A BGP speaker: sessions, RIBs, policies and the decision process.

One :class:`BGPRouter` models one AS (the paper reasons at AS granularity
throughout).  The router:

* establishes sessions with neighbors via the FSM in
  :mod:`repro.bgp.session`;
* applies per-neighbor *import* policies to received announcements,
  storing survivors in the Adj-RIB-In;
* runs the decision process whenever a prefix's candidate set changes;
* applies per-neighbor *export* policies, prepends its own AS, and
  announces Loc-RIB changes, suppressing no-op re-announcements via the
  Adj-RIB-Out.

Two hooks exist for the PVR layer and the adversary library:

* decision hooks ``(prefix, candidates, chosen)`` fire after every
  decision — the audit plane uses them to drive verification epochs.
  Any number of hooks may be registered via :meth:`BGPRouter.add_decision_hook`
  (the audit plane, a logger and a test probe can all observe the same
  router); the legacy ``decision_hook`` attribute remains as a single
  assignable slot for existing callers;
* ``select_override(prefix, candidates) -> Route | None`` replaces the
  honest decision function — adversarial routers use it to break their
  promises (e.g. export a longer-than-best route).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bgp.decision import decide
from repro.bgp.messages import Keepalive, Notification, Open, Update
from repro.bgp.policy import PERMIT_ALL, Policy
from repro.bgp.prefix import Prefix
from repro.bgp.rib import AdjRIBIn, AdjRIBOut, LocRIB
from repro.bgp.route import Route
from repro.bgp.session import Session, SessionError, SessionState
from repro.net.simnet import Message, Network, Node

DecisionHook = Callable[[Prefix, List[Route], Optional[Route]], None]
ResyncHook = Callable[[str, tuple], None]
SelectOverride = Callable[[Prefix, List[Route]], Optional[Route]]


class BGPRouter(Node):
    """An AS-level BGP speaker attached to the simulated network."""

    def __init__(self, asn: str) -> None:
        super().__init__(asn)
        self.asn = asn
        self.adj_rib_in = AdjRIBIn()
        self.loc_rib = LocRIB()
        self.adj_rib_out = AdjRIBOut()
        self.sessions: Dict[str, Session] = {}
        self.import_policies: Dict[str, Policy] = {}
        self.export_policies: Dict[str, Policy] = {}
        self.originated: Dict[Prefix, Route] = {}
        self._decision_hooks: List[DecisionHook] = []
        self._legacy_decision_hook: Optional[DecisionHook] = None
        self._resync_hooks: List[ResyncHook] = []
        self.select_override: Optional[SelectOverride] = None
        self.updates_received = 0
        self.updates_sent = 0
        # PVR messages ride the same links as BGP; anything flagged is_pvr
        # is stashed here for the deployment layer instead of entering the
        # BGP state machine
        self.pvr_inbox: List[Message] = []

    # -- configuration ---------------------------------------------------

    def add_peer(
        self,
        peer_as: str,
        import_policy: Policy = PERMIT_ALL,
        export_policy: Policy = PERMIT_ALL,
    ) -> None:
        if peer_as in self.sessions:
            raise ValueError(f"{self.asn}: duplicate peer {peer_as}")
        self.sessions[peer_as] = Session(local_as=self.asn, peer_as=peer_as)
        self.import_policies[peer_as] = import_policy
        self.export_policies[peer_as] = export_policy

    def set_import_policy(self, peer_as: str, policy: Policy) -> None:
        self._require_peer(peer_as)
        self.import_policies[peer_as] = policy

    def set_export_policy(self, peer_as: str, policy: Policy) -> None:
        self._require_peer(peer_as)
        self.export_policies[peer_as] = policy

    def _require_peer(self, peer_as: str) -> None:
        if peer_as not in self.sessions:
            raise KeyError(f"{self.asn}: unknown peer {peer_as}")

    # -- decision hooks ------------------------------------------------------

    @property
    def decision_hook(self) -> Optional[DecisionHook]:
        """The legacy single-hook slot.  Assigning it replaces only this
        slot; hooks added via :meth:`add_decision_hook` are unaffected, so
        a caller using the old attribute cannot clobber the audit plane."""
        return self._legacy_decision_hook

    @decision_hook.setter
    def decision_hook(self, hook: Optional[DecisionHook]) -> None:
        self._legacy_decision_hook = hook

    def add_decision_hook(self, hook: DecisionHook) -> DecisionHook:
        """Register ``hook`` to fire after every decision (alongside any
        previously registered hooks).  Returns the hook for convenience."""
        self._decision_hooks.append(hook)
        return hook

    def remove_decision_hook(self, hook: DecisionHook) -> None:
        """Unregister a hook added with :meth:`add_decision_hook`."""
        self._decision_hooks.remove(hook)

    def decision_hooks(self) -> tuple:
        """Every active hook, legacy slot first."""
        hooks = []
        if self._legacy_decision_hook is not None:
            hooks.append(self._legacy_decision_hook)
        hooks.extend(self._decision_hooks)
        return tuple(hooks)

    def add_resync_hook(self, hook: ResyncHook) -> ResyncHook:
        """Register ``hook(peer, prefixes)`` to fire when this router
        resends its full table to ``peer`` (session establishment or
        re-establishment).  No decision runs on that path, so decision
        hooks stay silent — yet the export set toward ``peer`` changes;
        the audit plane listens here to re-audit those exports."""
        self._resync_hooks.append(hook)
        return hook

    def remove_resync_hook(self, hook: ResyncHook) -> None:
        self._resync_hooks.remove(hook)

    # -- session management ------------------------------------------------

    def start_session(self, network: Network, peer_as: str) -> None:
        self._require_peer(peer_as)
        session = self.sessions[peer_as]
        if session.state == SessionState.IDLE:
            network.send(self.asn, peer_as, session.start())

    def start_all_sessions(self, network: Network) -> None:
        for peer_as in sorted(self.sessions):
            self.start_session(network, peer_as)

    def established_peers(self) -> List[str]:
        return sorted(
            peer for peer, session in self.sessions.items() if session.established
        )

    def drop_peer(self, network: Network, peer_as: str) -> None:
        """Administratively drop the session with ``peer_as``: reset the
        FSM and withdraw everything learned over it (decisions rerun, so
        hooks fire).  The session can be re-established later with
        :meth:`start_session`."""
        self._require_peer(peer_as)
        self.sessions[peer_as].reset()
        self._flush_peer(network, peer_as)

    # -- origination ---------------------------------------------------------

    def originate(self, network: Network, prefix: Prefix) -> None:
        """Originate ``prefix`` locally and announce it."""
        route = Route(prefix=prefix, neighbor=None)
        self.originated[prefix] = route
        self._rerun_decision(network, prefix)

    def withdraw_origin(self, network: Network, prefix: Prefix) -> None:
        if prefix in self.originated:
            del self.originated[prefix]
            self._rerun_decision(network, prefix)

    # -- message handling -----------------------------------------------------

    def handle_message(self, network: Network, message: Message) -> None:
        payload = message.payload
        peer = message.src
        if getattr(payload, "is_pvr", False):
            self.pvr_inbox.append(message)
            return
        if peer not in self.sessions:
            return  # not a configured peer; ignore
        session = self.sessions[peer]
        try:
            if isinstance(payload, Open):
                was_idle = session.state == SessionState.IDLE
                reply = session.handle_open(payload)
                if was_idle:
                    # passive side: we never sent our own OPEN; do so now
                    network.send(self.asn, peer, Open(asn=self.asn))
                if reply is not None:
                    network.send(self.asn, peer, reply)
            elif isinstance(payload, Keepalive):
                was_established = session.established
                session.handle_keepalive()
                if session.established and not was_established:
                    network.send(self.asn, peer, Keepalive())
                    self._send_full_table(network, peer)
            elif isinstance(payload, Notification):
                session.handle_notification(payload)
                self._flush_peer(network, peer)
            elif isinstance(payload, Update):
                if not session.established:
                    raise SessionError("UPDATE before session establishment")
                self._handle_update(network, peer, payload)
            else:
                raise SessionError(f"unknown message {type(payload).__name__}")
        except SessionError:
            session.reset()
            self._flush_peer(network, peer)

    # -- update processing -------------------------------------------------

    def _handle_update(self, network: Network, peer: str, update: Update) -> None:
        self.updates_received += 1
        touched: List[Prefix] = []
        for prefix in update.withdrawn:
            if self.adj_rib_in.withdraw(peer, prefix) is not None:
                touched.append(prefix)
        if update.announced is not None:
            route = update.announced.with_neighbor(peer)
            if route.as_path.has_loop_for(self.asn):
                pass  # loop prevention: silently discard
            else:
                imported = self.import_policies[peer].apply(route)
                if imported is not None:
                    self.adj_rib_in.insert(peer, imported)
                    touched.append(imported.prefix)
                else:
                    # policy rejected it; an implicit withdraw of any
                    # previous announcement for that prefix
                    if self.adj_rib_in.withdraw(peer, route.prefix) is not None:
                        touched.append(route.prefix)
        for prefix in dict.fromkeys(touched):
            self._rerun_decision(network, prefix)

    def candidates(self, prefix: Prefix) -> List[Route]:
        """Current decision input: received routes plus local origination."""
        found = list(self.adj_rib_in.candidates(prefix))
        if prefix in self.originated:
            found.append(self.originated[prefix])
        return found

    def _rerun_decision(self, network: Network, prefix: Prefix) -> None:
        candidates = self.candidates(prefix)
        if self.select_override is not None:
            best = self.select_override(prefix, candidates)
        else:
            best = decide(candidates)
        if self._legacy_decision_hook is not None:
            self._legacy_decision_hook(prefix, candidates, best)
        for hook in self._decision_hooks:
            hook(prefix, candidates, best)
        if self.loc_rib.set_best(prefix, best):
            self._propagate(network, prefix)

    # -- export ------------------------------------------------------------

    def _propagate(self, network: Network, prefix: Prefix) -> None:
        for peer in self.established_peers():
            self._announce_to(network, peer, prefix)

    def _send_full_table(self, network: Network, peer: str) -> None:
        prefixes = self.loc_rib.prefixes()
        for prefix in prefixes:
            self._announce_to(network, peer, prefix)
        for hook in self._resync_hooks:
            hook(peer, prefixes)

    def _announce_to(self, network: Network, peer: str, prefix: Prefix) -> None:
        best = self.loc_rib.best(prefix)
        outgoing: Optional[Route] = None
        if best is not None:
            # split-horizon: do not advertise a route back to the neighbor
            # it was learned from
            if best.neighbor != peer:
                exported = self.export_policies[peer].apply(best)
                if exported is not None:
                    outgoing = exported.exported_by(self.asn)
        previously = self.adj_rib_out.advertised(peer, prefix)
        if outgoing is not None:
            if previously == outgoing:
                return  # duplicate suppression
            self.adj_rib_out.record(peer, outgoing)
            network.send(self.asn, peer, Update(announced=outgoing))
            self.updates_sent += 1
        elif previously is not None:
            self.adj_rib_out.clear(peer, prefix)
            network.send(self.asn, peer, Update(withdrawn=(prefix,)))
            self.updates_sent += 1

    def _flush_peer(self, network: Network, peer: str) -> None:
        """Session loss: drop everything learned from ``peer``."""
        for prefix in self.adj_rib_in.drop_neighbor(peer):
            self._rerun_decision(network, prefix)
        for prefix in self.adj_rib_out.prefixes_to(peer):
            self.adj_rib_out.clear(peer, prefix)
