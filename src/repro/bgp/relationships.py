"""Gao-Rexford business relationships and valley-free policies.

The paper's motivating context — partial transit, peering, provider
agreements [6, 21, 24] — is the standard customer/provider/peer model
(Gao 2001, reference [7] of the paper).  This module turns a relationship
assignment into concrete import/export :class:`repro.bgp.policy.Policy`
objects:

* **import**: LOCAL_PREF by relationship — customer routes (most
  lucrative) > peer routes > provider routes;
* **export** (valley-free rule): routes learned from customers are
  exported to everyone; routes learned from peers or providers are
  exported to customers only.

The implementation tags routes with provenance communities on import and
filters on those communities on export, which is exactly how operators
express Gao-Rexford in real route-maps — and gives the PVR compiler
realistic policy structures to work from.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.bgp.policy import (
    AddCommunity,
    Clause,
    MatchAny,
    MatchCommunity,
    Policy,
    SetLocalPref,
)

PROVENANCE_CUSTOMER = "prov:customer"
PROVENANCE_PEER = "prov:peer"
PROVENANCE_PROVIDER = "prov:provider"

LOCAL_PREF_CUSTOMER = 200
LOCAL_PREF_PEER = 150
LOCAL_PREF_PROVIDER = 50


class Relationship(Enum):
    """The relationship of a neighbor *to us*."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


_IMPORT_SETTINGS: Dict[Relationship, Tuple[str, int]] = {
    Relationship.CUSTOMER: (PROVENANCE_CUSTOMER, LOCAL_PREF_CUSTOMER),
    Relationship.PEER: (PROVENANCE_PEER, LOCAL_PREF_PEER),
    Relationship.PROVIDER: (PROVENANCE_PROVIDER, LOCAL_PREF_PROVIDER),
}


def import_policy(relationship: Relationship) -> Policy:
    """Import policy for a neighbor with the given relationship to us."""
    community, local_pref = _IMPORT_SETTINGS[relationship]
    return Policy(
        clauses=(
            Clause(
                matches=(MatchAny(),),
                actions=(
                    # Strip any forged provenance the neighbor may have set,
                    # then tag with the true provenance.
                    *(
                        _strip(c)
                        for c in (
                            PROVENANCE_CUSTOMER,
                            PROVENANCE_PEER,
                            PROVENANCE_PROVIDER,
                        )
                    ),
                    AddCommunity(community),
                    SetLocalPref(local_pref),
                ),
                name=f"import-{relationship.value}",
            ),
        ),
        name=f"gao-rexford-import-{relationship.value}",
    )


def _strip(community: str):
    from repro.bgp.policy import RemoveCommunity

    return RemoveCommunity(community)


def export_policy(relationship: Relationship) -> Policy:
    """Valley-free export policy toward a neighbor.

    To a **customer**: export everything (they pay for full reach).
    To a **peer** or **provider**: export only customer-learned routes and
    our own originations (routes with no provenance tag).
    """
    if relationship is Relationship.CUSTOMER:
        return Policy(name="gao-rexford-export-to-customer")
    return Policy(
        clauses=(
            Clause(
                matches=(MatchCommunity(PROVENANCE_PEER),),
                permit=False,
                name="no-peer-routes",
            ),
            Clause(
                matches=(MatchCommunity(PROVENANCE_PROVIDER),),
                permit=False,
                name="no-provider-routes",
            ),
        ),
        default_permit=True,
        name=f"gao-rexford-export-to-{relationship.value}",
    )


@dataclass(frozen=True)
class RelationshipConfig:
    """Both directions of policy for one side of a peering."""

    relationship: Relationship

    def import_policy(self) -> Policy:
        return import_policy(self.relationship)

    def export_policy(self) -> Policy:
        return export_policy(self.relationship)


def is_valley_free(path_relationships) -> bool:
    """Check the valley-free property of a sequence of link types.

    ``path_relationships`` lists, for each hop along the path, the
    relationship of the *next* AS to the current one: an Up (provider),
    Down (customer) or Flat (peer) step.  Valid paths match
    ``Up* Flat? Down*``.
    """
    seen_flat_or_down = False
    for step in path_relationships:
        if step is Relationship.PROVIDER:  # going up
            if seen_flat_or_down:
                return False
        elif step is Relationship.PEER:
            if seen_flat_or_down:
                return False
            seen_flat_or_down = True
        elif step is Relationship.CUSTOMER:  # going down
            seen_flat_or_down = True
        else:
            raise TypeError(f"not a relationship: {step!r}")
    return True
