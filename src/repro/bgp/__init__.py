"""BGP substrate: an AS-level interdomain routing simulator.

This package is the "unsecured system" of the paper — plain BGP whose
information leakage PVR's confidentiality property is measured against,
and whose decision pipeline the route-flow graphs of :mod:`repro.rfg`
re-express as verifiable operators.

Layering (bottom-up): prefixes and AS paths, routes and messages, RIBs,
the decision process, route-map policies, the session FSM, the router,
and the multi-AS network simulation.  :mod:`repro.bgp.relationships` adds
Gao-Rexford business-relationship policies on top.
"""

from repro.bgp.aspath import ASPath
from repro.bgp.decision import (
    STANDARD_PIPELINE,
    decide,
    rank_key,
    step_as_path_length,
    step_local_pref,
    step_med,
    step_neighbor_tiebreak,
    step_origin,
)
from repro.bgp.messages import (
    Keepalive,
    Notification,
    Open,
    SignedUpdate,
    Update,
    sign_update,
    signed_update_bytes,
)
from repro.bgp.network import BGPNetwork, ConvergenceError
from repro.bgp.policy import (
    DENY_ALL,
    PERMIT_ALL,
    AddCommunity,
    Clause,
    MatchAny,
    MatchASInPath,
    MatchCommunity,
    MatchNeighbor,
    MatchPathLength,
    MatchPrefix,
    Policy,
    Prepend,
    RemoveCommunity,
    SetLocalPref,
    SetMed,
)
from repro.bgp.prefix import Prefix, PrefixError
from repro.bgp.rib import AdjRIBIn, AdjRIBOut, LocRIB
from repro.bgp.route import (
    DEFAULT_LOCAL_PREF,
    ORIGIN_EGP,
    ORIGIN_IGP,
    ORIGIN_INCOMPLETE,
    Route,
)
from repro.bgp.router import BGPRouter
from repro.bgp.relationships import (
    Relationship,
    RelationshipConfig,
    export_policy,
    import_policy,
    is_valley_free,
)
from repro.bgp.session import Session, SessionError, SessionState

__all__ = [
    "ASPath",
    "STANDARD_PIPELINE",
    "decide",
    "rank_key",
    "step_as_path_length",
    "step_local_pref",
    "step_med",
    "step_neighbor_tiebreak",
    "step_origin",
    "Keepalive",
    "Notification",
    "Open",
    "SignedUpdate",
    "Update",
    "sign_update",
    "signed_update_bytes",
    "BGPNetwork",
    "ConvergenceError",
    "DENY_ALL",
    "PERMIT_ALL",
    "AddCommunity",
    "Clause",
    "MatchAny",
    "MatchASInPath",
    "MatchCommunity",
    "MatchNeighbor",
    "MatchPathLength",
    "MatchPrefix",
    "Policy",
    "Prepend",
    "RemoveCommunity",
    "SetLocalPref",
    "SetMed",
    "Prefix",
    "PrefixError",
    "AdjRIBIn",
    "AdjRIBOut",
    "LocRIB",
    "DEFAULT_LOCAL_PREF",
    "ORIGIN_EGP",
    "ORIGIN_IGP",
    "ORIGIN_INCOMPLETE",
    "Route",
    "BGPRouter",
    "Relationship",
    "RelationshipConfig",
    "export_policy",
    "import_policy",
    "is_valley_free",
    "Session",
    "SessionError",
    "SessionState",
]
