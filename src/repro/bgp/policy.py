"""Import/export policy engine: route maps.

The paper's premise is that "interdomain routing policy encodes the nature
of the business relationships between the participants" and is expressed
in "the language of router configurations".  This module is that language
for the simulator: an ordered list of clauses, each with match conditions
and either a deny or a sequence of actions, mirroring vendor route-maps.

Policies are *data*, so the PVR compiler (:mod:`repro.rfg.compiler`) can
translate them into route-flow graphs, and so tests can reason about what
a policy does without executing a router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route


# -- match conditions -----------------------------------------------------


@dataclass(frozen=True)
class MatchAny:
    """Matches every route."""

    def matches(self, route: Route) -> bool:
        return True

    def describe(self) -> str:
        return "any"


@dataclass(frozen=True)
class MatchPrefix:
    """Match routes whose prefix is covered by ``prefix``.

    ``exact`` restricts to the prefix itself rather than any more-specific.
    """

    prefix: Prefix
    exact: bool = False

    def matches(self, route: Route) -> bool:
        if self.exact:
            return route.prefix == self.prefix
        return self.prefix.contains(route.prefix)

    def describe(self) -> str:
        return f"prefix {'=' if self.exact else '<='} {self.prefix}"


@dataclass(frozen=True)
class MatchCommunity:
    community: str

    def matches(self, route: Route) -> bool:
        return route.has_community(self.community)

    def describe(self) -> str:
        return f"community {self.community}"


@dataclass(frozen=True)
class MatchNeighbor:
    """Match routes learned from one of ``neighbors``."""

    neighbors: Tuple[str, ...]

    def __init__(self, neighbors) -> None:
        object.__setattr__(self, "neighbors", tuple(neighbors))

    def matches(self, route: Route) -> bool:
        return route.neighbor in self.neighbors

    def describe(self) -> str:
        return f"from {{{', '.join(self.neighbors)}}}"


@dataclass(frozen=True)
class MatchASInPath:
    """Match routes whose AS path traverses ``asn``."""

    asn: str

    def matches(self, route: Route) -> bool:
        return route.as_path.contains(self.asn)

    def describe(self) -> str:
        return f"path contains {self.asn}"


@dataclass(frozen=True)
class MatchPathLength:
    """Match routes with AS-path length in [min_length, max_length]."""

    min_length: int = 0
    max_length: int = 2**31

    def matches(self, route: Route) -> bool:
        return self.min_length <= route.path_length <= self.max_length

    def describe(self) -> str:
        return f"pathlen in [{self.min_length}, {self.max_length}]"


# -- actions ---------------------------------------------------------------


@dataclass(frozen=True)
class SetLocalPref:
    value: int

    def apply(self, route: Route) -> Route:
        return route.with_local_pref(self.value)

    def describe(self) -> str:
        return f"set local-pref {self.value}"


@dataclass(frozen=True)
class SetMed:
    value: int

    def apply(self, route: Route) -> Route:
        return route.with_med(self.value)

    def describe(self) -> str:
        return f"set med {self.value}"


@dataclass(frozen=True)
class AddCommunity:
    community: str

    def apply(self, route: Route) -> Route:
        return route.add_community(self.community)

    def describe(self) -> str:
        return f"add community {self.community}"


@dataclass(frozen=True)
class RemoveCommunity:
    community: str

    def apply(self, route: Route) -> Route:
        return route.remove_community(self.community)

    def describe(self) -> str:
        return f"remove community {self.community}"


@dataclass(frozen=True)
class Prepend:
    """AS-path prepending (traffic engineering)."""

    asn: str
    count: int = 1

    def apply(self, route: Route) -> Route:
        return route.prepended(self.asn, self.count)

    def describe(self) -> str:
        return f"prepend {self.asn} x{self.count}"


# -- clauses and policies ---------------------------------------------------


@dataclass(frozen=True)
class Clause:
    """One route-map entry: if all matches hit, apply actions (or deny)."""

    matches: Tuple = ()
    actions: Tuple = ()
    permit: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.matches, tuple):
            object.__setattr__(self, "matches", tuple(self.matches))
        if not isinstance(self.actions, tuple):
            object.__setattr__(self, "actions", tuple(self.actions))
        if not self.permit and self.actions:
            raise ValueError("deny clauses cannot carry actions")

    def applies_to(self, route: Route) -> bool:
        return all(m.matches(route) for m in self.matches)

    def describe(self) -> str:
        verb = "permit" if self.permit else "deny"
        conds = " and ".join(m.describe() for m in self.matches) or "any"
        acts = "; ".join(a.describe() for a in self.actions)
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{verb} if {conds}" + (f" then {acts}" if acts else "")


@dataclass(frozen=True)
class Policy:
    """An ordered route map with an implicit default disposition.

    First matching clause wins (vendor semantics).  ``default_permit``
    decides the fate of unmatched routes: import policies commonly default
    to permit, export policies to deny (announce nothing unless allowed).
    """

    clauses: Tuple[Clause, ...] = ()
    default_permit: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.clauses, tuple):
            object.__setattr__(self, "clauses", tuple(self.clauses))

    def apply(self, route: Route) -> Optional[Route]:
        """Evaluate the policy; returns the transformed route or None."""
        for clause in self.clauses:
            if clause.applies_to(route):
                if not clause.permit:
                    return None
                result = route
                for action in clause.actions:
                    result = action.apply(result)
                return result
        return route if self.default_permit else None

    def describe(self) -> str:
        head = f"policy {self.name or '<anonymous>'}"
        body = "\n".join("  " + c.describe() for c in self.clauses)
        tail = f"  default {'permit' if self.default_permit else 'deny'}"
        return "\n".join(part for part in (head, body, tail) if part)


PERMIT_ALL = Policy(name="permit-all")
DENY_ALL = Policy(default_permit=False, name="deny-all")
