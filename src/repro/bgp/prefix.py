"""IPv4 prefixes.

Routes in BGP are announced per destination prefix; PVR promises are also
made per prefix ("shortest-path routing to a given IP prefix", Section 1).
A tiny from-scratch implementation keeps the substrate dependency-free and
is sufficient for the simulator: parsing, normalization, containment and
overlap tests, and canonical encoding for hashing/signing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.util.encoding import canonical_encode

_MAX = (1 << 32) - 1


class PrefixError(ValueError):
    """Raised on malformed prefix text or out-of-range components."""


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise PrefixError(f"malformed IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@total_ordering
@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix, stored normalized (host bits zeroed).

    ``network`` is the 32-bit integer network address; ``length`` the mask
    length in [0, 32].
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise PrefixError(f"prefix length {self.length} out of range")
        if not 0 <= self.network <= _MAX:
            raise PrefixError("network address out of range")
        if self.network & ~self.mask() & _MAX:
            raise PrefixError(
                f"host bits set in {_format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"``; host bits must be zero."""
        if "/" not in text:
            raise PrefixError(f"missing length in {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise PrefixError(f"malformed length in {text!r}")
        return cls(network=_parse_ipv4(addr_text), length=int(len_text))

    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (_MAX << (32 - self.length)) & _MAX

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than ``self``."""
        if other.length < self.length:
            return False
        return (other.network & self.mask()) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def subnets(self) -> tuple:
        """The two immediate more-specific halves of this prefix."""
        if self.length == 32:
            raise PrefixError("a /32 has no subnets")
        low = Prefix(self.network, self.length + 1)
        high = Prefix(self.network | (1 << (31 - self.length)), self.length + 1)
        return (low, high)

    def canonical(self) -> bytes:
        return canonical_encode(("prefix", self.network, self.length))

    def __str__(self) -> str:
        return f"{_format_ipv4(self.network)}/{self.length}"

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)
