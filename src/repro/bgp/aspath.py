"""AS paths.

The AS_PATH attribute is central to both the BGP decision process (step 2:
prefer the shortest path) and to PVR's Example #2, where the promise is
about AS-path *length*.  The simulator models AS_PATH as a flat sequence
of AS numbers (AS_SET aggregation is out of scope for the paper and
omitted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.util.encoding import canonical_encode


@dataclass(frozen=True)
class ASPath:
    """An immutable sequence of AS names, most recent hop first.

    ``asns[0]`` is the AS that most recently announced the route; the
    originating AS is last, matching wire order in BGP UPDATE messages.
    """

    asns: Tuple[str, ...] = ()

    def __init__(self, asns: Iterable[str] = ()) -> None:
        object.__setattr__(self, "asns", tuple(asns))

    def prepend(self, asn: str, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times.

        ``count > 1`` models AS-path prepending, the traffic-engineering
        practice that makes paths look longer without changing reachability.
        """
        if count < 1:
            raise ValueError("prepend count must be >= 1")
        return ASPath((asn,) * count + self.asns)

    def contains(self, asn: str) -> bool:
        return asn in self.asns

    def has_loop_for(self, asn: str) -> bool:
        """BGP loop prevention: an AS rejects paths already carrying it."""
        return asn in self.asns

    @property
    def origin_as(self) -> str | None:
        return self.asns[-1] if self.asns else None

    @property
    def first_hop(self) -> str | None:
        return self.asns[0] if self.asns else None

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[str]:
        return iter(self.asns)

    def __str__(self) -> str:
        return " ".join(self.asns) if self.asns else "<empty>"

    def canonical(self) -> bytes:
        return canonical_encode(("as-path",) + self.asns)
