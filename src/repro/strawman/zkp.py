"""The zero-knowledge-proof strawman (paper Section 3.1).

"Another strawman could be built using general zero-knowledge proofs
[GMW91], which are also very general, but at the same time, there are
scaling concerns as the complexity of policy increases."

Two pieces:

* :class:`ZKPCostModel` — the scaling model: a general ZKP for an NP
  statement walks a circuit/graph representation of the policy once per
  soundness repetition (cut-and-choose style, soundness error 2^-r), so
  cost ∝ policy size × repetitions.  The STRAW benchmark uses our own
  circuit sizes for the policy so the scaling curve is grounded in a real
  artifact rather than a guess.

* :func:`cut_and_choose_commitment_proof` — a small *executable*
  cut-and-choose protocol proving that a committed bit is well-formed
  (0 or 1) without revealing it, the simplest member of the family the
  strawman would be built from.  It exists to measure the constant
  factors of hash-based repetitions honestly, not to be a full policy
  ZKP (which is exactly the machinery the paper is arguing one should
  avoid building).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.commitment import Commitment, Opening, commit, verify_opening
from repro.util.rng import DeterministicRandom


@dataclass(frozen=True)
class ZKPCostModel:
    """Cost ∝ policy size × soundness repetitions.

    ``seconds_per_gate_per_repetition`` is calibrated so that a small
    policy (≈1000 gates) at 40-bit soundness costs the same order as the
    SMC strawman — consistent with the paper treating both as
    prohibitively general.
    """

    seconds_per_gate_per_repetition: float = 0.0004

    def repetitions(self, soundness_bits: int) -> int:
        """Cut-and-choose soundness 2^-r needs r repetitions."""
        if soundness_bits < 1:
            raise ValueError("soundness_bits must be >= 1")
        return soundness_bits

    def modelled_seconds(self, policy_gates: int, soundness_bits: int) -> float:
        return (
            policy_gates
            * self.repetitions(soundness_bits)
            * self.seconds_per_gate_per_repetition
        )


@dataclass(frozen=True)
class BitProof:
    """A cut-and-choose proof that a commitment opens to 0 or 1.

    For each repetition the prover commits to ``bit XOR mask_i`` and to
    ``mask_i``; the verifier's challenge opens either both masks (check
    the XOR relation is over bits) or the masked bit (check it is a bit).
    Neither branch reveals the bit itself.
    """

    repetitions: Tuple[Tuple[Commitment, Commitment], ...]
    challenges: Tuple[int, ...]
    responses: Tuple[Tuple[Opening, ...], ...]


def cut_and_choose_commitment_proof(
    bit: int,
    repetitions: int,
    seed: int = 0,
) -> BitProof:
    """Prove "this value is a bit" with ``repetitions`` rounds.

    The challenge is derived Fiat-Shamir-style from the commitments, so
    the proof is non-interactive and self-contained.
    """
    if bit not in (0, 1):
        raise ValueError("value must be a bit")
    rng = DeterministicRandom(seed).fork("zkp")
    pairs: List[Tuple[Commitment, Commitment]] = []
    openings: List[Tuple[Opening, Opening]] = []
    for index in range(repetitions):
        mask = rng.randint(0, 1)
        c_masked, o_masked = commit(f"zkp:{index}:masked", bit ^ mask, rng.bytes)
        c_mask, o_mask = commit(f"zkp:{index}:mask", mask, rng.bytes)
        pairs.append((c_masked, c_mask))
        openings.append((o_masked, o_mask))

    from repro.crypto.hashing import hash_many

    transcript = hash_many(
        "repro.zkp.challenge",
        *(c.digest for pair in pairs for c in pair),
    )
    challenges = tuple((transcript[i // 8] >> (i % 8)) & 1
                       for i in range(repetitions))
    responses = []
    for index, challenge in enumerate(challenges):
        o_masked, o_mask = openings[index]
        if challenge == 0:
            responses.append((o_mask,))       # reveal the mask only
        else:
            responses.append((o_masked,))     # reveal the masked bit only
    return BitProof(
        repetitions=tuple(pairs),
        challenges=challenges,
        responses=tuple(responses),
    )


def verify_bit_proof(proof: BitProof) -> bool:
    """Check every repetition's challenged opening is a valid bit."""
    if len(proof.repetitions) != len(proof.challenges) or len(
        proof.challenges
    ) != len(proof.responses):
        return False
    from repro.crypto.hashing import hash_many

    transcript = hash_many(
        "repro.zkp.challenge",
        *(c.digest for pair in proof.repetitions for c in pair),
    )
    expected = tuple((transcript[i // 8] >> (i % 8)) & 1
                     for i in range(len(proof.repetitions)))
    if expected != proof.challenges:
        return False
    for (c_masked, c_mask), challenge, response in zip(
        proof.repetitions, proof.challenges, proof.responses
    ):
        if len(response) != 1:
            return False
        opening = response[0]
        target = c_mask if challenge == 0 else c_masked
        if not verify_opening(target, opening):
            return False
        if opening.value not in (0, 1):
            return False
    return True
