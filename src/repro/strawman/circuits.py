"""Boolean circuits: the computation substrate for the SMC strawman.

Section 3.1 dismisses generic secure multiparty computation as
"prohibitively expensive" for per-update route verification.  To measure
that claim rather than assert it, we need the actual circuit a generic
SMC would evaluate for the paper's running example: *the minimum of k
AS-path lengths* (and the arg-min selection).  This module provides a
small circuit IR — XOR / AND / NOT over single bits — plus builders for
adders, comparators, multiplexers and the k-way minimum, with gate and
depth accounting (AND gates dominate SMC cost; XOR is free in GMW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

XOR = "xor"
AND = "and"
NOT = "not"
INPUT = "input"
CONST = "const"


@dataclass(frozen=True)
class Gate:
    """One gate: ``kind`` plus the indices of its argument wires."""

    kind: str
    args: Tuple[int, ...] = ()
    value: int = 0       # for CONST
    owner: str = ""      # for INPUT: which party supplies the bit
    label: str = ""      # for INPUT: diagnostic name


class Circuit:
    """A DAG of gates identified by wire index (creation order)."""

    def __init__(self) -> None:
        self.gates: List[Gate] = []
        self.outputs: List[int] = []

    # -- construction ---------------------------------------------------------

    def _add(self, gate: Gate) -> int:
        self.gates.append(gate)
        return len(self.gates) - 1

    def input(self, owner: str, label: str = "") -> int:
        return self._add(Gate(kind=INPUT, owner=owner, label=label))

    def const(self, value: int) -> int:
        if value not in (0, 1):
            raise ValueError("const must be a bit")
        return self._add(Gate(kind=CONST, value=value))

    def xor(self, a: int, b: int) -> int:
        return self._add(Gate(kind=XOR, args=(a, b)))

    def and_(self, a: int, b: int) -> int:
        return self._add(Gate(kind=AND, args=(a, b)))

    def not_(self, a: int) -> int:
        return self._add(Gate(kind=NOT, args=(a,)))

    def or_(self, a: int, b: int) -> int:
        """a OR b = (a XOR b) XOR (a AND b)."""
        return self.xor(self.xor(a, b), self.and_(a, b))

    def mux(self, select: int, when_true: int, when_false: int) -> int:
        """when_false XOR (select AND (when_true XOR when_false))."""
        diff = self.xor(when_true, when_false)
        return self.xor(when_false, self.and_(select, diff))

    def mark_output(self, wire: int) -> None:
        self.outputs.append(wire)

    # -- multi-bit helpers (little-endian wire vectors) -------------------------

    def input_word(self, owner: str, bits: int, label: str = "") -> List[int]:
        return [self.input(owner, f"{label}[{i}]") for i in range(bits)]

    def const_word(self, value: int, bits: int) -> List[int]:
        return [self.const((value >> i) & 1) for i in range(bits)]

    def mux_word(self, select: int, when_true: Sequence[int],
                 when_false: Sequence[int]) -> List[int]:
        if len(when_true) != len(when_false):
            raise ValueError("word width mismatch")
        return [
            self.mux(select, t, f) for t, f in zip(when_true, when_false)
        ]

    def less_or_equal(self, a: Sequence[int], b: Sequence[int]) -> int:
        """a <= b for unsigned little-endian words (ripple comparator)."""
        if len(a) != len(b):
            raise ValueError("word width mismatch")
        # le_i for bits [0..i]: le = (a_i == b_i) ? le_{i-1} : (b_i)
        le = self.const(1)
        for ai, bi in zip(a, b):
            eq = self.not_(self.xor(ai, bi))
            le = self.mux(eq, le, bi)
        return le

    def minimum(self, words: Sequence[Sequence[int]]) -> List[int]:
        """k-way minimum by a linear chain of compare-and-select."""
        if not words:
            raise ValueError("need at least one word")
        current = list(words[0])
        for word in words[1:]:
            cond = self.less_or_equal(current, word)
            current = self.mux_word(cond, current, list(word))
        return current

    # -- accounting ----------------------------------------------------------

    def and_gate_count(self) -> int:
        return sum(1 for g in self.gates if g.kind == AND)

    def gate_count(self) -> int:
        return sum(1 for g in self.gates if g.kind in (XOR, AND, NOT))

    def and_depth(self) -> int:
        """Longest chain of AND gates — the round count of GMW."""
        depth: Dict[int, int] = {}
        for index, gate in enumerate(self.gates):
            if gate.kind in (INPUT, CONST):
                depth[index] = 0
            else:
                base = max((depth[a] for a in gate.args), default=0)
                depth[index] = base + (1 if gate.kind == AND else 0)
        return max((depth[w] for w in self.outputs), default=0)

    def input_wires(self) -> List[int]:
        return [i for i, g in enumerate(self.gates) if g.kind == INPUT]

    # -- plain evaluation (reference semantics) ----------------------------------

    def evaluate(self, inputs: Dict[int, int]) -> List[int]:
        """Evaluate in the clear; ``inputs`` maps input wires to bits."""
        values: Dict[int, int] = {}
        for index, gate in enumerate(self.gates):
            if gate.kind == INPUT:
                if index not in inputs:
                    raise ValueError(f"missing input for wire {index}")
                values[index] = inputs[index] & 1
            elif gate.kind == CONST:
                values[index] = gate.value
            elif gate.kind == XOR:
                values[index] = values[gate.args[0]] ^ values[gate.args[1]]
            elif gate.kind == AND:
                values[index] = values[gate.args[0]] & values[gate.args[1]]
            elif gate.kind == NOT:
                values[index] = 1 - values[gate.args[0]]
            else:
                raise ValueError(f"unknown gate kind {gate.kind}")
        return [values[w] for w in self.outputs]


def minimum_length_circuit(parties: Sequence[str], bits: int) -> Circuit:
    """The FIG1 task as a circuit: each party inputs its route length
    (``bits``-bit word); the output is the minimum length."""
    circuit = Circuit()
    words = [
        circuit.input_word(party, bits, label=f"len_{party}")
        for party in parties
    ]
    result = circuit.minimum(words)
    for wire in result:
        circuit.mark_output(wire)
    return circuit


def word_to_inputs(circuit: Circuit, owner_words: Dict[str, int],
                   bits: int) -> Dict[int, int]:
    """Assign each party's integer to its input wires (little-endian)."""
    assignment: Dict[int, int] = {}
    per_owner: Dict[str, List[int]] = {}
    for index in circuit.input_wires():
        per_owner.setdefault(circuit.gates[index].owner, []).append(index)
    for owner, value in owner_words.items():
        wires = per_owner.get(owner, [])
        if len(wires) != bits:
            raise ValueError(f"{owner} has {len(wires)} wires, expected {bits}")
        for position, wire in enumerate(wires):
            assignment[wire] = (value >> position) & 1
    return assignment


def bits_to_int(bits: Sequence[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits))
