"""Executable GMW-style secure multiparty computation (the strawman).

Section 3.1: "even with only five players, state-of-the-art SMC systems
take about 15 seconds of computation time for a simple task like voting
[FairplayMP], and such a task would have to be performed for every single
BGP update."

This module makes the comparison concrete.  It runs an honest-but-curious
GMW protocol over the circuits of :mod:`repro.strawman.circuits`:

* every wire value is XOR-shared among the k parties;
* XOR/NOT gates are local (free);
* each AND gate consumes one Beaver multiplication triple (dealt by a
  trusted dealer, standing in for the OT preprocessing real systems use)
  and one round of cross-party opening — two masked values broadcast by
  every party.

The execution is *real* (shares are computed, messages counted, the
output provably equals the plain evaluation); the *wall-clock model*
(:class:`SMCCostModel`) maps the counted operations to the published
FairplayMP scale, since a Python bit-level inner loop says nothing about
2011-era compiled SMC.  Both the measured Python time and the modelled
time are reported by the STRAW benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.strawman.circuits import AND, CONST, INPUT, NOT, XOR, Circuit
from repro.util.rng import DeterministicRandom


@dataclass
class SMCExecutionStats:
    """Costs counted during one protocol execution."""

    parties: int
    and_gates: int = 0
    rounds: int = 0
    messages: int = 0
    bits_exchanged: int = 0
    triples_consumed: int = 0


@dataclass(frozen=True)
class SMCResult:
    outputs: Tuple[int, ...]
    stats: SMCExecutionStats


class GMWProtocol:
    """Honest-but-curious GMW with a trusted Beaver-triple dealer."""

    def __init__(self, parties: Sequence[str], seed: int = 0) -> None:
        if len(parties) < 2:
            raise ValueError("SMC needs at least two parties")
        self.parties = tuple(parties)
        self._rng = DeterministicRandom(seed).fork("gmw")

    def _share(self, value: int) -> List[int]:
        """Split a bit into XOR shares, one per party."""
        shares = [self._rng.randint(0, 1) for _ in self.parties[:-1]]
        last = value
        for share in shares:
            last ^= share
        shares.append(last)
        return shares

    def _deal_triple(self) -> Tuple[List[int], List[int], List[int]]:
        """A Beaver triple (a, b, c = a AND b), each value XOR-shared."""
        a = self._rng.randint(0, 1)
        b = self._rng.randint(0, 1)
        return self._share(a), self._share(b), self._share(a & b)

    def run(self, circuit: Circuit, inputs: Dict[int, int]) -> SMCResult:
        """Execute the circuit on secret-shared inputs.

        ``inputs`` maps input wires to plaintext bits (as supplied by
        their owners); sharing happens internally.
        """
        k = len(self.parties)
        stats = SMCExecutionStats(parties=k)
        shares: Dict[int, List[int]] = {}

        # layered evaluation so AND gates at the same depth share a round
        depth: Dict[int, int] = {}
        for index, gate in enumerate(circuit.gates):
            if gate.kind == INPUT:
                if index not in inputs:
                    raise ValueError(f"missing input for wire {index}")
                shares[index] = self._share(inputs[index] & 1)
                depth[index] = 0
            elif gate.kind == CONST:
                # public constant: conventionally held by party 0
                shares[index] = [gate.value] + [0] * (k - 1)
                depth[index] = 0
            elif gate.kind in (XOR, NOT):
                if gate.kind == XOR:
                    a, b = gate.args
                    shares[index] = [
                        shares[a][p] ^ shares[b][p] for p in range(k)
                    ]
                    depth[index] = max(depth[a], depth[b])
                else:
                    (a,) = gate.args
                    flipped = list(shares[a])
                    flipped[0] ^= 1  # party 0 flips its share
                    shares[index] = flipped
                    depth[index] = depth[a]
            elif gate.kind == AND:
                a, b = gate.args
                shares[index] = self._beaver_and(shares[a], shares[b], stats)
                depth[index] = max(depth[a], depth[b]) + 1
                stats.and_gates += 1
            else:
                raise ValueError(f"unknown gate {gate.kind}")

        stats.rounds = max(
            (depth[w] for w in circuit.outputs), default=0
        ) + 1  # +1 for the output-opening round
        # output opening: every party broadcasts each output share
        stats.messages += len(circuit.outputs) * k * (k - 1)
        stats.bits_exchanged += len(circuit.outputs) * k * (k - 1)

        outputs = []
        for wire in circuit.outputs:
            bit = 0
            for share in shares[wire]:
                bit ^= share
            outputs.append(bit)
        return SMCResult(outputs=tuple(outputs), stats=stats)

    def _beaver_and(
        self, x: List[int], y: List[int], stats: SMCExecutionStats
    ) -> List[int]:
        """One AND gate via a Beaver triple.

        Parties open d = x ^ a and e = y ^ b (each party broadcasts its
        share of d and e), then compute shares of
        z = c ^ (d AND b) ^ (e AND a) ^ (d AND e).
        """
        k = len(self.parties)
        a, b, c = self._deal_triple()
        stats.triples_consumed += 1
        d_shares = [x[p] ^ a[p] for p in range(k)]
        e_shares = [y[p] ^ b[p] for p in range(k)]
        # the opening: every party sends both masked shares to every other
        stats.messages += 2 * k * (k - 1)
        stats.bits_exchanged += 2 * k * (k - 1)
        d = 0
        e = 0
        for p in range(k):
            d ^= d_shares[p]
            e ^= e_shares[p]
        z = [c[p] ^ (d & b[p]) ^ (e & a[p]) for p in range(k)]
        z[0] ^= d & e  # public term folded into party 0's share
        return z


@dataclass(frozen=True)
class SMCCostModel:
    """Wall-clock model calibrated to the paper's FairplayMP data point.

    FairplayMP evaluates a 5-party voting function in ~15 s.  A voting
    circuit for a handful of candidates is on the order of a thousand
    AND gates, giving ≈ 15 ms per AND gate at 5 parties; FairplayMP's
    BMR-style evaluation scales roughly quadratically in the number of
    parties (pairwise communication), normalized here to the 5-party
    calibration point.
    """

    seconds_per_and_gate_at_5: float = 0.015
    calibration_parties: int = 5

    def modelled_seconds(self, and_gates: int, parties: int) -> float:
        scale = (parties / self.calibration_parties) ** 2
        return and_gates * self.seconds_per_and_gate_at_5 * scale

    def voting_sanity_point(self) -> float:
        """The calibration itself: ~1000 AND gates, 5 parties → ~15 s."""
        return self.modelled_seconds(1000, 5)
