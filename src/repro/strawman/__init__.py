"""Strawman baselines of Section 3.1: generic SMC and ZKP.

These exist so the STRAW benchmark can *measure* the paper's claim that
PVR is orders of magnitude cheaper than generic cryptography, rather than
restate it: an executable boolean-circuit substrate, a real GMW execution
with counted gates/rounds/messages, calibrated wall-clock models tied to
the paper's published FairplayMP data point, and a small executable
cut-and-choose proof for the hash-commitment constant factors.
"""

from repro.strawman.circuits import (
    Circuit,
    bits_to_int,
    minimum_length_circuit,
    word_to_inputs,
)
from repro.strawman.smc import GMWProtocol, SMCCostModel, SMCResult
from repro.strawman.zkp import (
    BitProof,
    ZKPCostModel,
    cut_and_choose_commitment_proof,
    verify_bit_proof,
)

__all__ = [
    "Circuit",
    "bits_to_int",
    "minimum_length_circuit",
    "word_to_inputs",
    "GMWProtocol",
    "SMCCostModel",
    "SMCResult",
    "BitProof",
    "ZKPCostModel",
    "cut_and_choose_commitment_proof",
    "verify_bit_proof",
]
