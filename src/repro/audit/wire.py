"""The transport-coupled verification round, shared by the audit plane.

The engine (:mod:`repro.pvr.engine`) verifies in memory; this module
runs one session *in situ* on a :class:`~repro.bgp.network.BGPNetwork`:
every protocol message travels over the same simulated links as the BGP
updates, so byte/message/latency accounting includes PVR's real
transport cost, and a dropped or tampered wire message surfaces in the
verdicts because verification consumes what actually *arrived*.

Message flow per round, mirroring Section 3.3 (the same flow serves all
four protocol variants, since the unified engine discloses one view per
party regardless of variant):

1. each provider re-announces its current route with a PVR signature
   (``AnnouncePayload``);
2. the prover receipts, commits, and broadcasts its signed commitment
   statement to every neighbor (``CommitPayload``) — the gossip
   substrate;
3. the prover sends each party its round view (``ViewPayload``) —
   provider/recipient views for the single-operator protocols,
   ``(announcement, receipt)`` pairs and export attestations for the
   graph variant, per-recipient attestations for the cross-check;
4. parties verify locally from the received views and gossip the
   statements pairwise.

Crypto cost is measured via the keystore's operation counters and wall
clock; transport cost via the network's byte/message counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.bgp.network import BGPNetwork
from repro.crypto.keystore import KeyStore
from repro.pvr.engine import VerificationSession
from repro.pvr.session import PromiseSpec, SessionReport
from repro.util.rng import DeterministicRandom


@dataclass(frozen=True)
class AnnouncePayload:
    """Provider -> prover: the PVR-signed announcement."""

    announcement: object
    is_pvr = True


@dataclass(frozen=True)
class CommitPayload:
    """Prover -> all neighbors: the signed commitment statement."""

    statement: object
    is_pvr = True


@dataclass(frozen=True)
class ViewPayload:
    """Prover -> one party: its round view."""

    view: object
    is_pvr = True


@dataclass
class RoundStats:
    """Cost accounting for one wire round.

    ``recipient`` is the (first) recipient, kept for the legacy
    single-recipient consumers; ``recipients`` carries the full set,
    which the promise-4 cross-check makes plural.
    """

    prover: str
    recipient: str
    providers: Tuple[str, ...]
    recipients: Tuple[str, ...] = ()
    messages: int = 0
    bytes: int = 0
    signatures: int = 0
    verifications: int = 0
    wall_seconds: float = 0.0
    violations: int = 0
    equivocations: int = 0
    reused: bool = False


@dataclass
class DeploymentReport:
    """Aggregate across a batch of wire rounds."""

    rounds: List[RoundStats] = field(default_factory=list)

    def total(self, attribute: str) -> float:
        return sum(getattr(r, attribute) for r in self.rounds)

    def violation_free(self) -> bool:
        return all(r.violations == 0 and r.equivocations == 0 for r in self.rounds)


def round_randomness(seed, round: int) -> Callable[[int], bytes]:
    """The audit plane's commitment-nonce source for one round.

    Deriving nonces deterministically from ``(seed, round)`` makes every
    monitored round *replayable*: a one-shot
    :class:`~repro.pvr.engine.VerificationSession` constructed with the
    same spec, round and randomness reproduces the monitor's transcript
    byte for byte — the property the incremental-reuse tests pin down.
    """
    return DeterministicRandom(seed).fork(f"audit-round:{round}").bytes


def _announcement_senders(
    session: VerificationSession, announcements: Mapping[str, object]
) -> List[Tuple[str, object]]:
    """Pair each announcement with the party that puts it on the wire.

    Single-operator and cross-check announcements are keyed by provider
    name already; graph-variant announcements are keyed by input
    *variable* and owned by the variable's party (a party owning several
    input variables sends one message per variable).  A provider with no
    route this round produced no signed announcement, so nothing of its
    goes on the wire.
    """
    if session.variant != "graph":
        return [
            (party, ann)
            for party, ann in announcements.items()
            if ann is not None
        ]
    sends: List[Tuple[str, object]] = []
    for vertex in session.plan.inputs():
        ann = announcements.get(vertex.name)
        if ann is not None:
            sends.append((vertex.party, ann))
    return sends


def run_wire_round(
    network: BGPNetwork,
    keystore: KeyStore,
    spec: PromiseSpec,
    routes: Mapping[str, object],
    *,
    round: int,
    prover: object = None,
    chooser: object = None,
    backend: object = None,
    random_bytes: Callable[[int], bytes] | None = None,
) -> Tuple[SessionReport, RoundStats]:
    """One verification round with every protocol message on the wire.

    ``routes`` is the prover's current Adj-RIB-In slice (party -> Route
    or None) — what each provider will re-announce.  Returns the
    engine's :class:`~repro.pvr.session.SessionReport` plus the round's
    cost accounting.
    """
    # an injected prover instance (a Byzantine deviation) that was built
    # without a nonce source adopts the round's deterministic stream for
    # the duration of this round (restored afterwards, so a reused
    # instance gets each round's own stream): monitored Byzantine rounds
    # are replayable — and a cluster worker's probe transcript is
    # byte-identical to the unsharded monitor's
    seeded_prover = (
        prover is not None
        and random_bytes is not None
        and getattr(prover, "random_bytes", False) is None
    )
    if seeded_prover:
        prover.random_bytes = random_bytes
    try:
        return _run_wire_round(
            network,
            keystore,
            spec,
            routes,
            round=round,
            prover=prover,
            chooser=chooser,
            backend=backend,
            random_bytes=random_bytes,
        )
    finally:
        if seeded_prover:
            prover.random_bytes = None


def _run_wire_round(
    network: BGPNetwork,
    keystore: KeyStore,
    spec: PromiseSpec,
    routes: Mapping[str, object],
    *,
    round: int,
    prover: object,
    chooser: object,
    backend: object,
    random_bytes: Callable[[int], bytes] | None,
) -> Tuple[SessionReport, RoundStats]:
    transport = network.transport
    session = VerificationSession(
        keystore,
        spec,
        round=round,
        prover=prover,
        chooser=chooser,
        backend=backend,
        random_bytes=random_bytes,
    )

    sign_before = keystore.sign_count
    verify_before = keystore.verify_count
    bytes_before = transport.bytes_sent
    messages_before = transport.delivered
    started = time.perf_counter()

    # 1. providers announce over the wire
    announcements = session.announce(routes)
    for party, ann in _announcement_senders(session, announcements):
        transport.send(party, spec.prover, AnnouncePayload(ann))
    transport.run()

    # 2. the prover commits (accept + decide + sign)
    statement = session.commit()

    # 3. distribute commitment + views over the wire
    views = session.disclose()
    for party in views:
        transport.send(spec.prover, party, ViewPayload(views[party]))
    if statement is not None:
        for neighbor in transport.neighbors(spec.prover):
            transport.send(spec.prover, neighbor, CommitPayload(statement))
    transport.run()

    # 4. collective verification from what actually ARRIVED (a dropped
    # or tampered wire message must affect the verdicts), incl. gossip
    received = _collect_views(network, spec.prover, tuple(views))
    _drain_round(network, spec.prover)
    report = session.verify(received=received)

    stats = RoundStats(
        prover=spec.prover,
        recipient=spec.recipient,
        providers=spec.providers,
        recipients=spec.recipients,
        messages=transport.delivered - messages_before,
        bytes=transport.bytes_sent - bytes_before,
        signatures=keystore.sign_count - sign_before,
        verifications=keystore.verify_count - verify_before,
        wall_seconds=time.perf_counter() - started,
        violations=sum(len(v.violations) for v in report.verdicts.values()),
        equivocations=len(report.equivocations),
    )
    return report, stats


def modeled_wire_stats(
    session: VerificationSession,
    announcements: Mapping[str, object],
    views: Mapping[str, object],
    statement: object,
    neighbor_count: int,
) -> Tuple[int, int]:
    """The (messages, bytes) a :func:`run_wire_round` of this session
    would have recorded, computed without a network.

    Shard and cluster workers verify off-wire; replaying the transport
    cost model here is what makes a sharded round report the *same*
    byte/message counts as the serial wire path instead of zero.  The
    model mirrors the wire round exactly — one message per signed
    announcement, one view per party, the commitment statement broadcast
    to every neighbor of the prover — and prices each payload with
    :func:`repro.net.simnet.estimate_size`, the same function the
    network's byte counter uses.  It is exact when the network is
    quiescent and no interceptor is armed (both true on the serve path:
    epochs only run at quiescence, and Byzantine probes never ship to
    workers).
    """
    from repro.net.simnet import estimate_size

    messages = 0
    total = 0
    for _, ann in _announcement_senders(session, announcements):
        messages += 1
        total += estimate_size(AnnouncePayload(ann))
    for view in views.values():
        messages += 1
        total += estimate_size(ViewPayload(view))
    if statement is not None and neighbor_count > 0:
        messages += neighbor_count
        total += neighbor_count * estimate_size(CommitPayload(statement))
    return messages, total


def _collect_views(
    network: BGPNetwork, prover_as: str, parties: Tuple[str, ...]
) -> Dict[str, object]:
    """Drain each party's PVR inbox for this round's view payload."""
    received: Dict[str, object] = {}
    for name in parties:
        router = network.router(name)
        remaining = []
        for message in router.pvr_inbox:
            payload = message.payload
            if message.src == prover_as and isinstance(payload, ViewPayload):
                received[name] = payload.view
            else:
                remaining.append(message)
        router.pvr_inbox[:] = remaining
    return received


def _drain_round(network: BGPNetwork, prover_as: str) -> None:
    """Drop this round's announcement and commitment payloads from the
    inboxes they landed in.

    The views are consumed by :func:`_collect_views`; announcements (at
    the prover) and commitment broadcasts (at every neighbor) exist only
    for transport-cost fidelity and would otherwise accumulate without
    bound across a long-lived monitor's epochs.
    """
    prover = network.router(prover_as)
    prover.pvr_inbox[:] = [
        m for m in prover.pvr_inbox
        if not isinstance(m.payload, AnnouncePayload)
    ]
    for neighbor in network.transport.neighbors(prover_as):
        router = network.router(neighbor)
        router.pvr_inbox[:] = [
            m for m in router.pvr_inbox
            if not (m.src == prover_as
                    and isinstance(m.payload, CommitPayload))
        ]
