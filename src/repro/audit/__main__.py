"""The audit-plane CLI: ``python -m repro.audit``.

Usage::

    python -m repro.audit --list
    python -m repro.audit --scenario churn-fig1
    python -m repro.audit --scenario churn-64as --max-work 8 --adjudicate
    python -m repro.audit --scenario churn-steady --json audit.json

Runs a registered churn scenario through a continuous
:class:`~repro.audit.monitor.Monitor`, printing one row per epoch
(verified / reused / deferred / crypto cost) and the evidence-store
summary; ``--adjudicate`` runs the third-party judge over every stored
violation.  Exit status (the shared :mod:`repro.util.cli` contract):
0 on a violation-free run (or when violations were expected), 1 when
unexpected violations were found, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys

from repro.audit.churn import run_churn
from repro.bench.tables import print_table
from repro.obs import log as obs_log
from repro.pvr.execution import shutdown_backends
from repro.util.cli import (
    EXIT_OK,
    add_common_arguments,
    envelope,
    fail,
    usage_error,
    write_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="Run a churn scenario under the continuous audit "
        "monitor and report its epochs and evidence trail.",
    )
    parser.add_argument("--scenario", default="churn-fig1", metavar="NAME",
                        help="registered churn scenario (default: churn-fig1)")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list registered churn scenarios and exit")
    parser.add_argument("--backend", default=None, metavar="SPEC",
                        help='execution backend passthrough ("thread", '
                        '"process:4", ...)')
    parser.add_argument("--max-work", type=int, default=None, metavar="N",
                        help="bound fresh verifications per epoch")
    parser.add_argument("--adjudicate", action="store_true",
                        help="run the judge over every stored violation")
    add_common_arguments(
        parser,
        seed_help="keystore / nonce-stream seed (default: 2011)",
        json_help="write a machine-readable summary here",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    obs_log.configure_logging(json_mode=args.log_json)
    from repro.pvr import scenarios as registry

    if args.list_scenarios:
        rows = [
            (name, registry.get_churn(name).description)
            for name in registry.churn_names()
        ]
        print_table("registered churn scenarios", ["name", "description"],
                    rows)
        return 0

    if args.max_work is not None and args.max_work < 1:
        return usage_error(
            f"--max-work must be >= 1, got {args.max_work}"
        )
    try:
        scenario = registry.get_churn(args.scenario)
    except KeyError as exc:
        return usage_error(exc.args[0])

    try:
        result = run_churn(
            scenario,
            key_bits=args.key_bits,
            rng_seed=args.seed,
            backend=args.backend,
            max_work=args.max_work,
        )
    finally:
        shutdown_backends()

    print_table(
        f"audit epochs — {scenario.name}",
        ["epoch", "events", "verified", "reused", "deferred",
         "signs", "verifies", "wall ms"],
        [
            (e.epoch, len(e.events), e.verified, e.reused, len(e.deferred),
             e.signatures, e.verifications, f"{e.wall_seconds * 1000:.1f}")
            for e in result.epochs
        ],
    )

    store = result.monitor.evidence
    summary = result.summary()
    print_table(
        "evidence store",
        ["events", "verified", "reused", "violations", "monitored ASes"],
        [(summary["events"], summary["verified"], summary["reused"],
          summary["violations"],
          ", ".join(sorted({e.asn for e in store.events()})))],
    )

    violations = store.violations()
    if violations and args.adjudicate:
        rows = []
        rulings = store.adjudicate()
        for event in violations:
            adjudication = rulings[event.seq]
            rows.append((
                event.seq, event.asn, str(event.prefix),
                ",".join(event.detecting_parties()) or "gossip",
                "GUILTY" if adjudication.guilty() else "complaints only",
            ))
        print_table(
            "judge adjudication",
            ["event", "AS", "prefix", "detected by", "ruling"],
            rows,
        )

    if args.json:
        # schema-versioned like the repro.bench reports, so downstream
        # tooling can detect incompatible summary layouts
        write_json(
            args.json,
            envelope("repro.audit/summary", 1, summary),
            tag="audit", what="summary",
        )

    if violations and not scenario.expect_violation:
        return fail(
            "audit",
            f"{len(violations)} unexpected violation event(s)",
        )
    obs_log.emit(
        "audit",
        f"{result.events} events across {len(result.epochs)} epochs; "
        f"reuse ratio {result.reuse_ratio():.0%}; "
        f"{'violations as expected' if violations else 'violation-free'}",
        events=result.events,
        epochs=len(result.epochs),
        violations=len(violations),
    )
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
