"""Audit policies: what a monitored AS has promised, to whom.

A policy binds one AS to one promise.  What it accepts as ``spec``:

* a :class:`~repro.promises.spec.Promise` template (``ShortestRoute()``,
  ``WithinKHops(2)``, ``NoLongerThanOthers()``, ...) — the concrete
  :class:`~repro.pvr.session.PromiseSpec` is *materialized from the live
  RIBs* at every epoch: providers are the neighbors currently announcing
  the prefix, recipients the neighbors the AS currently exports it to;
* a callable ``providers -> Promise`` — for promises parameterized by
  the provider set (e.g. ``lambda ps: ExistentialPromise(ps)``);
* a full :class:`~repro.pvr.session.PromiseSpec` — parties fixed by the
  caller; the monitor only schedules and caches it.

``recipients=...`` restricts which neighbors the policy covers, so two
policies on the same AS can promise different things to different
neighbors (per-neighbor overrides); ``prefixes=...`` restricts the
prefixes audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.audit.choosers import ChooserRef
from repro.bgp.prefix import Prefix
from repro.bgp.router import BGPRouter
from repro.promises.spec import NoLongerThanOthers, Promise
from repro.pvr.minimum import DEFAULT_MAX_LENGTH
from repro.pvr.session import PromiseSpec

SpecSource = Union[Promise, PromiseSpec, Callable[[Tuple[str, ...]], Promise]]


@dataclass(frozen=True)
class WorkItem:
    """One materialized verification task: the spec plus its inputs."""

    asn: str
    prefix: Optional[Prefix]
    policy: str
    spec: PromiseSpec
    routes: Dict[str, object]

    def fingerprint(self) -> Tuple:
        """The incremental-reuse key ingredients: the contract and the
        exact announced inputs.  Round numbers are deliberately absent —
        a tuple re-verified with unchanged inputs is the *same* work."""
        return (self.spec, tuple(sorted(self.routes.items(), key=lambda kv: kv[0])))


def single_recipient_item(
    router: BGPRouter,
    asn: str,
    policy_name: str,
    prefix: Prefix,
    recipient: str,
    promise: object,
    *,
    variant: str = "auto",
    max_length: int = DEFAULT_MAX_LENGTH,
) -> Optional[WorkItem]:
    """Materialize one single-recipient verification task from the live
    RIBs: providers are the neighbors currently announcing ``prefix``
    (minus the recipient — the only provider cannot also be the
    auditor); returns ``None`` when no provider remains.

    ``promise`` may be a template or a ``providers -> Promise`` factory.
    The single definition of these rules — the epoch scheduler
    (:meth:`AuditPolicy.work_items`) and the one-shot path
    (:meth:`repro.audit.monitor.Monitor.audit_once`) both call it, so
    the two can never diverge.
    """
    providers = tuple(
        p
        for p in router.adj_rib_in.neighbors_announcing(prefix)
        if p != recipient
    )
    if not providers:
        return None
    if callable(promise) and not isinstance(promise, Promise):
        promise = promise(providers)
    spec = PromiseSpec(
        promise=promise,
        prover=asn,
        providers=providers,
        recipients=(recipient,),
        variant=variant,
        max_length=max_length,
    )
    routes = {p: router.adj_rib_in.route_from(p, prefix) for p in providers}
    return WorkItem(
        asn=asn, prefix=prefix, policy=policy_name, spec=spec, routes=routes
    )


@dataclass(frozen=True)
class AuditPolicy:
    """One registered promise policy on one AS."""

    name: str
    asn: str
    spec: SpecSource
    recipients: Optional[Tuple[str, ...]] = None
    prefixes: Optional[Tuple[Prefix, ...]] = None
    variant: str = "auto"
    max_length: int = DEFAULT_MAX_LENGTH
    #: a live callable, or a :mod:`repro.audit.choosers` registry name
    #: (names pickle, so the policy ships to shard/cluster workers)
    chooser: ChooserRef = None
    session_options: Dict[str, object] = field(default_factory=dict)

    def covers(self, prefix: Prefix) -> bool:
        return self.prefixes is None or prefix in self.prefixes

    # -- materialization -----------------------------------------------------

    def work_items(self, router: BGPRouter, prefix: Prefix) -> List[WorkItem]:
        """The verification tasks this policy implies for ``prefix``,
        given the router's *current* RIB state."""
        if isinstance(self.spec, PromiseSpec):
            # same relevance guards as the template path: a prefix none
            # of the pinned providers announce, or that the AS exports
            # to none of the pinned recipients, has nothing to audit —
            # a wire round over it would spend crypto proving nothing
            announcing = set(router.adj_rib_in.neighbors_announcing(prefix))
            if not announcing.intersection(self.spec.providers):
                return []
            if not any(
                router.adj_rib_out.advertised(r, prefix) is not None
                for r in self.spec.recipients
            ):
                return []
            routes = {
                p: router.adj_rib_in.route_from(p, prefix)
                for p in self.spec.providers
            }
            return [
                WorkItem(
                    asn=self.asn, prefix=prefix, policy=self.name,
                    spec=self.spec, routes=routes,
                )
            ]

        providers = router.adj_rib_in.neighbors_announcing(prefix)
        exported_to = tuple(
            peer
            for peer in router.established_peers()
            if router.adj_rib_out.advertised(peer, prefix) is not None
            and (self.recipients is None or peer in self.recipients)
        )
        if not providers or not exported_to:
            return []

        # Dispatch (cross-check vs single-recipient) happens once per
        # prefix.  A plain Promise template dispatches on itself; a
        # factory is probed with the unfiltered provider set here and
        # re-invoked with each recipient's filtered set below — so a
        # factory must return one promise *family* regardless of the
        # provider set it is given.
        if isinstance(self.spec, Promise):
            template = source = self.spec
        else:
            template, source = self.spec(providers), self.spec
        if isinstance(template, NoLongerThanOthers):
            return self._crosscheck_item(router, prefix, providers, exported_to)

        items: List[WorkItem] = []
        for recipient in exported_to:
            item = single_recipient_item(
                router, self.asn, self.name, prefix, recipient,
                source, variant=self.variant,
                max_length=self.max_length,
            )
            if item is not None:
                items.append(item)
        return items

    def _promise(self, providers: Tuple[str, ...]) -> Promise:
        if isinstance(self.spec, Promise):
            return self.spec
        return self.spec(providers)

    def _crosscheck_item(
        self,
        router: BGPRouter,
        prefix: Prefix,
        providers: Tuple[str, ...],
        exported_to: Tuple[str, ...],
    ) -> List[WorkItem]:
        """Promise 4 audits all recipients in one cross-check session."""
        recipients = tuple(r for r in exported_to if r not in providers)
        if len(recipients) < 2:
            return []  # the cross-check needs >= 2 comparable recipients
        spec = PromiseSpec(
            promise=self._promise(providers),
            prover=self.asn,
            providers=providers,
            recipients=recipients,
            variant=self.variant,
            max_length=self.max_length,
        )
        routes = {
            p: router.adj_rib_in.route_from(p, prefix) for p in providers
        }
        return [
            WorkItem(
                asn=self.asn, prefix=prefix, policy=self.name,
                spec=spec, routes=routes,
            )
        ]
