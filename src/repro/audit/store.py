"""The evidence store: the audit plane's queryable trail.

Every :class:`~repro.audit.events.VerdictEvent` the monitor emits is
recorded here.  The store answers the operator questions a continuous
audit plane exists for — *what happened at AS X*, *who touched this
prefix*, *show me every violation* — and runs the paper's third-party
judge over any slice of the trail on demand (adjudication is lazy: the
judge's RSA work is only spent when an operator actually disputes
something).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from itertools import chain
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bgp.prefix import Prefix
from repro.crypto.keystore import KeyStore
from repro.pvr.evidence import Evidence
from repro.pvr.judge import Judge
from repro.pvr.session import Adjudication

from repro.audit.events import VerdictEvent


class EvidenceStore:
    """Append-only store of verdict events with query and adjudication.

    ``max_events`` bounds memory under sustained churn: when the trail
    exceeds the bound, the *oldest clean* verdicts are evicted first and
    violations are pinned — an operator can always adjudicate every
    recorded violation, however long the service has been up.  (A store
    holding more than ``max_events`` pinned violations exceeds the bound
    rather than discard evidence.)  ``evicted`` counts what was dropped.
    """

    def __init__(
        self,
        keystore: Optional[KeyStore] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.keystore = keystore
        self.max_events = max_events
        self.evicted = 0
        # two segments, both in recording order: ``_pinned`` holds
        # violations that sank past the eviction horizon (kept forever),
        # ``_tail`` everything newer.  Eviction pops from the tail's
        # left, so each event is examined at most once — amortized O(1)
        # per record, however long the service runs
        self._pinned: List[VerdictEvent] = []
        self._tail: deque = deque()
        self._subscribers: List[Callable[[VerdictEvent], None]] = []
        self._evict_subscribers: List[Callable[[VerdictEvent], None]] = []
        self._seq = 0

    # -- ingestion -----------------------------------------------------------

    def next_seq(self) -> int:
        """A store-unique event sequence number.  Allocated here rather
        than per monitor, so several monitors sharing one store (the
        ``store=`` constructor parameter) never emit colliding seqs."""
        self._seq += 1
        return self._seq

    def record(self, event: VerdictEvent) -> VerdictEvent:
        self._tail.append(event)
        self._evict_overflow()
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def _evict_overflow(self) -> None:
        if self.max_events is None:
            return
        while len(self) > self.max_events and self._tail:
            oldest = self._tail[0]
            if oldest.violation_found():
                # pinned: sinks below the eviction horizon for good
                self._pinned.append(self._tail.popleft())
                continue
            evicted = self._tail.popleft()
            self.evicted += 1
            for subscriber in self._evict_subscribers:
                subscriber(evicted)

    def _all(self) -> Iterator[VerdictEvent]:
        return chain(self._pinned, self._tail)

    def absorb(self, events: Iterable[VerdictEvent]) -> List[VerdictEvent]:
        """Fold foreign events (another store's stream) into this one.

        Each event is re-recorded under a fresh local sequence number,
        in the order given — the caller owns the merge order.  This is
        the primitive behind :meth:`merged` and the sharded service's
        per-shard stream folding.
        """
        return [
            self.record(dataclasses.replace(event, seq=self.next_seq()))
            for event in events
        ]

    def adopt(self, event: VerdictEvent) -> VerdictEvent:
        """Re-record ``event`` under its *existing* sequence number —
        the journal-replay primitive.  Unlike :meth:`absorb` (which
        re-seqs), adoption preserves the trail exactly as it was
        recorded, advancing the seq allocator past it so post-recovery
        events continue the original numbering.  Subscribers fire and
        the eviction bound applies, so derived state (the ledger's
        counters, pinned violations, the evicted tally) re-folds to
        what the original run held."""
        if event.seq > self._seq:
            self._seq = event.seq
        return self.record(event)

    def checkpoint_state(self) -> Dict[str, object]:
        """A picklable capture of the full store state (events in
        recording order, the pinned/tail split point, the eviction
        tally and the seq allocator) for :meth:`restore`."""
        return {
            "events": tuple(self._all()),
            "pinned": len(self._pinned),
            "evicted": self.evicted,
            "seq": self._seq,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Silently load a :meth:`checkpoint_state` capture: no
        subscriber or eviction callbacks fire (consumers restore their
        own durable aggregates — the checkpoint pickles the ledger
        whole), and the pinned/tail split is reinstated exactly."""
        events = list(state["events"])
        pinned = int(state["pinned"])
        self._pinned = events[:pinned]
        self._tail = deque(events[pinned:])
        self.evicted = int(state["evicted"])
        self._seq = int(state["seq"])

    @classmethod
    def merged(
        cls,
        stores: Sequence["EvidenceStore"],
        *,
        keystore: Optional[KeyStore] = None,
        key: Optional[Callable[[VerdictEvent], tuple]] = None,
        max_events: Optional[int] = None,
    ) -> "EvidenceStore":
        """One queryable view over several stores' trails.

        Events are interleaved in a deterministic canonical order —
        by default ``(epoch, asn, prefix, policy, round)``, which is
        independent of which shard recorded what first — and re-seq'd
        into the merged store.  Out-of-epoch audits (``epoch=None``:
        probes, :meth:`~repro.audit.monitor.Monitor.audit_once`) sort
        *after* all epoch work at their round position, matching when
        they actually ran.  Used to fold the per-shard stores of
        pair-filtered monitors (see
        :func:`repro.serve.sharding.shard_filter`) and the per-worker
        trails of a :class:`repro.cluster.cluster.Cluster` into a
        single view.
        """
        if key is None:
            key = lambda e: (
                e.epoch if e.epoch is not None else float("inf"),
                e.asn,
                str(e.prefix),
                e.policy,
                e.round,
            )
        merged = cls(
            keystore if keystore is not None else next(
                (s.keystore for s in stores if s.keystore is not None), None
            ),
            max_events=max_events,
        )
        events = [e for store in stores for e in store.events()]
        merged.absorb(sorted(events, key=key))
        return merged

    def subscribe(self, callback: Callable[[VerdictEvent], None]) -> None:
        """Call ``callback`` with every subsequently recorded event."""
        self._subscribers.append(callback)

    def on_evict(self, callback: Callable[[VerdictEvent], None]) -> None:
        """Call ``callback`` with every clean event the ``max_events``
        bound drops, *before* it is gone — a consumer keeping durable
        aggregates (the accountability ledger's per-AS counters) folds
        the event here so eviction never loses information it needs.
        Violations are pinned, never evicted, and never reported."""
        self._evict_subscribers.append(callback)

    # -- queries -------------------------------------------------------------

    def events(self) -> Tuple[VerdictEvent, ...]:
        return tuple(self._all())

    def __len__(self) -> int:
        return len(self._pinned) + len(self._tail)

    def by_asn(self, asn: str) -> Tuple[VerdictEvent, ...]:
        """Every event auditing ``asn`` (as the prover under a policy)."""
        return tuple(e for e in self._all() if e.asn == asn)

    def by_prefix(self, prefix: Prefix) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self._all() if e.prefix == prefix)

    def by_policy(self, policy: str) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self._all() if e.policy == policy)

    def by_epoch(self, epoch: Optional[int]) -> Tuple[VerdictEvent, ...]:
        """Events of one epoch; ``None`` selects out-of-epoch audits
        (:meth:`~repro.audit.monitor.Monitor.audit_once` rounds)."""
        return tuple(e for e in self._all() if e.epoch == epoch)

    def violations(
        self,
        asn: Optional[str] = None,
        prefix: Optional[Prefix] = None,
    ) -> Tuple[VerdictEvent, ...]:
        """Every event whose report flags a violation or equivocation,
        optionally narrowed to one prover AS and/or one prefix (the
        challenge desk's query shape)."""
        return tuple(
            e for e in self._all()
            if e.violation_found()
            and (asn is None or e.asn == asn)
            and (prefix is None or e.prefix == prefix)
        )

    def violation_free(self) -> bool:
        return not self.violations()

    def evidence(self) -> Tuple[Evidence, ...]:
        """All transferable evidence across the recorded trail."""
        found: List[Evidence] = []
        for event in self._all():
            found.extend(event.report.all_evidence())
        return tuple(found)

    # -- adjudication on demand ---------------------------------------------

    def adjudicate(
        self,
        event: Optional[VerdictEvent] = None,
        *,
        judge: Optional[Judge] = None,
    ) -> Dict[int, Adjudication]:
        """Run the judge over ``event`` (default: every stored violation).

        Returns ``{event.seq: Adjudication}``; rulings are also stored on
        each event's report, so repeated queries are free.
        """
        if judge is None:
            if self.keystore is None:
                raise ValueError(
                    "no judge given and the store has no keystore"
                )
            judge = Judge(self.keystore)
        targets = (event,) if event is not None else self.violations()
        rulings: Dict[int, Adjudication] = {}
        for target in targets:
            if target.report.adjudication is None:
                target.report.adjudicate(judge)
            rulings[target.seq] = target.report.adjudication
        return rulings

    # -- summaries -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        events = self.events()
        return {
            "events": len(events),
            "evicted": self.evicted,
            "verified": sum(1 for e in events if not e.reused),
            "reused": sum(1 for e in events if e.reused),
            "violations": len(self.violations()),
            "ases": sorted({e.asn for e in events}),
            "last_epoch": max(
                (e.epoch for e in events if e.epoch is not None), default=0
            ),
        }
