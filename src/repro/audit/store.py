"""The evidence store: the audit plane's queryable trail.

Every :class:`~repro.audit.events.VerdictEvent` the monitor emits is
recorded here.  The store answers the operator questions a continuous
audit plane exists for — *what happened at AS X*, *who touched this
prefix*, *show me every violation* — and runs the paper's third-party
judge over any slice of the trail on demand (adjudication is lazy: the
judge's RSA work is only spent when an operator actually disputes
something).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.crypto.keystore import KeyStore
from repro.pvr.evidence import Evidence
from repro.pvr.judge import Judge
from repro.pvr.session import Adjudication

from repro.audit.events import VerdictEvent


class EvidenceStore:
    """Append-only store of verdict events with query and adjudication."""

    def __init__(self, keystore: Optional[KeyStore] = None) -> None:
        self.keystore = keystore
        self._events: List[VerdictEvent] = []
        self._subscribers: List[Callable[[VerdictEvent], None]] = []
        self._seq = 0

    # -- ingestion -----------------------------------------------------------

    def next_seq(self) -> int:
        """A store-unique event sequence number.  Allocated here rather
        than per monitor, so several monitors sharing one store (the
        ``store=`` constructor parameter) never emit colliding seqs."""
        self._seq += 1
        return self._seq

    def record(self, event: VerdictEvent) -> VerdictEvent:
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[VerdictEvent], None]) -> None:
        """Call ``callback`` with every subsequently recorded event."""
        self._subscribers.append(callback)

    # -- queries -------------------------------------------------------------

    def events(self) -> Tuple[VerdictEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def by_asn(self, asn: str) -> Tuple[VerdictEvent, ...]:
        """Every event auditing ``asn`` (as the prover under a policy)."""
        return tuple(e for e in self._events if e.asn == asn)

    def by_prefix(self, prefix: Prefix) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self._events if e.prefix == prefix)

    def by_policy(self, policy: str) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self._events if e.policy == policy)

    def by_epoch(self, epoch: Optional[int]) -> Tuple[VerdictEvent, ...]:
        """Events of one epoch; ``None`` selects out-of-epoch audits
        (:meth:`~repro.audit.monitor.Monitor.audit_once` rounds)."""
        return tuple(e for e in self._events if e.epoch == epoch)

    def violations(self) -> Tuple[VerdictEvent, ...]:
        """Every event whose report flags a violation or equivocation."""
        return tuple(e for e in self._events if e.violation_found())

    def violation_free(self) -> bool:
        return not self.violations()

    def evidence(self) -> Tuple[Evidence, ...]:
        """All transferable evidence across the recorded trail."""
        found: List[Evidence] = []
        for event in self._events:
            found.extend(event.report.all_evidence())
        return tuple(found)

    # -- adjudication on demand ---------------------------------------------

    def adjudicate(
        self,
        event: Optional[VerdictEvent] = None,
        *,
        judge: Optional[Judge] = None,
    ) -> Dict[int, Adjudication]:
        """Run the judge over ``event`` (default: every stored violation).

        Returns ``{event.seq: Adjudication}``; rulings are also stored on
        each event's report, so repeated queries are free.
        """
        if judge is None:
            if self.keystore is None:
                raise ValueError(
                    "no judge given and the store has no keystore"
                )
            judge = Judge(self.keystore)
        targets = (event,) if event is not None else self.violations()
        rulings: Dict[int, Adjudication] = {}
        for target in targets:
            if target.report.adjudication is None:
                target.report.adjudicate(judge)
            rulings[target.seq] = target.report.adjudication
        return rulings

    # -- summaries -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        events = self._events
        return {
            "events": len(events),
            "verified": sum(1 for e in events if not e.reused),
            "reused": sum(1 for e in events if e.reused),
            "violations": len(self.violations()),
            "ases": sorted({e.asn for e in events}),
            "last_epoch": max(
                (e.epoch for e in events if e.epoch is not None), default=0
            ),
        }
