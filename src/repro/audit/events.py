"""The audit plane's output vocabulary: verdict events and epoch reports.

A :class:`VerdictEvent` is one audited (AS, prefix, policy, recipients)
tuple in one epoch — either freshly verified (``reused=False``, with a
full wire round behind it) or served from the incremental cache
(``reused=True``, zero crypto operations, same report object as the
verification it reuses).  An :class:`EpochReport` aggregates one epoch:
what ran, what was reused, what was deferred by the work bound.

:class:`EpochOutcome` is the **unified epoch-driving result**: the one
shape :meth:`~repro.audit.monitor.Monitor.run_epoch`,
:meth:`~repro.cluster.cluster.Cluster.run_epoch` and the serve layer's
epoch path all return.  It aggregates one *driving step* — one or more
epoch reports (a work bound or a coalesced churn group can span
several), the out-of-epoch probe events that rode along, per-shard
:class:`SliceStats`, and the cluster's respawn count — while forwarding
every :class:`EpochReport` accessor, so code written against the old
single-report shape keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.pvr.session import PromiseSpec, SessionReport

from repro.audit.wire import RoundStats


@dataclass(frozen=True)
class VerdictEvent:
    """One audited tuple's outcome, as emitted on the monitor's stream.

    ``routes`` is the exact Adj-RIB-In slice the session verified (the
    replay inputs); ``report`` is the engine's full session report;
    ``stats`` the wire-round cost accounting (zeroed for reused events).
    ``epoch`` is ``None`` for out-of-epoch audits
    (:meth:`~repro.audit.monitor.Monitor.audit_once`).
    """

    seq: int
    epoch: Optional[int]
    asn: str
    prefix: Optional[Prefix]
    policy: str
    spec: PromiseSpec
    round: int
    routes: Dict[str, object]
    report: SessionReport
    stats: RoundStats
    reused: bool = False

    @property
    def recipients(self) -> Tuple[str, ...]:
        return self.spec.recipients

    def ok(self) -> bool:
        return not self.violation_found()

    def violation_found(self) -> bool:
        return self.report.violation_found()

    def detecting_parties(self) -> Tuple[str, ...]:
        return self.report.detecting_parties()


@dataclass
class EpochReport:
    """What one verification epoch did.

    ``verified`` events ran a full wire round; ``reused`` events were
    served from the incremental cache; ``deferred`` (AS, prefix) pairs
    exceeded the epoch's work bound and stay queued for the next epoch.
    """

    epoch: int
    events: List[VerdictEvent] = field(default_factory=list)
    deferred: List[Tuple[str, Prefix]] = field(default_factory=list)
    signatures: int = 0
    verifications: int = 0
    wall_seconds: float = 0.0

    @property
    def verified(self) -> int:
        return sum(1 for e in self.events if not e.reused)

    @property
    def reused(self) -> int:
        return sum(1 for e in self.events if e.reused)

    def violations(self) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self.events if e.violation_found())

    def violation_free(self) -> bool:
        return not self.violations()


def reused_event(
    previous: VerdictEvent, *, seq: int, epoch: int
) -> VerdictEvent:
    """Build the cache-served re-emission of ``previous`` for ``epoch``:
    same report, same round, zero crypto operations.  Shared by
    :meth:`~repro.audit.monitor.Monitor.emit_reused` and the cluster
    coordinator (which re-emits from its cache mirror when the owning
    worker died mid-epoch)."""
    return VerdictEvent(
        seq=seq,
        epoch=epoch,
        asn=previous.asn,
        prefix=previous.prefix,
        policy=previous.policy,
        spec=previous.spec,
        round=previous.round,
        routes=dict(previous.routes),
        report=previous.report,
        stats=RoundStats(
            prover=previous.spec.prover,
            recipient=previous.spec.recipient,
            providers=previous.spec.providers,
            recipients=previous.spec.recipients,
            violations=previous.stats.violations,
            equivocations=previous.stats.equivocations,
            reused=True,
        ),
        reused=True,
    )


@dataclass
class SliceStats:
    """One worker's (or shard's) share of one epoch's execution."""

    worker: int
    epoch: int
    events: int
    fresh: int
    reused: int
    #: positions this worker re-executed on behalf of a dead worker
    backfilled: int = 0
    wall_seconds: float = 0.0


@dataclass
class EpochOutcome:
    """What one epoch-driving step produced, across every layer.

    ``reports`` are the epochs the step ran (a work bound or a coalesced
    churn group can span several); ``probe_events`` the out-of-epoch
    audits that rode along; ``slices`` the per-worker/shard execution
    stats; ``respawns`` how many dead workers the cluster replaced while
    serving the step; ``coalesced`` how many churn requests shared it.

    Every :class:`EpochReport` accessor is forwarded (``events``,
    ``verified``, ``reused``, ``deferred``, ``signatures``,
    ``verifications``, ``wall_seconds``, ``violations()``,
    ``violation_free()``), so a single-epoch outcome reads exactly like
    the report it wraps.  The legacy shapes remain as deprecated
    properties: ``report`` (the old ``Monitor.run_epoch`` return) and
    ``event_count``/``violation_count`` (the old cluster/serve outcome's
    integer ``events``/``violations``).
    """

    reports: List[EpochReport] = field(default_factory=list)
    probe_events: List[VerdictEvent] = field(default_factory=list)
    slices: List[SliceStats] = field(default_factory=list)
    respawns: int = 0
    coalesced: int = 1

    # -- canonical accessors (EpochReport-compatible) ------------------------

    @property
    def epoch(self) -> Optional[int]:
        """The first epoch id this outcome covers (``None`` if empty)."""
        return self.reports[0].epoch if self.reports else None

    @property
    def epochs(self) -> Tuple[int, ...]:
        return tuple(r.epoch for r in self.reports)

    @property
    def events(self) -> List[VerdictEvent]:
        """Every epoch event, in plan order across the reports (probe
        events are separate — see :attr:`probe_events`)."""
        return [e for r in self.reports for e in r.events]

    @property
    def verified(self) -> int:
        return sum(r.verified for r in self.reports)

    @property
    def reused(self) -> int:
        return sum(r.reused for r in self.reports)

    @property
    def deferred(self) -> List[Tuple[str, Prefix]]:
        """The final report's deferred pairs — what is still queued
        after this driving step (earlier reports' deferrals were
        consumed by later ones)."""
        return list(self.reports[-1].deferred) if self.reports else []

    @property
    def signatures(self) -> int:
        return sum(r.signatures for r in self.reports)

    @property
    def verifications(self) -> int:
        return sum(r.verifications for r in self.reports)

    @property
    def messages(self) -> int:
        """Transport messages across every epoch event's round stats."""
        return sum(e.stats.messages for e in self.events)

    @property
    def bytes(self) -> int:
        """Transport bytes across every epoch event's round stats."""
        return sum(e.stats.bytes for e in self.events)

    @property
    def wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.reports)

    def violations(self) -> Tuple[VerdictEvent, ...]:
        """Every violating event — epoch events and probe events."""
        return tuple(
            e
            for e in (*self.events, *self.probe_events)
            if e.violation_found()
        )

    def violation_free(self) -> bool:
        return not self.violations()

    # -- deprecated legacy shapes --------------------------------------------

    @property
    def report(self) -> EpochReport:
        """Deprecated: the old single-report ``Monitor.run_epoch`` shape.
        Valid only for single-epoch outcomes."""
        if len(self.reports) != 1:
            raise ValueError(
                f"outcome spans {len(self.reports)} epochs; "
                f"use .reports"
            )
        return self.reports[0]

    @property
    def event_count(self) -> int:
        """Deprecated: the old cluster outcome's integer ``events``."""
        return sum(len(r.events) for r in self.reports)

    @property
    def violation_count(self) -> int:
        """Deprecated: the old cluster outcome's integer ``violations``."""
        return len(self.violations())

    @classmethod
    def single(cls, report: EpochReport) -> "EpochOutcome":
        """Wrap one serial epoch report (the Monitor path)."""
        return cls(reports=[report])
