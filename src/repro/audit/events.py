"""The audit plane's output vocabulary: verdict events and epoch reports.

A :class:`VerdictEvent` is one audited (AS, prefix, policy, recipients)
tuple in one epoch — either freshly verified (``reused=False``, with a
full wire round behind it) or served from the incremental cache
(``reused=True``, zero crypto operations, same report object as the
verification it reuses).  An :class:`EpochReport` aggregates one epoch:
what ran, what was reused, what was deferred by the work bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.pvr.session import PromiseSpec, SessionReport

from repro.audit.wire import RoundStats


@dataclass(frozen=True)
class VerdictEvent:
    """One audited tuple's outcome, as emitted on the monitor's stream.

    ``routes`` is the exact Adj-RIB-In slice the session verified (the
    replay inputs); ``report`` is the engine's full session report;
    ``stats`` the wire-round cost accounting (zeroed for reused events).
    ``epoch`` is ``None`` for out-of-epoch audits
    (:meth:`~repro.audit.monitor.Monitor.audit_once`).
    """

    seq: int
    epoch: Optional[int]
    asn: str
    prefix: Optional[Prefix]
    policy: str
    spec: PromiseSpec
    round: int
    routes: Dict[str, object]
    report: SessionReport
    stats: RoundStats
    reused: bool = False

    @property
    def recipients(self) -> Tuple[str, ...]:
        return self.spec.recipients

    def ok(self) -> bool:
        return not self.violation_found()

    def violation_found(self) -> bool:
        return self.report.violation_found()

    def detecting_parties(self) -> Tuple[str, ...]:
        return self.report.detecting_parties()


@dataclass
class EpochReport:
    """What one verification epoch did.

    ``verified`` events ran a full wire round; ``reused`` events were
    served from the incremental cache; ``deferred`` (AS, prefix) pairs
    exceeded the epoch's work bound and stay queued for the next epoch.
    """

    epoch: int
    events: List[VerdictEvent] = field(default_factory=list)
    deferred: List[Tuple[str, Prefix]] = field(default_factory=list)
    signatures: int = 0
    verifications: int = 0
    wall_seconds: float = 0.0

    @property
    def verified(self) -> int:
        return sum(1 for e in self.events if not e.reused)

    @property
    def reused(self) -> int:
        return sum(1 for e in self.events if e.reused)

    def violations(self) -> Tuple[VerdictEvent, ...]:
        return tuple(e for e in self.events if e.violation_found())

    def violation_free(self) -> bool:
        return not self.violations()
