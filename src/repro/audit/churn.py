"""The churn-scenario driver: registered workloads through a Monitor.

Churn scenarios are registered in :mod:`repro.pvr.scenarios`
(``register_churn``) as pure data — a network builder, promise
policies, a script of churn steps.  :func:`run_churn` is the execution
engine shared by the ``python -m repro.audit`` CLI, the ``audit-churn``
benchmark experiments and the tests: it attaches a monitor, audits the
converged initial state, then replays the churn script with one
verification epoch after each step (and a final full-resync sweep that
measures steady-state cache reuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.crypto.keystore import KeyStore

from repro.audit.events import EpochReport
from repro.audit.monitor import Monitor


@dataclass
class ChurnRunResult:
    """Everything observable after one churn-scenario run."""

    scenario: str
    monitor: Monitor
    epochs: List[EpochReport] = field(default_factory=list)

    @property
    def events(self) -> int:
        return sum(len(e.events) for e in self.epochs)

    @property
    def verified(self) -> int:
        return sum(e.verified for e in self.epochs)

    @property
    def reused(self) -> int:
        return sum(e.reused for e in self.epochs)

    @property
    def signatures(self) -> int:
        return sum(e.signatures for e in self.epochs)

    @property
    def verifications(self) -> int:
        return sum(e.verifications for e in self.epochs)

    def reuse_ratio(self) -> float:
        return self.reused / self.events if self.events else 0.0

    def violation_free(self) -> bool:
        return self.monitor.evidence.violation_free()

    def summary(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "epochs": len(self.epochs),
            "events": self.events,
            "verified": self.verified,
            "reused": self.reused,
            "reuse_ratio": self.reuse_ratio(),
            "signatures": self.signatures,
            "verifications": self.verifications,
            "violations": len(self.monitor.evidence.violations()),
            "pending": len(self.monitor.pending()),
        }


def run_churn(
    scenario: Union[str, object],
    keystore: Optional[KeyStore] = None,
    *,
    key_bits: int = 512,
    rng_seed: object = 2011,
    backend: object = None,
    max_work: Optional[int] = None,
) -> ChurnRunResult:
    """Run a churn scenario (by name or object) end to end.

    Epoch schedule: one epoch for the converged initial state, one after
    each churn step, and — when the scenario asks for it — one full
    resync sweep at the end (the steady-state reuse measurement).
    """
    from repro.pvr import scenarios as scenario_registry

    if isinstance(scenario, str):
        scenario = scenario_registry.get_churn(scenario)
    network = scenario.build()
    monitor = Monitor(
        keystore if keystore is not None else KeyStore(
            seed=rng_seed, key_bits=key_bits
        ),
        backend=backend,
        max_work_per_epoch=max_work,
        rng_seed=rng_seed,
    ).attach(network)
    for asn, spec, options in scenario.policies:
        monitor.policy(asn, spec, **options)

    result = ChurnRunResult(scenario=scenario.name, monitor=monitor)
    result.epochs.append(monitor.run_epoch())
    for step in scenario.churn:
        step(network)
        network.run_to_quiescence()
        result.epochs.append(monitor.run_epoch())
    if scenario.resync_after:
        monitor.resync()
        result.epochs.append(monitor.run_epoch())
    # a work bound may have deferred pairs past the scripted epochs;
    # drain them so every registered policy is audited before the run
    # reports its verdict (nothing in the tail may go unchecked)
    result.epochs.extend(monitor.run_until_idle())
    return result
