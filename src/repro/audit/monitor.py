"""The continuous audit monitor: churn in, verdict events out.

:class:`Monitor` is the audit plane's public API.  One monitor attaches
to one running :class:`~repro.bgp.network.BGPNetwork`; promise policies
are registered per AS; every BGP decision change at a monitored AS marks
its (AS, prefix) tuple *dirty*; and :meth:`Monitor.run_epoch` coalesces
the accumulated churn into one verification epoch:

* **bounded work** — an epoch freshly verifies at most ``max_work``
  tuples; overflow stays queued and the next epoch resumes exactly
  where this one stopped (already-audited tuples of a deferred pair
  are neither revisited nor re-emitted, so deferral never repeats
  work — it only spreads it across epochs);
* **incremental reuse** — a tuple whose contract and announced inputs
  are unchanged since its last verification is served from the cache
  with *zero* signature/verification operations, the paper's answer to
  "performed for every single BGP update" at line rate;
* **deterministic replay** — commitment nonces derive from
  ``(rng_seed, round)``, so any emitted event can be reproduced by a
  one-shot :class:`~repro.pvr.engine.VerificationSession` with the same
  spec, round, inputs and randomness, byte for byte.

Usage::

    monitor = Monitor(keystore).attach(network)
    monitor.policy("A", ShortestRoute(), recipients=("B",))
    ... BGP churn ...
    network.run_to_quiescence()
    epoch = monitor.run_epoch()
    monitor.evidence.violations()

Epochs must run while the network is quiescent: verification rounds
share the simulated links with BGP traffic, so they cannot execute
inside the BGP event loop (the same constraint the legacy
``PVRDeployment.run_pending`` had).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.network import BGPNetwork
from repro.bgp.prefix import Prefix
from repro.crypto.keystore import KeyStore
from repro.promises.spec import Promise, ShortestRoute
from repro.pvr.minimum import DEFAULT_MAX_LENGTH
from repro.pvr.session import PromiseSpec, SessionReport

from repro.audit.choosers import ChooserRef, resolve as resolve_chooser
from repro.audit.events import (
    EpochOutcome,
    EpochReport,
    VerdictEvent,
    reused_event,
)
from repro.audit.policy import (
    AuditPolicy,
    SpecSource,
    WorkItem,
    single_recipient_item,
)
from repro.audit.store import EvidenceStore
from repro.audit.wire import RoundStats, round_randomness, run_wire_round
from repro.obs.trace import TraceContext

#: cache key: one (AS, prefix, policy, recipients) audited tuple
TupleKey = Tuple[str, Optional[Prefix], str, Tuple[str, ...]]


@dataclass
class PlannedItem:
    """One scheduled tuple of an epoch plan.

    Fresh work carries a pre-allocated ``round`` (so an external
    executor — the sharded service — reproduces exactly the nonce
    stream a serial :meth:`Monitor.run_epoch` would have used); a cache
    hit instead carries ``previous``, the verdict event it re-emits.
    """

    item: WorkItem
    chooser: ChooserRef
    fingerprint: Tuple
    round: Optional[int] = None
    previous: Optional[VerdictEvent] = None

    @property
    def fresh(self) -> bool:
        return self.previous is None


@dataclass
class EpochPlan:
    """The deterministic schedule of one epoch, before any crypto runs.

    ``entries`` are in canonical scan order (dirty pairs in churn order,
    policies in registration order) — the order round numbers and event
    sequence numbers are allocated in, whatever executes the plan.
    """

    epoch: int
    entries: List[PlannedItem] = field(default_factory=list)
    deferred: List[Tuple[str, Prefix]] = field(default_factory=list)

    def fresh_entries(self) -> List[Tuple[int, PlannedItem]]:
        """(plan position, entry) for every entry needing verification."""
        return [(i, e) for i, e in enumerate(self.entries) if e.fresh]


class MonitorError(RuntimeError):
    """The monitor was used before :meth:`Monitor.attach`, or a policy
    could not be materialized."""


def _check_work_bound(max_work: Optional[int]) -> Optional[int]:
    """A work bound of zero (or less) would make every epoch a no-op
    and livelock ``run_until_idle`` — reject it up front."""
    if max_work is not None and max_work < 1:
        raise ValueError(f"work bound must be >= 1, got {max_work}")
    return max_work


class Monitor:
    """A long-lived, policy-driven verification monitor.

    ``backend`` is passed through to every
    :class:`~repro.pvr.engine.VerificationSession` (the PR-2 execution
    layer: ``"thread"``, ``"process:4"``, or a backend instance);
    ``max_work_per_epoch`` bounds fresh verifications per epoch
    (``None`` = unbounded); ``rng_seed`` roots the deterministic
    commitment-nonce stream.

    ``intensity`` is the optional trust-aware sampling policy
    (:class:`~repro.ledger.feedback.VerificationIntensity`, duck-typed:
    ``begin_epoch(epoch)`` + ``should_verify(asn, prefix, policy,
    recipients, epoch=)``).  :meth:`plan_epoch` consults it per fresh
    tuple: a sampled-out tuple allocates no round, emits no event and
    spends no crypto this epoch (it is treated as audited for the churn
    burst).  Cache reuse is free and therefore never sampled away.  At
    sampling rate 1.0 the hook is a strict identity — the plan and the
    evidence trail are byte-for-byte those of a monitor with no
    intensity installed.
    """

    def __init__(
        self,
        keystore: Optional[KeyStore] = None,
        *,
        backend: object = None,
        max_work_per_epoch: Optional[int] = None,
        rng_seed: object = 2011,
        store: Optional[EvidenceStore] = None,
        pair_filter: Optional[Callable[[str, Prefix], bool]] = None,
        intensity: object = None,
        tracer: Optional[TraceContext] = None,
    ) -> None:
        self.keystore = keystore if keystore is not None else KeyStore(
            seed=rng_seed, key_bits=512
        )
        self.backend = backend
        self.max_work_per_epoch = _check_work_bound(max_work_per_epoch)
        self.rng_seed = rng_seed
        # shard-aware construction: a monitor given a pair_filter owns
        # only the (AS, prefix) pairs its filter accepts — churn outside
        # its shard of the policy space is ignored at mark() time, so N
        # filtered monitors over one network partition the audit load
        # (see repro.serve.sharding.shard_filter)
        self.pair_filter = pair_filter
        self.intensity = intensity
        # the obs seam: hosts (serve service, cluster worker) hand the
        # monitor their own context so plan/epoch spans share one trace
        self.tracer = tracer if tracer is not None else TraceContext("m")
        self.network: Optional[BGPNetwork] = None
        self._detached = False
        self.evidence = store if store is not None else EvidenceStore(
            self.keystore
        )
        self.epoch = 0
        self._round_counter = 0
        self._policy_counter = 0
        self._policies: List[AuditPolicy] = []
        self._hooked: Dict[str, Tuple[Callable, Callable]] = {}
        # dirty pair -> None (fresh churn: audit every tuple) or the set
        # of cache keys already audited this burst (a deferred pair
        # resumes where it left off instead of replaying)
        self._dirty: Dict[Tuple[str, Prefix], Optional[set]] = {}
        self._cache: Dict[TupleKey, Tuple[Tuple, VerdictEvent]] = {}

    # -- wiring --------------------------------------------------------------

    def attach(self, network: BGPNetwork) -> "Monitor":
        """Bind this monitor to ``network`` and register every AS's key."""
        if self.network is not None:
            raise MonitorError("monitor is already attached")
        if self._detached:
            raise MonitorError(
                "a detached monitor cannot re-attach; build a fresh one"
            )
        self.network = network
        for asn in network.as_names():
            self.keystore.register(asn)
        return self

    def _require_network(self) -> BGPNetwork:
        if self.network is None:
            raise MonitorError("monitor is not attached to a network")
        return self.network

    def policy(
        self,
        asn: str,
        spec: SpecSource,
        *,
        recipients: Optional[Tuple[str, ...]] = None,
        prefixes: Optional[Tuple[Prefix, ...]] = None,
        name: Optional[str] = None,
        variant: str = "auto",
        max_length: int = DEFAULT_MAX_LENGTH,
        chooser: ChooserRef = None,
        audit_now: bool = True,
    ) -> AuditPolicy:
        """Register a promise policy for ``asn`` and arm its churn hook.

        ``spec`` is a promise template, a ``providers -> Promise``
        factory, or a full :class:`~repro.pvr.session.PromiseSpec`;
        ``recipients`` restricts the neighbors covered (per-neighbor
        overrides).  ``chooser`` may be a live callable or a name from
        the :mod:`repro.audit.choosers` registry — named choosers
        pickle, so the policy can run on shard and cluster workers
        instead of the monitor's local wire path.  With ``audit_now``
        (the default) every prefix the AS currently routes is marked
        dirty so the first epoch audits the present state;
        ``audit_now=False`` only arms the hook, so epochs cover
        decisions made from now on.
        """
        network = self._require_network()
        router = network.router(asn)
        if name is None:
            # a monotonic counter, so names (the evidence-store and
            # cache keys) stay unique across remove_policy()
            name = f"{asn}/{self._describe(spec)}#{self._policy_counter}"
        elif any(p.name == name for p in self._policies):
            # duplicate names would share one incremental-cache slot and
            # conflate evidence queries — refuse rather than thrash
            raise ValueError(f"policy name {name!r} is already registered")
        self._policy_counter += 1
        policy = AuditPolicy(
            name=name,
            asn=asn,
            spec=spec,
            recipients=tuple(recipients) if recipients is not None else None,
            prefixes=tuple(prefixes) if prefixes is not None else None,
            variant=variant,
            max_length=max_length,
            chooser=chooser,
        )
        self._policies.append(policy)
        if asn not in self._hooked:
            def on_decision(prefix, candidates, best, asn=asn):
                self.mark(asn, prefix)

            def on_resync(peer, prefixes, asn=asn):
                # a (re-)established session resends the full table: the
                # export set toward that peer changed without any local
                # decision, so those exports must be re-audited too
                for prefix in prefixes:
                    self.mark(asn, prefix)

            router.add_decision_hook(on_decision)
            router.add_resync_hook(on_resync)
            self._hooked[asn] = (on_decision, on_resync)
        if audit_now:
            for prefix in self._known_prefixes(asn):
                if policy.covers(prefix):
                    self.mark(asn, prefix)
        return policy

    @staticmethod
    def _describe(spec: SpecSource) -> str:
        if isinstance(spec, PromiseSpec):
            return spec.promise.describe()
        if isinstance(spec, Promise):
            return spec.describe()
        return getattr(spec, "__name__", "factory")

    def policies(self) -> Tuple[AuditPolicy, ...]:
        return tuple(self._policies)

    def remove_policy(self, policy: AuditPolicy) -> None:
        """Unregister a policy.  Its churn hook stays armed (other
        policies on the AS may still need it); its cache entries are
        keyed by policy name and simply go cold."""
        self._policies.remove(policy)

    def detach(self) -> None:
        """Unhook this monitor from its network: every decision hook it
        registered is removed, so the network stops referencing (and
        waking) the monitor.  Policies, the cache and the evidence store
        survive for offline queries; re-attach is not supported — build
        a fresh monitor instead."""
        if self.network is None:
            return
        for asn, (on_decision, on_resync) in self._hooked.items():
            router = self.network.router(asn)
            router.remove_decision_hook(on_decision)
            router.remove_resync_hook(on_resync)
        self._hooked.clear()
        self.network = None
        self._detached = True

    def subscribe(self, callback: Callable[[VerdictEvent], None]) -> None:
        """Receive every verdict event as it is emitted."""
        self.evidence.subscribe(callback)

    @property
    def events(self) -> Tuple[VerdictEvent, ...]:
        return self.evidence.events()

    # -- churn tracking ------------------------------------------------------

    def mark(self, asn: str, prefix: Prefix) -> None:
        """Mark (``asn``, ``prefix``) dirty for the next epoch.  Fresh
        churn resets any resume state a deferred pair carried: every
        tuple of the pair is audited again.  A pair outside the
        monitor's ``pair_filter`` (its shard) is silently ignored."""
        if self.pair_filter is not None and not self.pair_filter(asn, prefix):
            return
        self._dirty[(asn, prefix)] = None

    def resync(self) -> int:
        """Mark every (policy AS, known prefix) pair dirty — a full
        re-audit sweep.  With unchanged inputs the sweep is served
        entirely from the incremental cache.  Returns the pair count."""
        marked = 0
        for asn in dict.fromkeys(p.asn for p in self._policies):
            for prefix in self._known_prefixes(asn):
                self.mark(asn, prefix)
                marked += 1
        return marked

    def pending(self) -> Tuple[Tuple[str, Prefix], ...]:
        """The dirty (AS, prefix) pairs awaiting the next epoch."""
        return tuple(self._dirty)

    def _known_prefixes(self, asn: str) -> Tuple[Prefix, ...]:
        router = self._require_network().router(asn)
        seen = dict.fromkeys(router.adj_rib_in.prefixes())
        seen.update(dict.fromkeys(router.loc_rib.prefixes()))
        return tuple(seen)

    # -- the epoch scheduler -------------------------------------------------

    def run_epoch(self, max_work: Optional[int] = None) -> EpochOutcome:
        """Coalesce accumulated churn into one verification epoch.

        At most ``max_work`` (default: the monitor's
        ``max_work_per_epoch``) tuples are *freshly* verified; cache
        reuse is free and never counts against the bound.  Work beyond
        the bound is deferred to the next epoch, which resumes exactly
        where this one stopped — already-audited tuples of a deferred
        pair are not revisited (and not re-emitted) unless new churn
        marks the pair again.

        Returns the unified :class:`~repro.audit.events.EpochOutcome`
        (one report; every :class:`~repro.audit.events.EpochReport`
        accessor is forwarded, so existing callers read it unchanged).
        """
        return EpochOutcome.single(
            self.execute_plan(self.plan_epoch(max_work))
        )

    def plan_epoch(self, max_work: Optional[int] = None) -> EpochPlan:
        """Turn the accumulated churn into a deterministic epoch plan.

        Planning does everything but the crypto: the dirty-pair scan,
        work-item materialization, the cache-reuse decision per tuple,
        round-number allocation for fresh work, and work-bound deferral
        — all state the scheduler owns is updated here.  The plan can
        then be executed serially (:meth:`execute_plan`) or fanned out
        across shard workers (:mod:`repro.serve`): both record through
        the same code path, so verdicts, rounds and sequence numbers
        cannot depend on who executes.
        """
        network = self._require_network()
        budget = (
            _check_work_bound(max_work)
            if max_work is not None
            else self.max_work_per_epoch
        )
        self.epoch += 1
        plan_span = self.tracer.begin(
            "plan", component="audit", epoch=self.epoch
        )
        if self.intensity is not None:
            # epoch boundary: the intensity settles its ledger (when it
            # owns one) so sampling sees trust as of epochs < this one —
            # the same snapshot every co-planning cluster replica gets
            self.intensity.begin_epoch(self.epoch)
        plan = EpochPlan(epoch=self.epoch)

        queue = list(self._dirty.items())
        self._dirty.clear()
        deferred: Dict[Tuple[str, Prefix], Optional[set]] = {}
        fresh = 0  # budget bookkeeping, O(1) per item
        for index, ((asn, prefix), resumed) in enumerate(queue):
            router = network.router(asn)
            done = set() if resumed is None else resumed
            exhausted = False
            for policy in self._policies:
                if policy.asn != asn or not policy.covers(prefix):
                    continue
                for item in policy.work_items(router, prefix):
                    key = self._cache_key(item)
                    if key in done:
                        continue  # audited earlier in this churn burst
                    fingerprint = (item.fingerprint(), policy.chooser)
                    cached = self._cache.get(key)
                    reusable = cached is not None and cached[0] == fingerprint
                    if (
                        not reusable
                        and self.intensity is not None
                        and not self.intensity.should_verify(
                            item.asn,
                            item.prefix,
                            item.policy,
                            item.spec.recipients,
                            epoch=self.epoch,
                        )
                    ):
                        # trust-sampled out: no round, no entry, no
                        # budget spent — but done for this churn burst
                        done.add(key)
                        continue
                    if budget is not None and fresh >= budget and not reusable:
                        exhausted = True
                        break
                    planned = PlannedItem(
                        item=item,
                        chooser=policy.chooser,
                        fingerprint=fingerprint,
                    )
                    if reusable:
                        planned.previous = cached[1]
                    else:
                        planned.round = self._next_round()
                        fresh += 1
                    done.add(key)
                    plan.entries.append(planned)
                if exhausted:
                    break
            if exhausted:
                # the current pair resumes after its completed tuples;
                # every later pair waits untouched — deferral never
                # repeats or re-emits work
                deferred[(asn, prefix)] = done
                for pair, state in queue[index + 1:]:
                    deferred[pair] = state
                break
        if deferred:
            plan.deferred.extend(deferred)
            # deferred work re-enters the queue ahead of new churn (a
            # fresh mark() during the epoch overrides its resume state)
            deferred.update(self._dirty)
            self._dirty = deferred
        plan_span.attrs["entries"] = len(plan.entries)
        plan_span.attrs["deferred"] = len(plan.deferred)
        self.tracer.finish(plan_span)
        return plan

    def execute_plan(self, plan: EpochPlan) -> EpochReport:
        """Execute a plan serially, in order, over the live network."""
        report = EpochReport(epoch=plan.epoch)
        report.deferred.extend(plan.deferred)
        sign0 = self.keystore.sign_count
        verify0 = self.keystore.verify_count
        span = self.tracer.begin(
            "execute", component="audit", epoch=plan.epoch,
            entries=len(plan.entries),
        )
        try:
            for entry in plan.entries:
                if entry.fresh:
                    session_report, stats = self.run_planned_round(entry)
                    event = self.record_planned(
                        entry, session_report, stats, epoch=plan.epoch
                    )
                else:
                    event = self.emit_reused(entry, epoch=plan.epoch)
                report.events.append(event)
        except BaseException:
            self.tracer.finish(span, status="error")
            raise
        report.signatures = self.keystore.sign_count - sign0
        report.verifications = self.keystore.verify_count - verify0
        self.tracer.finish(span)
        report.wall_seconds = span.duration
        return report

    def run_until_idle(self, max_epochs: int = 64) -> List[EpochOutcome]:
        """Run epochs until the dirty queue drains (work bounds can make
        one churn burst span several epochs)."""
        outcomes = []
        while self._dirty:
            if len(outcomes) >= max_epochs:
                raise MonitorError(
                    f"dirty queue did not drain within {max_epochs} epochs"
                )
            outcomes.append(self.run_epoch())
        return outcomes

    # -- verification --------------------------------------------------------

    def _next_round(self) -> int:
        """A fresh protocol round number (rounds are never reused, so
        replayed material from an earlier round fails signature checks)."""
        self._round_counter += 1
        return self._round_counter

    def _cache_key(self, item: WorkItem) -> TupleKey:
        return (item.asn, item.prefix, item.policy, item.spec.recipients)

    def _absorb(self, entry: PlannedItem, event: VerdictEvent) -> None:
        """Fold a freshly executed plan entry into the reuse cache."""
        key = self._cache_key(entry.item)
        if event.ok():
            self._cache[key] = (entry.fingerprint, event)
        else:
            # never serve a violation from the cache: a verdict that
            # failed (a cheat, or a dropped/tampered wire message) is not
            # reusable — the next audit of this tuple (further churn, or
            # an explicit resync()) re-proves it fresh, so a transient
            # transport fault cannot poison the incremental path
            self._cache.pop(key, None)

    def emit_reused(self, entry: PlannedItem, *, epoch: int) -> VerdictEvent:
        """Serve an unchanged plan entry from the cache: same report,
        same round, zero crypto operations."""
        return self.evidence.record(
            reused_event(
                entry.previous,
                seq=self.evidence.next_seq(),
                epoch=epoch,
            )
        )

    def record_planned(
        self,
        entry: PlannedItem,
        report: SessionReport,
        stats: RoundStats,
        *,
        epoch: int,
    ) -> VerdictEvent:
        """Record one externally executed fresh plan entry.

        The sharded service's merger calls this in plan order, so the
        evidence store's sequence numbers, the reuse cache and the
        violation-never-cached rule behave exactly as a serial
        :meth:`execute_plan` — the sharding layer cannot invent its own
        recording semantics.
        """
        item = entry.item
        event = VerdictEvent(
            seq=self.evidence.next_seq(),
            epoch=epoch,
            asn=item.asn,
            prefix=item.prefix,
            policy=item.policy,
            spec=item.spec,
            round=entry.round,
            routes=dict(item.routes),
            report=report,
            stats=stats,
        )
        self.evidence.record(event)
        self._absorb(entry, event)
        return event

    def run_planned_round(
        self, entry: PlannedItem
    ) -> Tuple[SessionReport, RoundStats]:
        """One fresh plan entry's wire round, *without* recording.

        The sharded service uses this for entries it cannot ship to a
        worker (custom-chooser policies); the merger records the result
        in plan order alongside the shard outcomes."""
        network = self._require_network()
        return run_wire_round(
            network,
            self.keystore,
            entry.item.spec,
            entry.item.routes,
            round=entry.round,
            chooser=resolve_chooser(entry.chooser),
            backend=self.backend,
            random_bytes=round_randomness(self.rng_seed, entry.round),
        )

    def _verify_round(
        self,
        item: WorkItem,
        round_no: int,
        *,
        prover: object = None,
        chooser: ChooserRef = None,
        epoch: Optional[int] = None,
    ) -> VerdictEvent:
        network = self._require_network()
        report, stats = run_wire_round(
            network,
            self.keystore,
            item.spec,
            item.routes,
            round=round_no,
            prover=prover,
            chooser=resolve_chooser(chooser),
            backend=self.backend,
            random_bytes=round_randomness(self.rng_seed, round_no),
        )
        event = VerdictEvent(
            seq=self.evidence.next_seq(),
            epoch=epoch,
            asn=item.asn,
            prefix=item.prefix,
            policy=item.policy,
            spec=item.spec,
            round=round_no,
            routes=dict(item.routes),
            report=report,
            stats=stats,
        )
        return self.evidence.record(event)

    def _verify(
        self,
        item: WorkItem,
        *,
        prover: object = None,
        chooser: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> VerdictEvent:
        return self._verify_round(
            item,
            self._next_round(),
            prover=prover,
            chooser=chooser,
            epoch=epoch,
        )

    # -- one-shot audits -----------------------------------------------------

    def audit_once(
        self,
        asn: str,
        prefix: Prefix,
        recipient: Optional[str] = None,
        *,
        promise: Optional[Promise] = None,
        spec: Optional[PromiseSpec] = None,
        prover: object = None,
        chooser: Optional[Callable] = None,
        max_length: int = DEFAULT_MAX_LENGTH,
    ) -> VerdictEvent:
        """Run one wire round right now, outside the epoch scheduler.

        This is the legacy ``monitored_round`` path (and the adversary
        gallery's): ``prover`` injects a Byzantine prover, so the result
        is recorded in the evidence store but never cached, and — being
        outside the epoch scheduler — the event carries ``epoch=None``
        so per-epoch queries stay consistent.  ``spec``
        overrides materialization entirely; otherwise ``promise``
        (default :class:`~repro.promises.spec.ShortestRoute`) is
        materialized against the AS's current RIBs toward ``recipient``.
        """
        network = self._require_network()
        router = network.router(asn)
        if spec is not None:
            item = WorkItem(
                asn=asn, prefix=prefix, policy="audit-once", spec=spec,
                routes={
                    p: router.adj_rib_in.route_from(p, prefix)
                    for p in spec.providers
                },
            )
        else:
            if recipient is None:
                raise ValueError("audit_once needs a recipient or a spec")
            item = single_recipient_item(
                router, asn, "audit-once", prefix, recipient,
                promise if promise is not None else ShortestRoute(),
                max_length=max_length,
            )
            if item is None:
                raise ValueError(
                    f"{asn} has no providers for {prefix} "
                    f"(besides the recipient)"
                )
        return self._verify(item, prover=prover, chooser=chooser)
