"""The audit plane: policy-driven *continuous* promise verification.

The paper's operational claim (Section 3.1) is that promise verification
"would have to be performed for every single BGP update" — PVR is a
long-lived audit plane over a running network, not a one-shot
experiment.  This package is that plane:

* :class:`~repro.audit.monitor.Monitor` — attach to a
  :class:`~repro.bgp.network.BGPNetwork`, register promise *policies*
  per AS (any :class:`~repro.pvr.session.PromiseSpec` variant,
  per-neighbor overrides), and run verification *epochs* that coalesce
  BGP churn into bounded batches of work;
* the **incremental path** — an (AS, prefix, promise, recipient) tuple
  whose inputs are unchanged since its last verification is *reused*
  (zero crypto operations) instead of re-proved;
* :class:`~repro.audit.events.VerdictEvent` — the monitor's output
  stream, one event per audited tuple per epoch;
* :class:`~repro.audit.store.EvidenceStore` — the queryable evidence
  trail (``by_asn``, ``by_prefix``, ``violations()``, judge
  adjudication on demand);
* :mod:`~repro.audit.wire` — the transport-coupled round executor every
  verification shares with the legacy
  :class:`~repro.pvr.deployment.PVRDeployment` façade.

Run ``python -m repro.audit`` for the CLI over the registered churn
scenarios.
"""

from repro.audit import choosers
from repro.audit.churn import ChurnRunResult, run_churn
from repro.audit.events import (
    EpochOutcome,
    EpochReport,
    SliceStats,
    VerdictEvent,
)
from repro.audit.monitor import EpochPlan, Monitor, PlannedItem
from repro.audit.policy import AuditPolicy
from repro.audit.store import EvidenceStore
from repro.audit.wire import (
    AnnouncePayload,
    CommitPayload,
    DeploymentReport,
    RoundStats,
    ViewPayload,
    round_randomness,
    run_wire_round,
)

__all__ = [
    "AnnouncePayload",
    "AuditPolicy",
    "ChurnRunResult",
    "CommitPayload",
    "DeploymentReport",
    "EpochOutcome",
    "EpochPlan",
    "EpochReport",
    "EvidenceStore",
    "Monitor",
    "PlannedItem",
    "RoundStats",
    "SliceStats",
    "VerdictEvent",
    "ViewPayload",
    "choosers",
    "round_randomness",
    "run_churn",
    "run_wire_round",
]
