"""The named chooser registry: export policies that survive pickling.

A cross-check *chooser* (:mod:`repro.pvr.crosscheck`) is the prover's
per-recipient export policy — a live callable.  Live callables cannot
cross a process boundary by pickle, which is why the sharded service
historically ran every custom-chooser policy on the monitor's local
wire path instead of the shard pool (a ROADMAP open item), and why a
callable chooser makes an incremental-cache fingerprint compare by
object *identity* — useless across cluster workers that each built
their own copy.

Registering a chooser under a **name** fixes both: policies reference
the chooser as a string (``chooser="discriminating:B1"``), the string
rides the wire/pickle for free, and every worker resolves it back to
the same callable through this registry.

Two kinds of entry:

* :func:`register` — a concrete chooser under an exact name;
* :func:`register_factory` — a parameterized family: the name
  ``"family:arg"`` resolves to ``factory("arg")``.

The built-ins mirror the scenario gallery: ``"honest"``, and the
``"discriminating:<favored>"`` / ``"withholding:<starved>"`` factories.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.pvr.crosscheck import (
    discriminating_chooser,
    honest_chooser,
    withholding_chooser,
)

__all__ = [
    "ChooserRef",
    "get",
    "names",
    "register",
    "register_factory",
    "resolve",
]

#: what policy/session call sites accept: a live callable, a registered
#: name, or None (the honest default)
ChooserRef = Union[None, str, Callable]

_CHOOSERS: Dict[str, Callable] = {}
_FACTORIES: Dict[str, Callable[[str], Callable]] = {}


def register(name: str, chooser: Callable) -> Callable:
    """Register a concrete chooser under ``name``.  Returns ``chooser``
    so it can be used as a decorator."""
    if ":" in name:
        raise ValueError(
            f"chooser name {name!r} may not contain ':' "
            f"(reserved for factory arguments)"
        )
    if name in _CHOOSERS or name in _FACTORIES:
        raise ValueError(f"chooser {name!r} is already registered")
    _CHOOSERS[name] = chooser
    return chooser


def register_factory(name: str, factory: Callable[[str], Callable]) -> Callable:
    """Register a parameterized chooser family: ``"{name}:{arg}"``
    resolves to ``factory(arg)``."""
    if ":" in name:
        raise ValueError(f"factory name {name!r} may not contain ':'")
    if name in _CHOOSERS or name in _FACTORIES:
        raise ValueError(f"chooser {name!r} is already registered")
    _FACTORIES[name] = factory
    return factory


def get(name: str) -> Callable:
    """The chooser registered under ``name`` (``"family:arg"`` builds
    through the family's factory)."""
    if name in _CHOOSERS:
        return _CHOOSERS[name]
    head, sep, arg = name.partition(":")
    if sep and head in _FACTORIES:
        return _FACTORIES[head](arg)
    raise KeyError(
        f"unknown chooser {name!r}; known: {', '.join(names())}"
    )


def names() -> Tuple[str, ...]:
    """Registered names (factories shown as ``family:<arg>``)."""
    return tuple(
        sorted(_CHOOSERS)
        + sorted(f"{name}:<arg>" for name in _FACTORIES)
    )


def resolve(chooser: ChooserRef) -> Optional[Callable]:
    """A call-site-ready chooser: names resolve through the registry,
    callables (and None) pass through unchanged."""
    if isinstance(chooser, str):
        return get(chooser)
    return chooser


register("honest", honest_chooser)
register_factory("discriminating", discriminating_chooser)
register_factory("withholding", withholding_chooser)
