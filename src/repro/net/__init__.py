"""Simulated asynchronous message-passing substrate.

PVR is a distributed protocol: ASes exchange route announcements,
commitments, openings and gossip.  :mod:`repro.net.simnet` provides the
event-driven network simulator those messages travel over (FIFO links,
configurable latency, Byzantine interception hooks), and
:mod:`repro.net.gossip` implements the neighbor gossip the paper uses to
detect commitment equivocation ("A's neighbors can gossip about c to
ensure that they all have the same view", Section 3.2).
"""

from repro.net.gossip import (
    EquivocationRecord,
    GossipLayer,
    SignedStatement,
    exchange,
    make_statement,
)
from repro.net.simnet import Link, Message, Network, Node, Simulator, build_network

__all__ = [
    "EquivocationRecord",
    "GossipLayer",
    "SignedStatement",
    "exchange",
    "make_statement",
    "build_network",
    "Link",
    "Message",
    "Network",
    "Node",
    "Simulator",
]
