"""Event-driven network simulator.

The simulator delivers messages between named nodes over point-to-point
links with per-link latency.  Delivery on a link is FIFO (matching TCP
semantics between BGP speakers).  A node is any object exposing
``handle_message(network, message)``; the PVR and BGP layers register
their router objects directly.

Byzantine behaviour is modelled with *interceptors*: a function attached
to a node that may drop, delay, modify or substitute outbound messages on
a per-destination basis.  This is how the adversary library of
:mod:`repro.pvr.adversary` injects equivocation and lies without the
honest-path code knowing anything about faults.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Message:
    """A message in flight: source, destination and opaque payload."""

    src: str
    dst: str
    payload: Any


@dataclass
class Link:
    """A bidirectional link with symmetric latency (in simulated seconds)."""

    a: str
    b: str
    latency: float = 0.01

    def endpoints(self) -> frozenset:
        return frozenset((self.a, self.b))


class Node:
    """Base class for protocol participants.

    Subclasses override :meth:`handle_message`.  The default implementation
    stores messages in an inbox, which is convenient for tests.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: List[Message] = []

    def handle_message(self, network: "Network", message: Message) -> None:
        self.inbox.append(message)


class Simulator:
    """A priority-queue discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), action)
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the queue drains, simulated time exceeds ``until``, or
        ``max_events`` events have been processed.  Returns the number of
        events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            time, _, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            action()
            processed += 1
            self.events_processed += 1
        return processed

    def pending(self) -> int:
        return len(self._queue)


# An interceptor sees (message) and returns the possibly-modified message,
# None to drop it, or a list of messages to substitute.
Interceptor = Callable[[Message], Optional[Any]]


class Network:
    """Nodes plus links plus a simulator; the deployment substrate.

    Messages may only be sent along configured links — attempting to send
    between non-adjacent nodes raises, which catches protocol bugs where
    an AS "magically" talks to a non-neighbor.
    """

    def __init__(self, simulator: Simulator | None = None) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[frozenset, Link] = {}
        self._interceptors: Dict[str, Interceptor] = {}
        self.delivered: int = 0
        self.bytes_sent: int = 0

    # -- topology -----------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        return node

    def add_link(self, a: str, b: str, latency: float = 0.01) -> Link:
        if a == b:
            raise ValueError("self-links are not allowed")
        for name in (a, b):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"duplicate link {a!r}-{b!r}")
        link = Link(a=a, b=b, latency=latency)
        self._links[key] = link
        return link

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> tuple:
        return tuple(self._nodes.values())

    def neighbors(self, name: str) -> tuple:
        """Names of nodes adjacent to ``name``, sorted for determinism."""
        out = []
        for key in self._links:
            if name in key:
                (other,) = key - {name}
                out.append(other)
        return tuple(sorted(out))

    def has_link(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._links

    # -- adversarial hooks ---------------------------------------------

    def set_interceptor(self, name: str, interceptor: Interceptor) -> None:
        """Attach a Byzantine outbound filter to node ``name``."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        self._interceptors[name] = interceptor

    def clear_interceptor(self, name: str) -> None:
        self._interceptors.pop(name, None)

    # -- messaging ------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""
        key = frozenset((src, dst))
        if key not in self._links:
            raise ValueError(f"no link between {src!r} and {dst!r}")
        message = Message(src=src, dst=dst, payload=payload)
        interceptor = self._interceptors.get(src)
        if interceptor is not None:
            result = interceptor(message)
            if result is None:
                return  # dropped
            messages = result if isinstance(result, list) else [result]
        else:
            messages = [message]
        link = self._links[key]
        for msg in messages:
            self._schedule_delivery(link, msg)

    def broadcast(self, src: str, payload: Any) -> None:
        """Send ``payload`` to every neighbor of ``src``."""
        for neighbor in self.neighbors(src):
            self.send(src, neighbor, payload)

    def _schedule_delivery(self, link: Link, message: Message) -> None:
        self.bytes_sent += _estimate_size(message.payload)

        def deliver() -> None:
            self.delivered += 1
            self._nodes[message.dst].handle_message(self, message)

        self.simulator.schedule(link.latency, deliver)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        return self.simulator.run(until=until, max_events=max_events)


def estimate_size(payload: Any) -> int:
    """Wire-size accounting for the overhead benchmarks and the serve
    layer's replayed transport cost model: the canonical encoding's
    length where one exists, a deterministic repr fallback otherwise.
    This is the single definition of "bytes on the wire" — the network's
    ``bytes_sent`` counter and any off-wire cost replay both use it, so
    the two can never disagree."""
    from repro.util.encoding import CanonicalEncodeError, canonical_encode

    try:
        return len(canonical_encode(payload))
    except CanonicalEncodeError:
        return len(repr(payload).encode("utf-8"))


_estimate_size = estimate_size


def build_network(
    node_names: Iterable[str],
    links: Iterable[tuple],
    node_factory: Callable[[str], Node] = Node,
) -> Network:
    """Convenience constructor used throughout the tests and examples."""
    network = Network()
    for name in node_names:
        network.add_node(node_factory(name))
    for edge in links:
        if len(edge) == 3:
            a, b, latency = edge
            network.add_link(a, b, latency)
        else:
            a, b = edge
            network.add_link(a, b)
    return network
