"""Gossip layer for equivocation detection (Section 3.2 / 3.6).

After an AS publishes a signed commitment (the bit ``c`` in Example #1, or
the Merkle root of its route-flow graph in the general protocol), its
neighbors "gossip about c to ensure that they all have the same view".  A
Byzantine AS that shows different commitments to different neighbors — a
*split view* or equivocation attack — is caught as soon as two neighbors
compare notes: two properly signed, conflicting statements for the same
(AS, topic, round) are transferable proof of misbehavior, because an
honest AS signs only one statement per slot.

This module is protocol-agnostic: a *statement* is any canonical value
signed by its author under a ``(author, topic, round)`` slot.  The PVR
layer gossips commitment roots through it; the D4 ablation benchmark turns
it off to demonstrate the split-view attack succeeding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.crypto.keystore import KeyStore
from repro.util.encoding import canonical_encode


@dataclass(frozen=True)
class SignedStatement:
    """A value signed by ``author`` for gossip slot ``(topic, round)``."""

    author: str
    topic: str
    round: int
    value: Any
    signature: bytes

    def signed_bytes(self) -> bytes:
        return statement_bytes(self.author, self.topic, self.round, self.value)

    def canonical(self) -> bytes:
        return canonical_encode(
            (
                "signed-statement",
                self.author,
                self.topic,
                self.round,
                canonical_encode(self.value),
                self.signature,
            )
        )


def statement_bytes(author: str, topic: str, round: int, value: Any) -> bytes:
    """The canonical byte string covered by a statement signature."""
    return canonical_encode(
        ("pvr-statement", author, topic, round, canonical_encode(value))
    )


def make_statement(
    keystore: KeyStore, author: str, topic: str, round: int, value: Any
) -> SignedStatement:
    """Sign ``value`` into the gossip slot ``(author, topic, round)``."""
    signature = keystore.sign(
        author, statement_bytes(author, topic, round, value)
    )
    return SignedStatement(
        author=author, topic=topic, round=round, value=value, signature=signature
    )


@dataclass(frozen=True)
class EquivocationRecord:
    """Two conflicting signed statements for the same slot.

    This is *evidence* in the paper's sense: any third party holding the
    author's public key can check both signatures and observe the
    conflicting values.
    """

    first: SignedStatement
    second: SignedStatement

    def slot(self) -> Tuple[str, str, int]:
        return (self.first.author, self.first.topic, self.first.round)

    def verify(self, keystore: KeyStore) -> bool:
        """A third-party (judge) check that the evidence is genuine."""
        a, b = self.first, self.second
        if (a.author, a.topic, a.round) != (b.author, b.topic, b.round):
            return False
        if canonical_encode(a.value) == canonical_encode(b.value):
            return False  # not actually conflicting
        return keystore.verify(
            a.author, a.signed_bytes(), a.signature
        ) and keystore.verify(b.author, b.signed_bytes(), b.signature)


class GossipLayer:
    """One participant's view of gossiped statements.

    Each PVR participant owns a ``GossipLayer``.  Statements received
    directly from their author or relayed by other neighbors are merged
    with :meth:`observe`; conflicting signed statements for one slot
    surface as :class:`EquivocationRecord` evidence.

    Statements whose signature does not verify are rejected outright —
    a Byzantine *relayer* must not be able to frame an honest author by
    forwarding a corrupted statement.
    """

    def __init__(self, owner: str, keystore: KeyStore) -> None:
        self.owner = owner
        self._keystore = keystore
        self._seen: Dict[Tuple[str, str, int], SignedStatement] = {}
        self._evidence: List[EquivocationRecord] = []

    def observe(self, statement: SignedStatement) -> EquivocationRecord | None:
        """Merge one statement; returns equivocation evidence if detected."""
        if not self._keystore.verify(
            statement.author, statement.signed_bytes(), statement.signature
        ):
            return None  # forged relay; ignore
        slot = (statement.author, statement.topic, statement.round)
        existing = self._seen.get(slot)
        if existing is None:
            self._seen[slot] = statement
            return None
        if canonical_encode(existing.value) == canonical_encode(statement.value):
            return None  # consistent duplicate
        record = EquivocationRecord(first=existing, second=statement)
        self._evidence.append(record)
        return record

    def observe_all(
        self, statements: Iterable[SignedStatement]
    ) -> List[EquivocationRecord]:
        found = []
        for statement in statements:
            record = self.observe(statement)
            if record is not None:
                found.append(record)
        return found

    def statement(
        self, author: str, topic: str, round: int
    ) -> SignedStatement | None:
        return self._seen.get((author, topic, round))

    def statements(self) -> tuple:
        return tuple(self._seen.values())

    @property
    def evidence(self) -> tuple:
        return tuple(self._evidence)


def exchange(layers: Iterable[GossipLayer]) -> List[EquivocationRecord]:
    """Full pairwise gossip among ``layers``; returns all new evidence.

    Models the steady state of the paper's gossip assumption: every
    neighbor eventually sees every statement any other neighbor received.
    """
    layer_list = list(layers)
    all_statements: list[SignedStatement] = []
    for layer in layer_list:
        all_statements.extend(layer.statements())
    found: List[EquivocationRecord] = []
    for layer in layer_list:
        found.extend(layer.observe_all(all_statements))
    return found
