"""The deterministic controller: signals in, decisions out.

:class:`Controller` owns a :class:`~repro.control.signals.SignalBus`
and is ticked by its host at epoch boundaries — after the cluster
coordinator's ``pump()`` drains its pending queue, or after the serve
layer finishes an epoch group.  Each ``tick()`` is a pure function of
the bus contents and the controller's own hysteresis counters: no
clocks, no randomness — the same observation sequence always produces
the same decision log, which is what lets the parity suite assert a
controller-driven reshard byte-identical to a CLI-driven one.

Two loops per tick:

* **admission** — the windowed epoch-wall percentile and queue-depth
  history are collapsed into an overload ``severity`` ∈ [0, 1]; the
  host pushes it into any policy exposing ``update_signals`` (the
  :class:`~repro.control.policies.AdaptiveAdmission` contract).
* **placement** — sustained per-shard load imbalance (windowed
  ``max/mean`` ratio past ``imbalance_enter`` for ``sustain_epochs``
  consecutive ticks) emits a ``rebalance`` decision; sustained
  pipeline overload optionally emits ``grow``.  Both arms share one
  cooldown: after any placement action, no further placement action
  can fire for ``cooldown_epochs`` ticks, and the ratio must drop
  below ``imbalance_exit`` before the imbalance counter re-arms — the
  enter/exit gap plus cooldown is what keeps the cluster from
  thrashing (reshard → moved load looks imbalanced → reshard ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.signals import SignalBus
from repro.obs.trace import TraceContext

__all__ = ["ControlPolicy", "Controller", "Decision"]


@dataclass(frozen=True)
class ControlPolicy:
    """The controller's knobs.  All thresholds are plain numbers so a
    policy is picklable inside a ``ClusterSpec``."""

    #: sliding-window capacity for every signal
    window: int = 32
    # -- admission loop ----------------------------------------------------
    #: epoch-wall percentile the admission loop watches
    latency_percentile: float = 90.0
    #: seconds of epoch wall past which the pipeline counts as behind
    latency_bound: float = 1.0
    #: queue fraction (p90 over the window) that counts as pressure
    queue_high: float = 0.5
    #: staleness bound pushed into AdaptiveAdmission at dispatch
    stale_after: float = 0.25
    # -- placement loop ----------------------------------------------------
    #: windowed max/mean shard-load ratio that starts the imbalance count
    imbalance_enter: float = 2.0
    #: ratio below which the imbalance count re-arms (must be < enter)
    imbalance_exit: float = 1.25
    #: consecutive over-threshold ticks before a placement action fires
    sustain_epochs: int = 2
    #: ticks after any placement action during which none may fire
    cooldown_epochs: int = 6
    #: ignore imbalance while the window holds fewer fresh events than this
    min_load: int = 4
    #: emit ``rebalance`` decisions (hot-split placements)
    rebalance: bool = True
    #: emit ``grow`` decisions (add a worker) under sustained overload
    grow: bool = False
    #: never grow past this many workers
    max_workers: int = 8

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        if not 0 < self.latency_percentile <= 100:
            raise ValueError(
                f"latency_percentile must be in (0, 100]: "
                f"{self.latency_percentile}"
            )
        if self.latency_bound <= 0:
            raise ValueError(
                f"latency_bound must be > 0: {self.latency_bound}"
            )
        if not 0 < self.queue_high <= 1:
            raise ValueError(f"queue_high must be in (0, 1]: {self.queue_high}")
        if self.stale_after <= 0:
            raise ValueError(f"stale_after must be > 0: {self.stale_after}")
        if self.imbalance_exit >= self.imbalance_enter:
            raise ValueError(
                f"imbalance_exit ({self.imbalance_exit}) must be below "
                f"imbalance_enter ({self.imbalance_enter}) — the gap is "
                f"the hysteresis band"
            )
        if self.imbalance_exit < 1.0:
            raise ValueError(
                f"imbalance_exit must be >= 1: {self.imbalance_exit}"
            )
        if self.sustain_epochs < 1:
            raise ValueError(
                f"sustain_epochs must be >= 1: {self.sustain_epochs}"
            )
        if self.cooldown_epochs < 1:
            raise ValueError(
                f"cooldown_epochs must be >= 1: {self.cooldown_epochs}"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {self.max_workers}")

    def describe(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "latency_percentile": self.latency_percentile,
            "latency_bound_s": self.latency_bound,
            "queue_high": self.queue_high,
            "stale_after_s": self.stale_after,
            "imbalance_enter": self.imbalance_enter,
            "imbalance_exit": self.imbalance_exit,
            "sustain_epochs": self.sustain_epochs,
            "cooldown_epochs": self.cooldown_epochs,
            "min_load": self.min_load,
            "rebalance": self.rebalance,
            "grow": self.grow,
            "max_workers": self.max_workers,
        }


@dataclass
class Decision:
    """One controller decision, JSON-ready for the decision log."""

    tick: int
    action: str  # "admission" | "rebalance" | "grow"
    reason: str
    signals: Dict[str, object] = field(default_factory=dict)
    #: filled in by the host once the action is executed
    applied: Optional[bool] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "action": self.action,
            "reason": self.reason,
            "signals": dict(self.signals),
            "applied": self.applied,
        }


class Controller:
    """Deterministic per-epoch control: severity + placement actions."""

    #: decision actions that move load and therefore share the cooldown
    PLACEMENT_ACTIONS = ("rebalance", "grow")

    def __init__(
        self,
        policy: Optional[ControlPolicy] = None,
        *,
        bus: Optional[SignalBus] = None,
    ) -> None:
        self.policy = policy or ControlPolicy()
        self.bus = bus or SignalBus(window=self.policy.window)
        self.severity = 0.0
        self.ticks = 0
        #: the host's trace context (the cluster coordinator / serve
        #: service overwrite this with their own, so decisions land in
        #: the same trace as the epochs that caused them)
        self.tracer = TraceContext("ctl", enabled=False)
        self.decisions: List[Decision] = []
        self._imbalance_epochs = 0
        self._overload_epochs = 0
        self._cooldown = 0

    # -- signal feeding (hosts call through to the bus) ---------------------

    def observe_epoch(
        self,
        *,
        wall_seconds: float,
        worker_walls: Optional[Dict[int, float]] = None,
        shard_loads: Optional[Dict[int, int]] = None,
    ) -> None:
        """Absorb one epoch drive's observations."""
        self.bus.observe_epoch_wall(wall_seconds)
        for worker, wall in sorted((worker_walls or {}).items()):
            self.bus.observe_worker_wall(worker, wall)
        if shard_loads:
            self.bus.observe_shard_loads(shard_loads)

    def observe_queue_depth(self, depth: int, limit: int) -> None:
        self.bus.observe_queue_depth(depth, limit)

    def observe_backlog(self, worker: int, backlog: int) -> None:
        self.bus.observe_backlog(worker, backlog)

    # -- the tick ------------------------------------------------------------

    def tick(self) -> List[Decision]:
        """One epoch-boundary evaluation.  Returns the new decisions;
        the host executes placement actions (through the same
        ``reshard``/``rebalance`` seams the CLI uses) and pushes
        ``severity`` into its admission policy."""
        self.ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
        fired: List[Decision] = []

        severity, why = self._admission_severity()
        if severity is None:
            # both windows empty: *no signal*, not "severity 0" — hold
            # the previous level rather than reading silence as
            # recovery (an admission decision needs evidence)
            severity = self.severity
        if round(severity, 6) != round(self.severity, 6):
            fired.append(
                Decision(
                    tick=self.ticks,
                    action="admission",
                    reason=why,
                    signals={
                        "severity": severity,
                        "previous": self.severity,
                    },
                    applied=True,
                )
            )
        self.severity = severity
        self._overload_epochs = (
            self._overload_epochs + 1 if severity >= 1.0 else 0
        )

        fired.extend(self._placement_decisions())
        self.decisions.extend(fired)
        for decision in fired:
            self.tracer.event(
                "decision", component="control",
                action=decision.action, tick=decision.tick,
                reason=decision.reason,
            )
        return fired

    def _admission_severity(self) -> "tuple[Optional[float], str]":
        """The overload severity, or ``None`` when neither signal
        window holds an observation yet (an empty window's percentile
        is ``None``, never 0.0 — see
        :meth:`~repro.control.signals.SignalWindow.percentile`)."""
        policy = self.policy
        wall_p = self.bus.percentile("epoch_wall", policy.latency_percentile)
        queue_p = self.bus.percentile("queue_fraction", 90.0)
        if wall_p is None and queue_p is None:
            return None, "no signal: both windows empty"
        latency_sev = 0.0
        if wall_p is not None and wall_p > policy.latency_bound:
            # 0 at the bound, 1 at twice the bound
            latency_sev = min(1.0, wall_p / policy.latency_bound - 1.0)
        queue_sev = 0.0
        if queue_p is not None and queue_p >= policy.queue_high:
            span = 1.0 - policy.queue_high
            queue_sev = (
                1.0
                if span <= 0
                else min(1.0, (queue_p - policy.queue_high) / span)
            )
        severity = max(latency_sev, queue_sev)
        why = (
            f"epoch_wall p{policy.latency_percentile:g}="
            f"{'-' if wall_p is None else format(wall_p, '.4f')}s "
            f"(bound {policy.latency_bound:g}s), "
            f"queue p90={'-' if queue_p is None else format(queue_p, '.3f')} "
            f"(high {policy.queue_high:g})"
        )
        return severity, why

    def _placement_decisions(self) -> List[Decision]:
        policy = self.policy
        fired: List[Decision] = []

        loads = self.bus.shard_loads()
        totals = {shard: total for shard, (total, _) in loads.items()}
        ratio = None
        if len(totals) >= 2:
            window_total = sum(totals.values())
            mean = window_total / len(totals)
            if window_total >= policy.min_load and mean > 0:
                ratio = max(totals.values()) / mean
        if ratio is not None and ratio >= policy.imbalance_enter:
            self._imbalance_epochs += 1
        elif ratio is None or ratio < policy.imbalance_exit:
            self._imbalance_epochs = 0
        # between exit and enter the count holds: the hysteresis band

        if (
            policy.rebalance
            and self._imbalance_epochs >= policy.sustain_epochs
            and self._cooldown == 0
        ):
            fired.append(
                Decision(
                    tick=self.ticks,
                    action="rebalance",
                    reason=(
                        f"shard load ratio {ratio:.2f} sustained past "
                        f"enter {policy.imbalance_enter:g} for "
                        f"{self._imbalance_epochs} epoch(s) without "
                        f"dropping below exit {policy.imbalance_exit:g}"
                    ),
                    signals={"ratio": ratio, "loads": {
                        str(s): t for s, t in sorted(totals.items())
                    }},
                )
            )
            self._cooldown = policy.cooldown_epochs
            self._imbalance_epochs = 0
        elif (
            policy.grow
            and self._overload_epochs >= policy.sustain_epochs
            and self._cooldown == 0
        ):
            fired.append(
                Decision(
                    tick=self.ticks,
                    action="grow",
                    reason=(
                        f"severity 1.0 sustained for "
                        f"{self._overload_epochs} epochs"
                    ),
                    signals={"max_workers": policy.max_workers},
                )
            )
            self._cooldown = policy.cooldown_epochs
            self._overload_epochs = 0
        return fired

    # -- reporting ----------------------------------------------------------

    def decision_log(self) -> List[Dict[str, object]]:
        return [decision.to_json() for decision in self.decisions]

    def snapshot(self) -> Dict[str, object]:
        return {
            "schema": "repro.control/controller",
            "schema_version": 1,
            "policy": self.policy.describe(),
            "ticks": self.ticks,
            "severity": self.severity,
            "cooldown": self._cooldown,
            "decisions": self.decision_log(),
            "signals": self.bus.snapshot(),
        }
