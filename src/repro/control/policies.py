"""AdaptiveAdmission: the controller-driven admission policy.

The open-loop policies in :mod:`repro.cluster.admission` decide from
what they can see at the door (queue occupancy) or at dispatch (how
long one request waited).  :class:`AdaptiveAdmission` instead takes an
*overload severity* pushed down by the controller — computed from
epoch-latency percentiles and queue-depth history — and sheds
**query** traffic proportionally before it ever occupies queue room,
plus stale queries at dispatch once the pipeline is behind.

Two invariants, enforced structurally rather than by tuning:

* churn and adjudication are **never** shed — churn keeps the audit
  trail current and adjudication is how slashing evidence gets heard;
  shedding either silently corrupts the service's whole point.  Only
  kinds in :attr:`AdaptiveAdmission.SHEDDABLE` are ever dropped.
* shedding is **deterministic given the seed**: the door coin is a
  hash of ``(seed, draw_index)``, not ``random.random()``, so a run
  replayed with the same request sequence and the same controller
  decisions sheds exactly the same requests.  (stdlib ``hashlib`` is
  used directly — the repo's counted crypto hasher would perturb the
  op counters the parity oracle compares.)
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional

from repro.cluster.admission import AdmissionPolicy

__all__ = ["AdaptiveAdmission"]


def _coin(seed: int, draw: int) -> float:
    """Deterministic uniform in [0, 1): sha256(seed, draw) as a
    64-bit fraction."""
    digest = hashlib.sha256(struct.pack(">qq", seed, draw)).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class AdaptiveAdmission(AdmissionPolicy):
    """Sheds query traffic in proportion to controller-set severity.

    ``severity`` ∈ [0, 1] is the controller's overload estimate (0 =
    healthy, 1 = the epoch pipeline is fully behind).  At the door a
    query is shed with probability ``severity`` (seeded deterministic
    coin) and, at severity ≥ 1, queries are also confined to the first
    ``door_headroom`` fraction of the queue so protected traffic always
    has room.  At dispatch, queries that waited past ``stale_after``
    are shed whenever severity is non-zero — under overload a stale
    answer is worthless, and shedding it is what lets the queue drain
    to a stable plateau instead of collapsing.
    """

    #: the only kinds this policy will ever drop
    SHEDDABLE = ("query",)

    def __init__(
        self,
        *,
        seed: int = 2011,
        stale_after: float = 0.25,
        door_headroom: float = 0.5,
    ) -> None:
        if stale_after <= 0:
            raise ValueError(f"stale_after must be > 0, got {stale_after}")
        if not 0 < door_headroom <= 1:
            raise ValueError(
                f"door_headroom must be in (0, 1], got {door_headroom}"
            )
        self.seed = seed
        self.stale_after = stale_after
        self.door_headroom = door_headroom
        self.severity = 0.0
        self._draws = 0

    # -- the controller's knob ----------------------------------------------

    def update_signals(
        self, *, severity: float, stale_after: Optional[float] = None
    ) -> None:
        """Controller push: the new overload severity (clamped to
        [0, 1]) and optionally a new staleness bound."""
        self.severity = min(1.0, max(0.0, float(severity)))
        if stale_after is not None:
            if stale_after <= 0:
                raise ValueError(
                    f"stale_after must be > 0, got {stale_after}"
                )
            self.stale_after = stale_after

    # -- the two decision points --------------------------------------------

    def at_door(self, kind: str, queued: int, depth: int) -> bool:
        if kind not in self.SHEDDABLE or self.severity == 0.0:
            return queued < depth
        if self.severity >= 1.0 and queued >= depth * self.door_headroom:
            return False
        # seeded proportional shedding: each query consumes one draw,
        # so the shed pattern is a pure function of (seed, arrival index)
        draw = self._draws
        self._draws += 1
        if _coin(self.seed, draw) < self.severity:
            return False
        return queued < depth

    def at_dispatch(self, kind: str, waited: float) -> bool:
        if kind not in self.SHEDDABLE or self.severity == 0.0:
            return True
        return waited <= self.stale_after

    def describe(self) -> Dict[str, object]:
        return {
            "policy": type(self).__name__,
            "seed": self.seed,
            "severity": self.severity,
            "stale_after_s": self.stale_after,
            "door_headroom": self.door_headroom,
            "door_draws": self._draws,
            "sheddable": list(self.SHEDDABLE),
        }
