"""The one schema-versioned metrics envelope the serving stack emits.

``repro.serve.metrics`` and ``repro.cluster.metrics`` grew overlapping
snapshot shapes (same request counters, same epoch counters, same
parity tallies — different field names for placement).  This module
unifies them: :class:`TypeMetrics` is the shared per-request-type
record, :func:`request_record` its shared JSON shape, and
:func:`envelope` assembles the common document skeleton.  Each ledger
keeps its own schema name and version, and keeps its legacy field
names alive as deprecated aliases:

* serve's ``sharding`` section (``shards``/``events_per_shard``/
  ``rebalances``) now mirrors the canonical ``placement`` section
  (``spec``/``load``/``reshards``);
* cluster's ``placement.events_per_worker`` is a deprecated alias of
  ``placement.load``.

New consumers should read ``placement.load``/``placement.reshards``;
the aliases will be dropped at the next schema-version bump.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.control.signals import LatencySeries

__all__ = ["TypeMetrics", "envelope", "request_record"]


class TypeMetrics:
    """Admission counters and latency series for one request type.

    The union of what the serve and cluster ledgers tracked:
    door/dispatch admission outcomes plus the end-to-end latency split
    into queue delay and service time (series stay empty where a host
    does not measure them — their summaries then report ``count: 0``).
    """

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.dropped = 0  # lost in transit (the simnet gateway's drops)
        self.shed = 0  # shed at dispatch (deadline/adaptive admission)
        self.completed = 0
        self.latency = LatencySeries()  # enqueue (+ net delay) -> done
        self.queue_delay = LatencySeries()  # enqueue -> dispatch
        self.service = LatencySeries()  # dispatch -> done

    def note_complete(
        self,
        latency: float,
        queue_delay: Optional[float] = None,
        service: Optional[float] = None,
    ) -> None:
        self.completed += 1
        self.latency.add(latency)
        if queue_delay is not None:
            self.queue_delay.add(queue_delay)
        if service is not None:
            self.service.add(service)


def request_record(tm: TypeMetrics, window: float) -> Dict[str, object]:
    """The unified JSON record for one request type."""
    return {
        "admitted": tm.admitted,
        "rejected": tm.rejected,
        "dropped": tm.dropped,
        "shed": tm.shed,
        "completed": tm.completed,
        "throughput_rps": (tm.completed / window if window > 0 else None),
        "latency": tm.latency.summary(),
        "queue_delay": tm.queue_delay.summary(),
        "service_time": tm.service.summary(),
    }


def envelope(
    *,
    schema: str,
    schema_version: int,
    window_seconds: float,
    types: Dict[str, TypeMetrics],
    epochs: Dict[str, object],
    probes: Dict[str, object],
    placement: Dict[str, object],
    parity: Dict[str, object],
    admission: Optional[Dict[str, object]] = None,
    control: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble and validate the shared snapshot skeleton.

    ``extra`` carries the ledger-specific sections (serve's ``sharding``
    shim, cluster's ``workers``/``respawns``).  The document is
    round-tripped through :func:`json.dumps` so a non-serializable
    value fails loudly at the producer, not in a CI artifact step.
    """
    document: Dict[str, object] = {
        "schema": schema,
        "schema_version": schema_version,
        "window_seconds": window_seconds,
        "requests": {
            kind: request_record(types[kind], window_seconds)
            for kind in sorted(types)
        },
        "epochs": epochs,
        "probes": probes,
        "placement": placement,
        "admission": admission,
        "control": control,
        "parity": parity,
    }
    if extra:
        document.update(extra)
    json.dumps(document)  # must always serialize; fail loudly here
    return document


def placement_section(
    *,
    spec: Optional[Dict[str, object]],
    load: Dict[int, int],
    reshards: List[Dict[str, object]],
) -> Dict[str, object]:
    """The canonical placement section: ``spec``, per-shard ``load``
    (fresh verifications routed to each shard/worker), and the reshard
    history."""
    return {
        "spec": spec,
        "load": {str(shard): count for shard, count in sorted(load.items())},
        "reshards": list(reshards),
    }
