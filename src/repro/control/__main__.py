"""The control-plane CLI: ``python -m repro.control``.

Usage::

    python -m repro.control --describe
    python -m repro.control --walls 0.1,0.1,2.0,2.5,2.5,0.1
    python -m repro.control --loads "9:1,8:1,10:2,9:1,9:1" \\
        --sustain 2 --cooldown 4 --json decisions.json

An offline **controller rehearsal**: replay a synthetic signal trace
(per-epoch wall seconds, per-shard loads, queue fractions) through a
:class:`~repro.control.controller.Controller` with the knobs given on
the command line, and print every decision it would have taken — the
same deterministic ``tick()`` the serving layer and the cluster run at
their epoch boundaries, minus the service.  Use it to tune hysteresis
(enter/exit thresholds, sustain, cooldown) against an observed trace
before turning the controller on in production, or ``--describe`` to
print the resolved policy knobs.

Exit status (the shared :mod:`repro.util.cli` contract): 0 on success
(decisions are data, not failures), 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import log as obs_log
from repro.util.cli import EXIT_OK, usage_error, write_json

from repro.control.controller import Controller, ControlPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.control",
        description="Replay a synthetic signal trace through the "
        "control plane and print the decisions it would take.",
    )
    parser.add_argument("--describe", action="store_true",
                        help="print the resolved policy knobs and exit")
    parser.add_argument("--walls", default=None, metavar="W1,W2,...",
                        help="per-epoch wall seconds to replay")
    parser.add_argument("--loads", default=None, metavar="A:B,A:B,...",
                        help="per-epoch per-shard loads to replay "
                        "(colon-separated shard counts per epoch)")
    parser.add_argument("--queue", default=None, metavar="F1,F2,...",
                        help="per-epoch queue-depth fractions in [0,1]")
    parser.add_argument("--window", type=int, default=32, metavar="N",
                        help="signal ring-buffer window (default: 32)")
    parser.add_argument("--latency-bound", type=float, default=1.0,
                        metavar="S", help="epoch-wall percentile bound "
                        "(default: 1.0)")
    parser.add_argument("--latency-percentile", type=float, default=90.0,
                        metavar="P", help="which wall percentile the "
                        "bound applies to (default: 90)")
    parser.add_argument("--queue-high", type=float, default=0.5,
                        metavar="F", help="queue fraction where shedding "
                        "pressure starts (default: 0.5)")
    parser.add_argument("--stale-after", type=float, default=0.25,
                        metavar="S", help="dispatch staleness bound "
                        "pushed to admission (default: 0.25)")
    parser.add_argument("--imbalance-enter", type=float, default=2.0,
                        metavar="R", help="max/mean shard-load ratio "
                        "that arms a rebalance (default: 2.0)")
    parser.add_argument("--imbalance-exit", type=float, default=1.25,
                        metavar="R", help="ratio below which the "
                        "imbalance counter resets (default: 1.25)")
    parser.add_argument("--sustain", type=int, default=2, metavar="N",
                        help="epochs a condition must hold before an "
                        "action fires (default: 2)")
    parser.add_argument("--cooldown", type=int, default=6, metavar="N",
                        help="epochs between placement actions "
                        "(default: 6)")
    parser.add_argument("--min-load", type=int, default=4, metavar="N",
                        help="windowed events below which imbalance is "
                        "ignored (default: 4)")
    parser.add_argument("--grow", action="store_true",
                        help="also allow grow decisions under sustained "
                        "overload")
    parser.add_argument("--json", metavar="PATH",
                        help="write the controller snapshot "
                        "(policy, decisions, signals) here")
    parser.add_argument("--log-json", action="store_true",
                        help="emit progress lines as JSON objects "
                        "(level/component/message fields)")
    return parser


def parse_trace(args):
    """Parse the --walls/--loads/--queue trace into per-epoch rows."""
    walls = loads = queue = None
    if args.walls is not None:
        walls = [float(w) for w in args.walls.split(",")]
    if args.loads is not None:
        loads = [
            {
                shard: int(count)
                for shard, count in enumerate(epoch.split(":"))
            }
            for epoch in args.loads.split(",")
        ]
    if args.queue is not None:
        queue = [float(q) for q in args.queue.split(",")]
        if any(not 0 <= q <= 1 for q in queue):
            raise ValueError("--queue fractions must be in [0, 1]")
    epochs = max(
        len(trace) for trace in (walls, loads, queue) if trace is not None
    )
    return epochs, walls, loads, queue


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    obs_log.configure_logging(json_mode=args.log_json)
    try:
        policy = ControlPolicy(
            window=args.window,
            latency_percentile=args.latency_percentile,
            latency_bound=args.latency_bound,
            queue_high=args.queue_high,
            stale_after=args.stale_after,
            imbalance_enter=args.imbalance_enter,
            imbalance_exit=args.imbalance_exit,
            sustain_epochs=args.sustain,
            cooldown_epochs=args.cooldown,
            min_load=args.min_load,
            grow=args.grow,
        )
    except ValueError as exc:
        return usage_error(str(exc))
    if args.describe:
        print(json.dumps(policy.describe(), indent=2, sort_keys=True))
        return EXIT_OK
    if args.walls is None and args.loads is None and args.queue is None:
        return usage_error(
            "give a trace (--walls / --loads / --queue) or --describe"
        )
    try:
        epochs, walls, loads, queue = parse_trace(args)
    except ValueError as exc:
        return usage_error(str(exc))

    controller = Controller(policy)
    for epoch in range(epochs):
        if queue is not None and epoch < len(queue):
            controller.observe_queue_depth(
                int(queue[epoch] * 100), 100
            )
        controller.observe_epoch(
            wall_seconds=(
                walls[epoch]
                if walls is not None and epoch < len(walls)
                else 0.0
            ),
            shard_loads=(
                loads[epoch]
                if loads is not None and epoch < len(loads)
                else None
            ),
        )
        for decision in controller.tick():
            obs_log.emit(
                "control",
                f"tick {decision.tick}: {decision.action} "
                f"— {decision.reason}",
                epoch=epoch,
                tick=decision.tick,
                action=decision.action,
            )
    snapshot = controller.snapshot()
    obs_log.emit(
        "control",
        f"replayed {epochs} epoch(s): "
        f"{len(controller.decisions)} decision(s), final severity "
        f"{controller.severity:.3f}, cooldown {snapshot['cooldown']}",
        epochs=epochs,
        decisions=len(controller.decisions),
        severity=round(controller.severity, 6),
    )
    if args.json:
        write_json(args.json, snapshot, tag="control",
                   what="controller snapshot")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
