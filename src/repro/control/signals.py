"""Signal primitives: exact percentiles and ring-buffered windows.

This module is the single home of the nearest-rank percentile
computation the whole stack shares.  :class:`LatencySeries` (unbounded,
exact — used by the metrics ledgers, where sample counts are bounded by
the workload) and :class:`SignalWindow` (a fixed-capacity ring buffer —
used by the controller, which must answer "what did the last N epochs
look like" forever without growing) both delegate to
:func:`nearest_rank`.

:class:`SignalBus` is the controller's blackboard: hosts
(``Cluster``, ``VerificationService``) push named observations as they
happen — epoch wall-clock, per-worker slice latency, admission-queue
fraction, per-shard fresh-event load, heartbeat backlog — and
``Controller.tick()`` reads sliding-window summaries off it.  The bus
holds plain floats only, so its snapshot is always JSON-serializable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LatencySeries",
    "PERCENTILES",
    "SignalBus",
    "SignalWindow",
    "nearest_rank",
]

#: the percentiles every snapshot reports
PERCENTILES = (50.0, 90.0, 99.0)


def nearest_rank(ordered: List[float], p: float) -> Optional[float]:
    """Exact nearest-rank percentile over an already-sorted list.

    Returns the smallest sample ≥ ``p`` percent of the distribution,
    or ``None`` on an empty list.  This is the one implementation of
    the rank rule; every percentile in the repo routes through it.
    """
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    if not ordered:
        return None
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class LatencySeries:
    """Raw latency samples with exact nearest-rank percentiles.

    Unbounded: keeps every sample, so percentiles are exact over the
    whole run.  For a sliding window, use :class:`SignalWindow`.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency cannot be negative: {seconds}")
        self._samples.append(seconds)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile: the smallest sample ≥ p% of the
        distribution.  ``None`` on an empty series."""
        return nearest_rank(self._ordered(), p)

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    def max(self) -> Optional[float]:
        return self._ordered()[-1] if self._samples else None

    def summary(self) -> Dict[str, object]:
        return {
            "count": len(self._samples),
            "mean_s": self.mean(),
            "max_s": self.max(),
            **{f"p{p:g}_s": self.percentile(p) for p in PERCENTILES},
        }


class SignalWindow:
    """A fixed-capacity ring buffer of float observations.

    Percentiles are exact nearest-rank over the window's current
    contents.  Unlike :class:`LatencySeries` this forgets: once more
    than ``capacity`` observations have arrived, the oldest fall off —
    the controller reasons about the recent past, not the whole run.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"window capacity must be positive: {capacity}")
        self.capacity = capacity
        self._ring: List[float] = []
        self._next = 0  # ring write position once full
        self.observed = 0  # total observations ever (including evicted)

    def observe(self, value: float) -> None:
        value = float(value)
        if len(self._ring) < self.capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.capacity
        self.observed += 1

    def __len__(self) -> int:
        return len(self._ring)

    def values(self) -> List[float]:
        """Window contents oldest-first."""
        if len(self._ring) < self.capacity:
            return list(self._ring)
        return self._ring[self._next:] + self._ring[: self._next]

    def last(self) -> Optional[float]:
        if not self._ring:
            return None
        if len(self._ring) < self.capacity:
            return self._ring[-1]
        return self._ring[self._next - 1]

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the window; ``None`` on an
        empty window — **never** 0.0, so consumers can tell "no
        signal yet" from "measured zero" (the Controller holds its
        previous severity on ``None``)."""
        return nearest_rank(sorted(self._ring), p)

    def mean(self) -> Optional[float]:
        if not self._ring:
            return None
        return sum(self._ring) / len(self._ring)

    def max(self) -> Optional[float]:
        return max(self._ring) if self._ring else None

    def total(self) -> float:
        return sum(self._ring)

    def summary(self) -> Dict[str, object]:
        return {
            "count": len(self._ring),
            "observed": self.observed,
            "last": self.last(),
            "mean": self.mean(),
            "max": self.max(),
            **{f"p{p:g}": self.percentile(p) for p in PERCENTILES},
        }


class SignalBus:
    """Named sliding-window signals, fed by hosts and read by the
    controller.

    Convenience feeders give the well-known signals stable names:

    * ``epoch_wall`` — coordinator-side wall-clock per epoch drive
    * ``worker/<i>/epoch_wall`` — per-worker slice wall-clock
    * ``worker/<i>/backlog`` — heartbeat-carried outstanding positions
    * ``queue_fraction`` — admission-queue depth / configured limit
    * ``shard/<i>/load`` — fresh verifications per shard per epoch
    """

    def __init__(self, window: int = 64) -> None:
        if window <= 0:
            raise ValueError(f"signal window must be positive: {window}")
        self.window = window
        self._signals: Dict[str, SignalWindow] = {}

    # -- generic ------------------------------------------------------------

    def signal(self, name: str) -> SignalWindow:
        """The window for ``name``, created on first use."""
        try:
            return self._signals[name]
        except KeyError:
            created = SignalWindow(self.window)
            self._signals[name] = created
            return created

    def observe(self, name: str, value: float) -> None:
        self.signal(name).observe(value)

    def percentile(self, name: str, p: float) -> Optional[float]:
        window = self._signals.get(name)
        return window.percentile(p) if window is not None else None

    def last(self, name: str) -> Optional[float]:
        window = self._signals.get(name)
        return window.last() if window is not None else None

    def names(self) -> List[str]:
        return sorted(self._signals)

    # -- the well-known signals ---------------------------------------------

    def observe_epoch_wall(self, seconds: float) -> None:
        self.observe("epoch_wall", seconds)

    def observe_worker_wall(self, worker: int, seconds: float) -> None:
        self.observe(f"worker/{worker}/epoch_wall", seconds)

    def observe_backlog(self, worker: int, backlog: int) -> None:
        self.observe(f"worker/{worker}/backlog", backlog)

    def observe_queue_depth(self, depth: int, limit: int) -> None:
        fraction = depth / limit if limit > 0 else 0.0
        self.observe("queue_fraction", fraction)

    def observe_shard_loads(self, loads: Dict[int, int]) -> None:
        for shard, load in loads.items():
            self.observe(f"shard/{shard}/load", load)

    def shard_loads(self) -> Dict[int, Tuple[float, int]]:
        """Per-shard ``(windowed_total, observations)`` of fresh load."""
        loads: Dict[int, Tuple[float, int]] = {}
        for name, window in self._signals.items():
            if name.startswith("shard/") and name.endswith("/load"):
                shard = int(name.split("/")[1])
                loads[shard] = (window.total(), len(window))
        return loads

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "schema": "repro.control/signals",
            "schema_version": 1,
            "window": self.window,
            "signals": {
                name: self._signals[name].summary()
                for name in sorted(self._signals)
            },
        }
