"""repro.control — the self-regulating control plane.

The serving stack (``repro.serve``, ``repro.cluster``) produces a
stream of observations — per-worker epoch latency, admission-queue
depth, per-shard load — but until this package its knobs (admission
policy, placement) were open-loop: shedding fired only once requests
queued, and resharding happened only when a CLI told it to.
``repro.control`` closes the loop:

* :mod:`repro.control.signals` — the shared exact nearest-rank
  percentile primitives (:func:`nearest_rank`, :class:`LatencySeries`)
  and a ring-buffered :class:`SignalBus` of sliding-window signals.
* :mod:`repro.control.envelope` — the one schema-versioned snapshot
  envelope both metrics ledgers emit.
* :mod:`repro.control.policies` — :class:`AdaptiveAdmission`, the
  controller-driven admission policy (sheds queries under overload,
  never churn or adjudication).
* :mod:`repro.control.controller` — :class:`Controller`, the
  deterministic per-epoch tick that turns signals into decisions
  (shed level, rebalance, grow) with hysteresis so the cluster never
  thrashes.

Every placement decision the controller makes is executed through the
exact same ``Cluster.reshard``/``rebalance``/``Placement.rebalance``
seams the CLIs use, between requests — so a controller-driven reshard
is byte-identical to the equivalent CLI-driven one under the parity
oracle.
"""

from repro.control.controller import ControlPolicy, Controller, Decision
from repro.control.policies import AdaptiveAdmission
from repro.control.signals import (
    LatencySeries,
    SignalBus,
    SignalWindow,
    nearest_rank,
)

__all__ = [
    "AdaptiveAdmission",
    "ControlPolicy",
    "Controller",
    "Decision",
    "LatencySeries",
    "SignalBus",
    "SignalWindow",
    "nearest_rank",
]
