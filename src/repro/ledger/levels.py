"""The trust ladder and the ledger's rule parameters.

:class:`TrustLevel` is an ordered four-rung ladder::

    QUARANTINED < PROBATIONARY < STANDARD < TRUSTED

Every AS starts at the policy's ``initial_level`` (default
``PROBATIONARY``: new ASes have earned nothing yet).  Levels only move
under two rules, both evidence-gated:

* **promotion** (``clean-streak``) — one rung up after
  ``clean_epochs_to_promote`` *consecutive* settled epochs in which the
  AS was audited at least ``min_coverage`` times and every verdict was
  clean.  An epoch with no coverage neither advances nor resets the
  streak: a level can never rise without logged evidence.
* **slashing** (``slash:adjudicated``) — straight down to ``slash_to``
  when the third-party judge *confirms* a recorded violation
  (transferable evidence validated, or a complaint upheld).  A mere
  failed verification — which may be a dropped wire message — resets
  the clean streak but never demotes; attribution is the judge's job.

:class:`LedgerPolicy` also carries the feedback knobs: per-level
verification sampling rates (``sampling_rates``, consumed by
:class:`~repro.ledger.feedback.VerificationIntensity`) and per-level
Byzantine probe budgets (``probe_density``, consumed by
:func:`~repro.ledger.feedback.probe_budget`).  The policy is a frozen,
picklable value — cluster workers receive it inside the
:class:`~repro.cluster.spec.ClusterSpec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["LedgerPolicy", "TrustLevel"]


class TrustLevel(enum.IntEnum):
    """The ordered trust ladder.  ``IntEnum`` so levels compare, sort
    and pickle as plain integers across worker processes."""

    QUARANTINED = 0
    PROBATIONARY = 1
    STANDARD = 2
    TRUSTED = 3

    def next_up(self) -> "TrustLevel":
        """The rung above (saturating at ``TRUSTED``)."""
        return TrustLevel(min(self.value + 1, TrustLevel.TRUSTED.value))


#: probe budgets when the policy does not override them: the less an AS
#: has earned, the more out-of-epoch Byzantine probing it gets
DEFAULT_PROBE_DENSITY: Dict[TrustLevel, int] = {
    TrustLevel.QUARANTINED: 2,
    TrustLevel.PROBATIONARY: 1,
    TrustLevel.STANDARD: 0,
    TrustLevel.TRUSTED: 0,
}


@dataclass(frozen=True)
class LedgerPolicy:
    """The ledger's promotion/slashing/feedback parameters, as data.

    ``sampling_rates`` maps trust levels to the fraction of *fresh*
    epoch work the audit plane actually verifies for ASes at that level
    (missing levels default to 1.0 — full verification).  A rate of 1.0
    is a strict identity: the plan, the rounds and the evidence trail
    are byte-for-byte those of a ledger-free monitor.
    """

    initial_level: TrustLevel = TrustLevel.PROBATIONARY
    clean_epochs_to_promote: int = 3
    min_coverage: int = 1
    slash_to: TrustLevel = TrustLevel.QUARANTINED
    sampling_rates: Mapping[TrustLevel, float] = field(default_factory=dict)
    probe_density: Mapping[TrustLevel, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clean_epochs_to_promote < 1:
            raise ValueError(
                f"clean_epochs_to_promote must be >= 1, "
                f"got {self.clean_epochs_to_promote}"
            )
        if self.min_coverage < 1:
            raise ValueError(
                f"min_coverage must be >= 1, got {self.min_coverage}"
            )
        rates = {
            TrustLevel(level): float(rate)
            for level, rate in self.sampling_rates.items()
        }
        for level, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"sampling rate for {level.name} must be in [0, 1], "
                    f"got {rate}"
                )
        density = {
            TrustLevel(level): int(count)
            for level, count in self.probe_density.items()
        }
        if any(count < 0 for count in density.values()):
            raise ValueError("probe_density counts must be >= 0")
        object.__setattr__(self, "sampling_rates", rates)
        object.__setattr__(self, "probe_density", density)

    def rate_for(self, level: TrustLevel) -> float:
        """The verification sampling rate at ``level`` (default 1.0)."""
        return self.sampling_rates.get(TrustLevel(level), 1.0)

    def probes_for(self, level: TrustLevel) -> int:
        """The out-of-epoch Byzantine probe budget at ``level``."""
        level = TrustLevel(level)
        if level in self.probe_density:
            return self.probe_density[level]
        return DEFAULT_PROBE_DENSITY[level]

    def describe(self) -> Dict[str, object]:
        return {
            "initial_level": self.initial_level.name,
            "clean_epochs_to_promote": self.clean_epochs_to_promote,
            "min_coverage": self.min_coverage,
            "slash_to": self.slash_to.name,
            "sampling_rates": {
                level.name: rate
                for level, rate in sorted(self.sampling_rates.items())
            },
            "probe_density": {
                level.name: self.probes_for(level) for level in TrustLevel
            },
        }
