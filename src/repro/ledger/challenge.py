"""The challenge desk: dispute a verdict, let the judge decide.

A recorded violation is an *accusation* until the paper's third-party
judge validates its transferable evidence.  :func:`run_challenge` is
the only path from accusation to demotion: it routes each challenged
violation through the existing
:meth:`~repro.audit.store.EvidenceStore.adjudicate` seam (the judge's
RSA work is spent exactly once per event — rulings are cached on the
report) and applies the confirmed rulings to the ledger via
:meth:`~repro.ledger.ledger.TrustLedger.fold_adjudications`.  A
dismissed accusation — a complaint the judge does not uphold, evidence
that fails validation — changes nothing: honest ASes cannot be slashed
by noise, and demotions only ever cite adjudicated violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["ChallengeOutcome", "run_challenge"]


@dataclass(frozen=True)
class ChallengeOutcome:
    """One challenged event's fate."""

    seq: int
    asn: str
    confirmed: bool
    transition: Optional[object]  # the history record, when one landed

    def describe(self) -> dict:
        return {
            "seq": self.seq,
            "asn": self.asn,
            "confirmed": self.confirmed,
            "demoted": self.transition is not None,
        }


def run_challenge(
    ledger,
    *,
    seq: Optional[int] = None,
    judge=None,
) -> Tuple[ChallengeOutcome, ...]:
    """Challenge one stored violation (by ``seq``) or every one.

    Returns one :class:`ChallengeOutcome` per challenged event.  Raises
    ``KeyError`` for a ``seq`` that names no stored violation — you can
    only dispute what the trail records.
    """
    store = ledger.store
    if store is None:
        raise RuntimeError("the ledger is not attached to a store")
    if seq is None:
        targets = store.violations()
    else:
        targets = tuple(e for e in store.violations() if e.seq == seq)
        if not targets:
            raise KeyError(f"no stored violation with seq {seq}")
    outcomes: List[ChallengeOutcome] = []
    for event in targets:
        rulings = store.adjudicate(event, judge=judge)
        adjudication = rulings[event.seq]
        confirmed = bool(
            adjudication.guilty() or adjudication.upheld_complaints()
        )
        transitions = ledger.fold_adjudications(rulings)
        outcomes.append(
            ChallengeOutcome(
                seq=event.seq,
                asn=event.asn,
                confirmed=confirmed,
                transition=transitions[0] if transitions else None,
            )
        )
    return tuple(outcomes)
