"""The feedback half: trust levels change how the system treats an AS.

Three knobs close the loop from ledger state back into the serving
stack:

* :class:`VerificationIntensity` — the audit plane's sampling policy.
  :meth:`~repro.audit.monitor.Monitor.plan_epoch` consults it per fresh
  tuple; a high-trust AS is verified at rate ``r < 1`` with
  *deterministic seeded sampling* (a domain-separated SHA-256 over the
  seed, epoch and tuple identity — identical on every co-planning
  cluster worker), while rate 1.0 short-circuits to ``True`` before any
  hashing, so a full-rate ledger run is byte-identical to a ledger-free
  one.
* :class:`TrustTieredAdmission` — the serve/cluster admission variant:
  requests that touch low-trust ASes (their churn re-audits, their
  Byzantine probes, and adjudications while any AS sits below the
  threshold) bypass the graduated priority door and may fill the whole
  queue — the traffic that resolves distrust is admitted first.
* :func:`probe_budget` / :func:`strictness` — denser out-of-epoch
  Byzantine probing and stricter promise-policy options for low-trust
  ASes, expressed through the existing policy/chooser registry
  vocabulary (named choosers and plain options pickle to workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.cluster.admission import PriorityAdmission
from repro.crypto.hashing import hash_bytes

from repro.ledger.levels import LedgerPolicy, TrustLevel

__all__ = [
    "TrustTieredAdmission",
    "VerificationIntensity",
    "probe_budget",
    "strictness",
]

_SAMPLE_DOMAIN = "ledger-sample"


class VerificationIntensity:
    """Trust-aware verification sampling for the epoch planner.

    ``trust`` is the per-AS level snapshot sampling decides on; it is
    replaced wholesale via :meth:`update` (a cluster worker receives it
    with each epoch command) or pulled from a bound ``ledger`` at each
    :meth:`begin_epoch` (the unsharded monitor's path).  Sampling is a
    pure function of ``(seed, epoch, tuple identity, rate)`` — no
    mutable state, no RNG — so every co-planning replica skips exactly
    the same entries.
    """

    def __init__(
        self,
        policy: Optional[LedgerPolicy] = None,
        *,
        seed: object = 2011,
        ledger=None,
        trust: Optional[Mapping[str, TrustLevel]] = None,
    ) -> None:
        self.policy = policy if policy is not None else LedgerPolicy()
        self.seed = seed
        self.ledger = ledger
        self._trust: Dict[str, TrustLevel] = dict(trust or {})
        self.sampled_out = 0

    def update(self, trust: Mapping[str, TrustLevel]) -> None:
        """Adopt a fresh trust snapshot (the coordinator's broadcast)."""
        self._trust = dict(trust)

    def begin_epoch(self, epoch: int) -> None:
        """Epoch boundary: settle the bound ledger (if any) so planning
        sees trust as of everything recorded before this epoch."""
        if self.ledger is not None:
            self.ledger.settle()
            self.update(self.ledger.trust_map())

    def level_of(self, asn: str) -> TrustLevel:
        return self._trust.get(asn, self.policy.initial_level)

    def rate_for(self, asn: str) -> float:
        return self.policy.rate_for(self.level_of(asn))

    def should_verify(
        self,
        asn: str,
        prefix,
        policy_name: str,
        recipients: Tuple[str, ...],
        *,
        epoch: int,
    ) -> bool:
        """Deterministic per-tuple sampling decision for one epoch.

        Rate 1.0 returns ``True`` before any hashing — zero side
        effects, so a full-rate run is byte-identical (including hash
        op counters) to a run with no intensity installed."""
        rate = self.rate_for(asn)
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        draw = int.from_bytes(
            hash_bytes(
                _SAMPLE_DOMAIN,
                repr((
                    self.seed, epoch, asn, str(prefix), policy_name,
                    tuple(recipients),
                )).encode("utf-8"),
            )[:8],
            "big",
        )
        keep = draw / float(1 << 64) < rate
        if not keep:
            self.sampled_out += 1
        return keep

    def describe(self) -> Dict[str, object]:
        return {
            "seed": repr(self.seed),
            "sampled_out": self.sampled_out,
            "levels": {
                asn: level.name
                for asn, level in sorted(self._trust.items())
            },
            "rates": {
                level.name: self.policy.rate_for(level)
                for level in TrustLevel
            },
        }


def _request_ases(request) -> Tuple[str, ...]:
    """The AS names a request visibly touches (marks and probes; churn
    *steps* are opaque builder pairs and are not inspected)."""
    ases = []
    for asn, _prefix in getattr(request, "marks", ()) or ():
        ases.append(asn)
    for probe in getattr(request, "probes", ()) or ():
        ases.append(probe.asn)
    asn = getattr(request, "asn", None)
    if asn is not None:
        ases.append(asn)
    return tuple(ases)


@dataclass(frozen=True)
class TrustTieredAdmission(PriorityAdmission):
    """A :class:`~repro.cluster.admission.PriorityAdmission` variant
    whose door looks at the *request*, not just its kind.

    Requests touching an AS below ``boost_below`` — its re-audit marks,
    Byzantine probes aimed at it, queries scoped to it — and
    adjudication requests while any tracked AS sits below the threshold
    (adjudication is what resolves distrust) are admitted up to the
    full queue depth; everything else falls back to the graduated
    per-kind door.  ``update`` adopts each settled trust snapshot (the
    coordinator refreshes it per epoch).
    """

    trust: Mapping[str, TrustLevel] = field(default_factory=dict)
    boost_below: TrustLevel = TrustLevel.STANDARD
    initial_level: TrustLevel = TrustLevel.PROBATIONARY

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "trust", dict(self.trust))

    def update(self, trust: Mapping[str, TrustLevel]) -> None:
        object.__setattr__(self, "trust", dict(trust))

    def _low_trust(self, asn: str) -> bool:
        return self.trust.get(asn, self.initial_level) < self.boost_below

    def boosted(self, request) -> bool:
        if request.kind == "adjudicate":
            return any(self._low_trust(asn) for asn in self.trust)
        return any(self._low_trust(asn) for asn in _request_ases(request))

    def at_door_request(self, request, queued: int, depth: int) -> bool:
        if self.boosted(request):
            return queued < depth
        return self.at_door(request.kind, queued, depth)

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["boost_below"] = self.boost_below.name
        summary["low_trust_ases"] = sorted(
            asn for asn in self.trust if self._low_trust(asn)
        )
        return summary


def probe_budget(level: TrustLevel, policy: Optional[LedgerPolicy] = None) -> int:
    """How many out-of-epoch Byzantine probes an AS at ``level`` earns
    per audit cycle — the lower the trust, the denser the probing."""
    return (policy if policy is not None else LedgerPolicy()).probes_for(
        level
    )


def strictness(level: TrustLevel) -> Dict[str, object]:
    """Promise-policy option overrides for an AS at ``level``, in the
    registry vocabulary ``monitor.policy(...)`` accepts (everything
    pickles: plain options plus *named* choosers).  Low-trust ASes get
    strictly tighter path-length promises and an explicit named export
    chooser; trusted ASes keep the defaults."""
    level = TrustLevel(level)
    if level <= TrustLevel.QUARANTINED:
        return {"max_length": 4, "chooser": "honest"}
    if level <= TrustLevel.PROBATIONARY:
        return {"max_length": 6, "chooser": "honest"}
    return {"max_length": 8}
