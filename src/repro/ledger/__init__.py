"""repro.ledger — the evidence-gated accountability ledger.

The paper's verification plane produces a per-AS evidence trail; this
package makes the trail *matter*.  A :class:`TrustLedger` subscribes to
an :class:`~repro.audit.store.EvidenceStore` and maintains an explicit
trust ladder per AS (:class:`TrustLevel`:
``QUARANTINED < PROBATIONARY < STANDARD < TRUSTED``):

* levels rise only through logged clean-audit evidence
  (``clean_epochs_to_promote`` consecutive covered epochs), every
  transition an append-only, hash-chained
  :class:`~repro.ledger.history.TransitionHistory` row;
* levels fall only through slashing — and slashing only through the
  challenge desk (:mod:`repro.ledger.challenge`), which routes disputes
  through the third-party judge via ``EvidenceStore.adjudicate``;
* trust feeds back (:mod:`repro.ledger.feedback`): high-trust ASes get
  deterministically *sampled* verification
  (:class:`VerificationIntensity`, rate 1.0 = byte-identical to no
  ledger at all), low-trust ASes get denser Byzantine probing and
  stricter promise options, and the serve/cluster admission plane can
  prioritize the traffic that resolves distrust
  (:class:`TrustTieredAdmission`).

``python -m repro.ledger`` runs a churn scenario under a ledger-enabled
monitor and prints the ladder's life: promotions, challenges, slashes,
and the verified hash chain.
"""

from repro.ledger.challenge import ChallengeOutcome, run_challenge
from repro.ledger.feedback import (
    TrustTieredAdmission,
    VerificationIntensity,
    probe_budget,
    strictness,
)
from repro.ledger.history import (
    GENESIS,
    TransitionHistory,
    TransitionRecord,
)
from repro.ledger.ledger import ASRecord, TrustLedger
from repro.ledger.levels import LedgerPolicy, TrustLevel

__all__ = [
    "ASRecord",
    "ChallengeOutcome",
    "GENESIS",
    "LedgerPolicy",
    "TransitionHistory",
    "TransitionRecord",
    "TrustLedger",
    "TrustLevel",
    "TrustTieredAdmission",
    "VerificationIntensity",
    "probe_budget",
    "run_challenge",
    "strictness",
]
