"""The append-only, hash-chained transition history.

Every trust-level change the ledger ever makes lands here as a
:class:`TransitionRecord`: which AS, which epoch, from which level to
which, under which rule, citing which evidence-store sequence numbers.
Records are chained the way a transparency log is: each record's
``digest`` is a domain-separated SHA-256 over its payload *and* the
previous record's digest, so the history is tamper-evident —
:meth:`TransitionHistory.verify` recomputes the chain from the genesis
anchor and any edit, reorder, insertion or deletion breaks it.  The
history is queryable (:meth:`TransitionHistory.for_asn`) and plain data
(picklable), so a cluster coordinator can ship or snapshot it whole.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import hash_many

from repro.ledger.levels import TrustLevel

__all__ = ["GENESIS", "TransitionHistory", "TransitionRecord"]

_DOMAIN = "ledger-history"

#: the chain anchor: the digest "before" the first record
GENESIS = hash_many(_DOMAIN, b"genesis").hex()


@dataclass(frozen=True)
class TransitionRecord:
    """One trust-level change, as an immutable chained log row.

    ``epoch`` is the settled epoch the rule fired in (``None`` for a
    slash triggered before any epoch work was observed);
    ``evidence_seqs`` are the store sequence numbers of the events the
    rule cites — never empty: no transition without logged evidence.
    """

    index: int
    asn: str
    epoch: Optional[int]
    from_level: TrustLevel
    to_level: TrustLevel
    rule: str
    evidence_seqs: Tuple[int, ...]
    prev_hash: str
    digest: str

    def payload(self) -> bytes:
        """The canonical byte encoding the digest commits to."""
        return repr((
            self.index,
            self.asn,
            self.epoch,
            int(self.from_level),
            int(self.to_level),
            self.rule,
            tuple(self.evidence_seqs),
        )).encode("utf-8")

    def expected_digest(self) -> str:
        return hash_many(
            _DOMAIN, bytes.fromhex(self.prev_hash), self.payload()
        ).hex()


class TransitionHistory:
    """The ledger's append-only log of every level transition."""

    def __init__(self) -> None:
        self._records: List[TransitionRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def head(self) -> str:
        """The chain head: the last record's digest (or the genesis)."""
        return self._records[-1].digest if self._records else GENESIS

    def append(
        self,
        *,
        asn: str,
        epoch: Optional[int],
        from_level: TrustLevel,
        to_level: TrustLevel,
        rule: str,
        evidence_seqs: Tuple[int, ...],
    ) -> TransitionRecord:
        """Chain one transition onto the log and return its record."""
        if not evidence_seqs:
            raise ValueError(
                "a transition must cite at least one evidence seq"
            )
        partial = TransitionRecord(
            index=len(self._records),
            asn=asn,
            epoch=epoch,
            from_level=TrustLevel(from_level),
            to_level=TrustLevel(to_level),
            rule=rule,
            evidence_seqs=tuple(evidence_seqs),
            prev_hash=self.head,
            digest="",
        )
        record = dataclasses.replace(
            partial, digest=partial.expected_digest()
        )
        self._records.append(record)
        return record

    def records(self) -> Tuple[TransitionRecord, ...]:
        return tuple(self._records)

    def for_asn(self, asn: str) -> Tuple[TransitionRecord, ...]:
        return tuple(r for r in self._records if r.asn == asn)

    def verify(self) -> bool:
        """Recompute the whole chain from the genesis anchor."""
        prev = GENESIS
        for index, record in enumerate(self._records):
            if (
                record.index != index
                or record.prev_hash != prev
                or record.digest != record.expected_digest()
            ):
                return False
            prev = record.digest
        return True

    def describe(self) -> dict:
        return {
            "length": len(self._records),
            "head": self.head,
            "verified": self.verify(),
        }
