"""The per-AS trust ledger: evidence in, trust levels out.

A :class:`TrustLedger` subscribes to an
:class:`~repro.audit.store.EvidenceStore` (:meth:`TrustLedger.attach`)
and folds every verdict event into per-AS accounting:

* epoch events accumulate into per-epoch buckets; a bucket is **settled**
  when a later epoch's events arrive (or on an explicit
  :meth:`TrustLedger.settle`), at which point the promotion rule runs —
  a violation-free bucket with at least ``min_coverage`` events extends
  the AS's clean streak, a bucket containing a violation resets it, and
  a long enough streak promotes the AS one rung, citing the settled
  bucket's event seqs in the append-only
  :class:`~repro.ledger.history.TransitionHistory`;
* out-of-epoch events (Byzantine probes,
  :meth:`~repro.audit.monitor.Monitor.audit_once`) count into the
  durable totals immediately; a probe violation resets the streak but
  — like every unadjudicated violation — never demotes;
* demotion happens in exactly one place: :meth:`TrustLedger.slash`,
  reached only through the challenge/adjudication path
  (:mod:`repro.ledger.challenge`), which requires the third-party judge
  to confirm the violation first.  Slashing is monotone within an
  epoch: once an AS is slashed at epoch E, no promotion settles at an
  epoch <= E.

The ledger's durable counters survive evidence-store eviction (the
store's ``on_evict`` callback) and the whole object pickles — minus its
live store subscription — so cluster coordinators can snapshot it and
workers can receive consistent per-epoch trust maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ledger.history import TransitionHistory
from repro.ledger.levels import LedgerPolicy, TrustLevel

__all__ = ["ASRecord", "TrustLedger"]

#: transition rule names, as recorded in history rows
RULE_PROMOTE = "clean-streak"
RULE_SLASH = "slash:adjudicated"


@dataclass
class ASRecord:
    """One AS's durable accountability counters."""

    asn: str
    level: TrustLevel
    streak: int = 0
    clean_events: int = 0
    violation_events: int = 0
    slashes: int = 0
    evicted_events: int = 0
    last_settled_epoch: Optional[int] = None
    slashed_at_epoch: Optional[int] = None

    def describe(self) -> Dict[str, object]:
        return {
            "level": self.level.name,
            "streak": self.streak,
            "clean_events": self.clean_events,
            "violation_events": self.violation_events,
            "slashes": self.slashes,
            "evicted_events": self.evicted_events,
            "last_settled_epoch": self.last_settled_epoch,
            "slashed_at_epoch": self.slashed_at_epoch,
        }


@dataclass
class _Bucket:
    """One AS's not-yet-settled evidence within one epoch."""

    clean: int = 0
    violations: int = 0
    seqs: List[int] = field(default_factory=list)


SCHEMA = "repro.ledger/snapshot"
SCHEMA_VERSION = 1


class TrustLedger:
    """Evidence-gated trust levels with slashing-style demotion."""

    def __init__(
        self,
        policy: Optional[LedgerPolicy] = None,
        *,
        store=None,
    ) -> None:
        self.policy = policy if policy is not None else LedgerPolicy()
        self.history = TransitionHistory()
        self._records: Dict[str, ASRecord] = {}
        # epoch -> asn -> bucket, settled in epoch order
        self._open: Dict[int, Dict[str, _Bucket]] = {}
        self._max_epoch = 0
        # violation seq -> (asn, epoch): the attribution index the
        # challenge path resolves adjudications through
        self._violation_index: Dict[int, Tuple[str, Optional[int]]] = {}
        self._slashed_seqs: set = set()
        self._store = None
        if store is not None:
            self.attach(store)

    # -- wiring --------------------------------------------------------------

    def attach(self, store) -> "TrustLedger":
        """Subscribe to ``store``: every recorded event is observed,
        and evicted events are folded into the durable counters."""
        if self._store is not None:
            raise RuntimeError("ledger is already attached to a store")
        self._store = store
        store.subscribe(self.observe)
        store.on_evict(self._note_eviction)
        return self

    @property
    def store(self):
        return self._store

    def __getstate__(self):
        # the live store (with its subscriber closures) stays behind:
        # a pickled ledger is a consistent snapshot of trust state, not
        # a live subscription
        state = dict(self.__dict__)
        state["_store"] = None
        return state

    # -- ingestion -----------------------------------------------------------

    def observe(self, event) -> None:
        """Fold one verdict event (duck-typed: ``seq``/``epoch``/
        ``asn``/``violation_found()``) into the accounting."""
        violation = event.violation_found()
        if violation:
            self._violation_index[event.seq] = (event.asn, event.epoch)
        if event.epoch is None:
            # out-of-epoch audit: counts immediately, never toward a
            # promotion streak — but a violation interrupts it
            record = self._record(event.asn)
            if violation:
                record.violation_events += 1
                record.streak = 0
            else:
                record.clean_events += 1
            return
        if event.epoch > self._max_epoch:
            # a new epoch began: everything older is complete
            self.settle(before=event.epoch)
            self._max_epoch = event.epoch
        bucket = self._open.setdefault(event.epoch, {}).setdefault(
            event.asn, _Bucket()
        )
        if violation:
            bucket.violations += 1
        else:
            bucket.clean += 1
            bucket.seqs.append(event.seq)

    def _note_eviction(self, event) -> None:
        """The store dropped a clean event under its ``max_events``
        bound; the totals above already counted it — just track that the
        raw trail no longer holds it."""
        self._record(event.asn).evicted_events += 1

    # -- settling and promotion ----------------------------------------------

    def settle(self, before: Optional[int] = None) -> int:
        """Close every open epoch bucket older than ``before`` (all of
        them when ``None``), running the promotion rule per epoch in
        ascending order.  Returns the number of epochs settled.  Called
        automatically when a newer epoch's events arrive; callers that
        plan on current trust (the audit plane, the cluster
        coordinator) settle explicitly at epoch boundaries."""
        settled = 0
        for epoch in sorted(self._open):
            if before is not None and epoch >= before:
                break
            for asn in sorted(self._open[epoch]):
                self._settle_bucket(asn, epoch, self._open[epoch][asn])
            del self._open[epoch]
            settled += 1
        return settled

    def _settle_bucket(self, asn: str, epoch: int, bucket: _Bucket) -> None:
        record = self._record(asn)
        record.last_settled_epoch = epoch
        record.clean_events += bucket.clean
        record.violation_events += bucket.violations
        if bucket.violations:
            # unadjudicated violations interrupt the streak — demotion
            # waits for the judge
            record.streak = 0
            return
        if bucket.clean < self.policy.min_coverage:
            # not enough evidence this epoch: the streak neither grows
            # nor resets — levels never move on absence of evidence
            return
        record.streak += 1
        if record.streak < self.policy.clean_epochs_to_promote:
            return
        if record.level >= TrustLevel.TRUSTED:
            record.streak = 0
            return
        if (
            record.slashed_at_epoch is not None
            and epoch <= record.slashed_at_epoch
        ):
            # monotone within an epoch: a slash at epoch E wins over
            # any promotion settling at or before E
            record.streak = 0
            return
        promoted = record.level.next_up()
        self.history.append(
            asn=asn,
            epoch=epoch,
            from_level=record.level,
            to_level=promoted,
            rule=RULE_PROMOTE,
            evidence_seqs=tuple(bucket.seqs),
        )
        record.level = promoted
        record.streak = 0

    # -- slashing -------------------------------------------------------------

    def slash(
        self,
        asn: str,
        *,
        evidence_seqs: Tuple[int, ...],
        epoch: Optional[int] = None,
        rule: str = RULE_SLASH,
    ) -> Optional[object]:
        """Demote ``asn`` to the policy's ``slash_to`` level.

        Only the challenge/adjudication path calls this, and only with
        the seqs of judge-confirmed violations — ``evidence_seqs`` must
        be non-empty, so even a slash is evidence-gated.  Returns the
        history record (``None`` when the AS already sits at or below
        the slash floor — the streak and counters still take the hit).
        """
        if not evidence_seqs:
            raise ValueError("slash requires adjudicated evidence seqs")
        record = self._record(asn)
        at_epoch = epoch if epoch is not None else (self._max_epoch or None)
        record.streak = 0
        record.slashes += 1
        if at_epoch is not None:
            record.slashed_at_epoch = max(
                at_epoch, record.slashed_at_epoch or 0
            )
        if record.level <= self.policy.slash_to:
            return None
        transition = self.history.append(
            asn=asn,
            epoch=at_epoch,
            from_level=record.level,
            to_level=self.policy.slash_to,
            rule=rule,
            evidence_seqs=tuple(evidence_seqs),
        )
        record.level = self.policy.slash_to
        return transition

    def fold_adjudications(self, rulings: Dict[int, object]) -> List[object]:
        """Apply a batch of judge rulings (``{seq: Adjudication}``, the
        :meth:`~repro.audit.store.EvidenceStore.adjudicate` shape).

        Every *confirmed* ruling — validated transferable evidence or an
        upheld complaint — slashes the recorded violator, once per seq.
        Dismissed accusations change nothing.  Returns the transition
        records appended."""
        transitions = []
        for seq in sorted(rulings):
            if seq in self._slashed_seqs:
                continue
            adjudication = rulings[seq]
            if not (
                adjudication.guilty() or adjudication.upheld_complaints()
            ):
                continue
            attribution = self._violation_index.get(seq)
            if attribution is None:
                continue  # not a violation this ledger observed
            self._slashed_seqs.add(seq)
            asn, epoch = attribution
            transition = self.slash(
                asn, evidence_seqs=(seq,), epoch=epoch
            )
            if transition is not None:
                transitions.append(transition)
        return transitions

    def challenge(self, seq: Optional[int] = None, *, judge=None):
        """Dispute recorded violations through the attached store's
        judge; confirmed rulings slash.  See
        :func:`repro.ledger.challenge.run_challenge`."""
        from repro.ledger.challenge import run_challenge

        return run_challenge(self, seq=seq, judge=judge)

    # -- queries --------------------------------------------------------------

    def _record(self, asn: str) -> ASRecord:
        record = self._records.get(asn)
        if record is None:
            record = ASRecord(asn=asn, level=self.policy.initial_level)
            self._records[asn] = record
        return record

    def trust_level(self, asn: str) -> TrustLevel:
        record = self._records.get(asn)
        return record.level if record is not None else (
            self.policy.initial_level
        )

    def trust_map(self) -> Dict[str, TrustLevel]:
        """The picklable per-AS level snapshot workers plan with."""
        return {
            asn: record.level
            for asn, record in sorted(self._records.items())
        }

    def records(self) -> Tuple[ASRecord, ...]:
        return tuple(
            self._records[asn] for asn in sorted(self._records)
        )

    @property
    def current_epoch(self) -> int:
        return self._max_epoch

    def snapshot(self) -> Dict[str, object]:
        """The schema-versioned, JSON-serializable ledger document
        (the shape ``python -m repro.ledger --json`` emits)."""
        import json

        snapshot = {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "policy": self.policy.describe(),
            "current_epoch": self._max_epoch,
            "open_epochs": sorted(self._open),
            "levels": {
                asn: record.level.name
                for asn, record in sorted(self._records.items())
            },
            "records": {
                asn: record.describe()
                for asn, record in sorted(self._records.items())
            },
            "history": self.history.describe(),
            "transitions": [
                {
                    "index": r.index,
                    "asn": r.asn,
                    "epoch": r.epoch,
                    "from": r.from_level.name,
                    "to": r.to_level.name,
                    "rule": r.rule,
                    "evidence_seqs": list(r.evidence_seqs),
                    "digest": r.digest,
                }
                for r in self.history.records()
            ],
        }
        json.dumps(snapshot)  # must always serialize; fail loudly here
        return snapshot
