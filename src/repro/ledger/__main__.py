"""The ledger CLI: ``python -m repro.ledger``.

Usage::

    python -m repro.ledger
    python -m repro.ledger --rounds 12 --rate 0.5 --promote-after 2
    python -m repro.ledger --violate-every 4 --json ledger.json

Runs the multi-prefix serving scenario's churn script under a
ledger-enabled :class:`~repro.audit.monitor.Monitor`: every epoch's
verdicts feed the :class:`~repro.ledger.ledger.TrustLedger`, ASes climb
the trust ladder on clean streaks, climbing changes the verification
sampling rate mid-run, and (with ``--violate-every``) injected
Byzantine probes are challenged through the judge at the end —
confirmed violations slash.  Prints the per-epoch cost table, the
final ladder and the hash-chain-verified transition history.

``--json PATH`` writes the schema-versioned ledger snapshot
(``schema: repro.ledger/snapshot``, ``schema_version: 1`` — the exact
:meth:`~repro.ledger.ledger.TrustLedger.snapshot` document, consistent
with the serve/cluster metrics documents) augmented with a ``run``
section of epoch/cost totals.  Exit status (the shared
:mod:`repro.util.cli` contract): 0 on success, 1 if the
transition-history hash chain fails to verify, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys

from repro.audit.monitor import Monitor
from repro.bench.tables import print_table
from repro.cluster.workload import churn_script
from repro.obs import log as obs_log
from repro.crypto.keystore import KeyStore
from repro.promises.spec import ShortestRoute
from repro.pvr.scenarios import apply_step, serve_network
from repro.util.cli import (
    EXIT_FAILURE,
    EXIT_OK,
    add_common_arguments,
    usage_error,
    write_json,
)

from repro.ledger.ledger import TrustLedger
from repro.ledger.levels import LedgerPolicy, TrustLevel
from repro.ledger.feedback import VerificationIntensity


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ledger",
        description="Run churn under a ledger-enabled monitor and "
        "report the trust ladder, its transition history and the "
        "verification-cost effect of trust-sampled intensity.",
    )
    parser.add_argument("--prefixes", type=int, default=4, metavar="N",
                        help="prefix count of the serving scenario "
                        "(default: 4)")
    parser.add_argument("--rounds", type=int, default=10, metavar="N",
                        help="churn rounds to script (default: 10)")
    parser.add_argument("--rate", type=float, default=0.5, metavar="R",
                        help="sampling rate for TRUSTED ASes "
                        "(default: 0.5; 1.0 = ledger-free behaviour)")
    parser.add_argument("--promote-after", type=int, default=2,
                        metavar="N",
                        help="consecutive clean covered epochs per "
                        "promotion rung (default: 2)")
    parser.add_argument("--violate-every", type=int, default=0,
                        metavar="N",
                        help="ride a Byzantine probe on every Nth churn "
                        "request (default: 0 = honest run)")
    add_common_arguments(
        parser,
        seed_help="keystore / nonce / sampling seed (default: 2011)",
        json_help="write the schema-versioned ledger snapshot here",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    obs_log.configure_logging(json_mode=args.log_json)
    if args.prefixes < 1 or args.rounds < 1:
        return usage_error("--prefixes and --rounds must be >= 1")
    if not 0.0 <= args.rate <= 1.0:
        return usage_error(f"--rate must be in [0, 1], got {args.rate}")
    if args.promote_after < 1:
        return usage_error("--promote-after must be >= 1")

    policy = LedgerPolicy(
        clean_epochs_to_promote=args.promote_after,
        sampling_rates={TrustLevel.TRUSTED: args.rate},
    )
    network, prefixes = serve_network(args.prefixes)
    keystore = KeyStore(seed=args.seed, key_bits=args.key_bits)
    monitor = Monitor(keystore, rng_seed=args.seed)
    ledger = TrustLedger(policy).attach(monitor.evidence)
    monitor.intensity = VerificationIntensity(
        policy, seed=args.seed, ledger=ledger
    )
    monitor.attach(network)
    monitor.policy("A", ShortestRoute(), recipients=("B",),
                   name="A/min->B", max_length=8)

    requests = churn_script(
        prefixes, rounds=args.rounds, violation_every=args.violate_every
    )
    rows = []
    reports = []
    for request in requests:
        for step in request.steps:
            apply_step(step, network)
        for asn, prefix in request.marks:
            monitor.mark(asn, prefix)
        network.run_to_quiescence()
        while monitor.pending():
            outcome = monitor.run_epoch()
            reports.append(outcome)
            rows.append((
                outcome.epoch, len(outcome.events), outcome.verified,
                outcome.reused, outcome.signatures,
                monitor.intensity.sampled_out,
                ledger.trust_level("A").name,
            ))
        for probe in request.probes:
            monitor.audit_once(
                probe.asn, probe.prefix, probe.recipient,
                prover=(probe.prover(keystore)
                        if probe.prover is not None else None),
                max_length=probe.max_length,
            )
    ledger.settle()

    print_table(
        "ledger-enabled audit epochs",
        ["epoch", "events", "verified", "reused", "signs",
         "sampled out (cum)", "A level at plan"],
        rows,
    )

    outcomes = ()
    if monitor.evidence.violations():
        outcomes = ledger.challenge()
        print_table(
            "challenge desk",
            ["seq", "asn", "judge says", "demoted"],
            [(o.seq, o.asn,
              "CONFIRMED" if o.confirmed else "dismissed",
              "yes" if o.transition is not None else "no")
             for o in outcomes],
        )

    print_table(
        "trust ladder",
        ["asn", "level", "streak", "clean", "violations", "slashes"],
        [(r.asn, r.level.name, r.streak, r.clean_events,
          r.violation_events, r.slashes) for r in ledger.records()],
    )
    print_table(
        "transition history (hash-chained)",
        ["#", "asn", "epoch", "transition", "rule", "evidence seqs",
         "digest"],
        [(r.index, r.asn, r.epoch,
          f"{r.from_level.name}->{r.to_level.name}", r.rule,
          ",".join(str(s) for s in r.evidence_seqs),
          r.digest[:12] + "…")
         for r in ledger.history.records()],
    )
    verified = ledger.history.verify()
    obs_log.emit(
        "ledger",
        f"history chain verified: {verified} "
        f"(head {ledger.history.head[:16]}…, "
        f"{len(ledger.history)} transitions)",
        verified=verified,
        transitions=len(ledger.history),
    )

    if args.json:
        document = ledger.snapshot()
        document["run"] = {
            "epochs": len(reports),
            "events": sum(len(r.events) for r in reports),
            "verified": sum(r.verified for r in reports),
            "reused": sum(r.reused for r in reports),
            "signatures": sum(r.signatures for r in reports),
            "sampled_out": monitor.intensity.sampled_out,
            "challenges": [o.describe() for o in outcomes],
        }
        write_json(args.json, document, tag="ledger", what="snapshot")

    return EXIT_OK if verified else EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())
