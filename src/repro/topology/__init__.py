"""AS-level topology substrate.

Reads real CAIDA AS-relationship snapshots (:mod:`repro.topology.caida`),
generates synthetic Internet-like graphs with the same annotation model
(:mod:`repro.topology.generate`), and instantiates either as a running
Gao-Rexford BGP network (:mod:`repro.topology.internet`).
"""

from repro.topology.caida import (
    ASGraph,
    CaidaFormatError,
    P2C,
    P2P,
    parse,
    parse_file,
    serialize,
    write_file,
)
from repro.topology.generate import TopologyParams, generate, star_topology
from repro.topology.internet import build_bgp_network

__all__ = [
    "ASGraph",
    "CaidaFormatError",
    "P2C",
    "P2P",
    "parse",
    "parse_file",
    "serialize",
    "write_file",
    "TopologyParams",
    "generate",
    "star_topology",
    "build_bgp_network",
]
