"""Build a runnable BGP network from an annotated AS graph.

Bridges the topology substrate to the BGP substrate: every AS becomes a
:class:`repro.bgp.router.BGPRouter`, every relationship edge becomes a
peering configured with the matching Gao-Rexford import/export policies,
and sessions are established.  The result is the "unsecured system" over
which PVR deployments and the SCALE benchmark operate.
"""

from __future__ import annotations

from repro.bgp.network import BGPNetwork
from repro.bgp.relationships import export_policy, import_policy
from repro.topology.caida import ASGraph


def build_bgp_network(
    graph: ASGraph,
    latency: float = 0.01,
    establish: bool = True,
) -> BGPNetwork:
    """Instantiate routers and Gao-Rexford-policied sessions for ``graph``."""
    net = BGPNetwork()
    for asn in graph.ases():
        net.add_as(asn)
    for a, b, _code in graph.edge_list():
        rel_of_b_to_a = graph.relationship(a, b)   # how a sees b
        rel_of_a_to_b = graph.relationship(b, a)   # how b sees a
        net.connect(
            a,
            b,
            latency=latency,
            import_policy_a=import_policy(rel_of_b_to_a),
            export_policy_a=export_policy(rel_of_b_to_a),
            import_policy_b=import_policy(rel_of_a_to_b),
            export_policy_b=export_policy(rel_of_a_to_b),
        )
    if establish:
        net.establish_sessions()
    return net
