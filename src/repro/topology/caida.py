"""CAIDA AS-relationship file format (serial-1).

The paper's context — inferring AS business relationships "on the basis of
publicly available data [5, 7]" — refers to the CAIDA AS-relationship
datasets.  This module reads and writes that format so experiments can run
on real snapshots when available and on synthetic ones (written in the
same format by :mod:`repro.topology.generate`) offline:

::

    # comment lines start with '#'
    <provider-as>|<customer-as>|-1
    <peer-as>|<peer-as>|0

AS numbers are kept as strings throughout (the simulator's AS names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.bgp.relationships import Relationship

P2C = -1
P2P = 0


class CaidaFormatError(ValueError):
    """Raised on malformed AS-relationship lines."""


@dataclass
class ASGraph:
    """An AS-level topology with annotated business relationships.

    ``edges`` maps a frozenset pair of AS names to the relationship code
    (:data:`P2C` with an orientation stored separately, or :data:`P2P`).
    Provider orientation for p2c edges is kept in ``providers``: the pair
    maps to the provider's name.
    """

    edges: Dict[frozenset, int] = field(default_factory=dict)
    providers: Dict[frozenset, str] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_p2c(self, provider: str, customer: str) -> None:
        if provider == customer:
            raise CaidaFormatError("self-loop relationship")
        key = frozenset((provider, customer))
        if key in self.edges:
            raise CaidaFormatError(f"duplicate edge {provider}|{customer}")
        self.edges[key] = P2C
        self.providers[key] = provider

    def add_p2p(self, a: str, b: str) -> None:
        if a == b:
            raise CaidaFormatError("self-loop relationship")
        key = frozenset((a, b))
        if key in self.edges:
            raise CaidaFormatError(f"duplicate edge {a}|{b}")
        self.edges[key] = P2P

    # -- queries -------------------------------------------------------------

    def ases(self) -> Tuple[str, ...]:
        names: Set[str] = set()
        for key in self.edges:
            names.update(key)
        return tuple(sorted(names))

    def relationship(self, of: str, to: str) -> Relationship:
        """The relationship of ``to`` as seen from ``of``."""
        key = frozenset((of, to))
        if key not in self.edges:
            raise KeyError(f"no edge {of}-{to}")
        if self.edges[key] == P2P:
            return Relationship.PEER
        if self.providers[key] == to:
            return Relationship.PROVIDER
        return Relationship.CUSTOMER

    def neighbors(self, asn: str) -> Tuple[str, ...]:
        out = []
        for key in self.edges:
            if asn in key:
                (other,) = key - {asn}
                out.append(other)
        return tuple(sorted(out))

    def customers(self, asn: str) -> Tuple[str, ...]:
        return tuple(
            n for n in self.neighbors(asn)
            if self.relationship(asn, n) is Relationship.CUSTOMER
        )

    def providers_of(self, asn: str) -> Tuple[str, ...]:
        return tuple(
            n for n in self.neighbors(asn)
            if self.relationship(asn, n) is Relationship.PROVIDER
        )

    def peers_of(self, asn: str) -> Tuple[str, ...]:
        return tuple(
            n for n in self.neighbors(asn)
            if self.relationship(asn, n) is Relationship.PEER
        )

    def degree(self, asn: str) -> int:
        return len(self.neighbors(asn))

    def edge_count(self) -> int:
        return len(self.edges)

    def edge_list(self) -> List[Tuple[str, str, int]]:
        """Edges as (a, b, code) with p2c oriented provider-first."""
        rows = []
        for key, code in self.edges.items():
            if code == P2C:
                provider = self.providers[key]
                (customer,) = key - {provider}
                rows.append((provider, customer, P2C))
            else:
                a, b = sorted(key)
                rows.append((a, b, P2P))
        rows.sort()
        return rows

    def tier1_core(self) -> Tuple[str, ...]:
        """ASes with no providers: the (approximate) tier-1 clique."""
        return tuple(
            asn for asn in self.ases() if not self.providers_of(asn)
        )


def parse(lines: Iterable[str]) -> ASGraph:
    """Parse serial-1 AS-relationship lines into an :class:`ASGraph`."""
    graph = ASGraph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise CaidaFormatError(f"line {lineno}: expected 3+ fields: {line!r}")
        a, b, code_text = parts[0], parts[1], parts[2]
        if not a or not b:
            raise CaidaFormatError(f"line {lineno}: empty AS name")
        try:
            code = int(code_text)
        except ValueError:
            raise CaidaFormatError(
                f"line {lineno}: bad relationship code {code_text!r}"
            ) from None
        if code == P2C:
            graph.add_p2c(provider=a, customer=b)
        elif code == P2P:
            graph.add_p2p(a, b)
        else:
            raise CaidaFormatError(f"line {lineno}: unknown code {code}")
    return graph


def parse_file(path) -> ASGraph:
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle)


def serialize(graph: ASGraph) -> str:
    """Render an :class:`ASGraph` back to serial-1 text."""
    lines = ["# AS relationships (serial-1): <provider>|<customer>|-1, <peer>|<peer>|0"]
    for a, b, code in graph.edge_list():
        lines.append(f"{a}|{b}|{code}")
    return "\n".join(lines) + "\n"


def write_file(graph: ASGraph, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(graph))
