"""Synthetic Internet-like AS topology generation.

The paper's experiments would run over real ISP topologies; those are the
*substituted* input here (see DESIGN.md): a three-tier generative model
that reproduces the structural properties the PVR experiments depend on —
a small densely-peered tier-1 clique, preferential-attachment provider
selection (yielding heavy-tailed customer-cone sizes), and sparse lateral
peering in the middle tier.  Output is an annotated
:class:`repro.topology.caida.ASGraph`, so synthetic and real inputs are
interchangeable everywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.caida import ASGraph
from repro.util.rng import DeterministicRandom


@dataclass(frozen=True)
class TopologyParams:
    """Knobs for the generator.

    ``tier1`` ASes form a full peering clique.  ``tier2`` ASes buy transit
    from 1-3 providers drawn preferentially by current degree and peer
    laterally with probability ``peering_prob`` per sampled pair.  ``stub``
    ASes attach to 1-2 tier-2 providers.
    """

    tier1: int = 4
    tier2: int = 12
    stubs: int = 24
    peering_prob: float = 0.15
    seed: int = 0

    def total(self) -> int:
        return self.tier1 + self.tier2 + self.stubs


def _asn(index: int) -> str:
    return f"AS{index}"


def generate(params: TopologyParams) -> ASGraph:
    """Generate a connected, valley-free-annotated AS graph."""
    if params.tier1 < 1:
        raise ValueError("need at least one tier-1 AS")
    if params.peering_prob < 0 or params.peering_prob > 1:
        raise ValueError("peering_prob must be in [0, 1]")
    rng = DeterministicRandom(params.seed).fork("topology")
    graph = ASGraph()

    tier1 = [_asn(i) for i in range(params.tier1)]
    tier2 = [_asn(params.tier1 + i) for i in range(params.tier2)]
    stubs = [
        _asn(params.tier1 + params.tier2 + i) for i in range(params.stubs)
    ]

    # Tier-1 clique: full mesh of peering.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            graph.add_p2p(a, b)

    degree = {asn: max(graph.degree(asn), 1) for asn in tier1}

    def pick_providers(pool, count):
        """Preferential attachment: sample ``count`` distinct providers
        weighted by current degree."""
        chosen = []
        candidates = list(pool)
        for _ in range(min(count, len(candidates))):
            weights = [degree.get(c, 1) for c in candidates]
            total = sum(weights)
            point = rng.random() * total
            acc = 0.0
            for candidate, weight in zip(candidates, weights):
                acc += weight
                if point < acc:
                    chosen.append(candidate)
                    candidates.remove(candidate)
                    break
            else:  # floating-point edge: take the last
                chosen.append(candidates.pop())
        return chosen

    # Tier-2: 1-3 providers from tier-1, preferential by degree.
    for asn in tier2:
        count = rng.randint(1, min(3, len(tier1)))
        for provider in pick_providers(tier1, count):
            graph.add_p2c(provider=provider, customer=asn)
            degree[provider] = degree.get(provider, 1) + 1
        degree[asn] = graph.degree(asn)

    # Lateral tier-2 peering.
    for i, a in enumerate(tier2):
        for b in tier2[i + 1 :]:
            if rng.random() < params.peering_prob:
                graph.add_p2p(a, b)
                degree[a] = degree.get(a, 1) + 1
                degree[b] = degree.get(b, 1) + 1

    # Stubs: 1-2 providers from tier-2 (or tier-1 when there is no tier-2).
    provider_pool = tier2 if tier2 else tier1
    for asn in stubs:
        count = rng.randint(1, min(2, len(provider_pool)))
        for provider in pick_providers(provider_pool, count):
            graph.add_p2c(provider=provider, customer=asn)
            degree[provider] = degree.get(provider, 1) + 1
        degree[asn] = graph.degree(asn)

    return graph


def true_stub(graph: ASGraph) -> str:
    """The highest-numbered AS with providers and no customers — the
    canonical prefix origin for generated-topology experiments.

    ``graph.ases()`` sorts lexicographically (``AS10`` < ``AS9``), so the
    last element would be a transit AS; the numeric key avoids that.
    """
    return max(
        (a for a in graph.ases() if not graph.customers(a)),
        key=lambda a: int(a[2:]) if a.startswith("AS") else 0,
    )


def star_topology(center: str, leaf_count: int, extra: str | None = None) -> ASGraph:
    """The paper's Figure 1 shape: A in the middle, N1..Nk providers of
    routes, B the verifying customer.

    ``center`` is provider-of nobody; the Ni are modelled as ``center``'s
    peers and ``extra`` (B) as its customer, matching the information-flow
    directions in the figure.
    """
    if leaf_count < 1:
        raise ValueError("need at least one leaf")
    graph = ASGraph()
    for i in range(1, leaf_count + 1):
        graph.add_p2p(center, f"N{i}")
    if extra is not None:
        graph.add_p2c(provider=center, customer=extra)
    return graph
