"""Compilation of promises and router policies into route-flow graphs.

Section 4 of the paper calls for "language support for compiling a
high-level policy description (or router configuration file) into a
compact route-flow graph".  Two entry points:

* :func:`compile_promise` — produce the canonical graph that *implements*
  a promise template over a neighbor set (the graph a cooperative AS
  would publish to back that promise);
* :func:`compile_policy` — translate the filter portion of a route-map
  :class:`repro.bgp.policy.Policy` into a chain of filter operators
  feeding a best-path selection.  Deny clauses over communities and
  AS-path membership compile directly; constructs with no filter-operator
  equivalent (actions that rewrite attributes) raise
  :class:`CompileError` with an explanation rather than silently
  approximating the policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.bgp.policy import Clause, MatchASInPath, MatchCommunity, Policy
from repro.promises.spec import (
    ExistentialPromise,
    NoLongerThanOthers,
    Promise,
    ShortestFromSubset,
    ShortestRoute,
    WithinKHops,
    YouGetWhatYoureGiven,
)
from repro.rfg.builder import (
    existential_graph,
    input_name,
    minimum_graph,
    subset_minimum_graph,
)
from repro.rfg.graph import RouteFlowGraph
from repro.rfg.operators import (
    ASAbsenceFilter,
    BGPBestPath,
    CommunityFilter,
    Union,
)


class CompileError(Exception):
    """Raised when a policy has no faithful route-flow-graph rendering."""


def compile_promise(
    promise: Promise, neighbors: Sequence[str], recipient: str = "B"
) -> RouteFlowGraph:
    """The canonical graph implementing ``promise`` over ``neighbors``."""
    if isinstance(promise, ShortestRoute):
        return minimum_graph(neighbors, recipient=recipient)
    if isinstance(promise, ShortestFromSubset):
        return subset_minimum_graph(neighbors, promise.subset, recipient=recipient)
    if isinstance(promise, ExistentialPromise):
        missing = set(promise.subset) - set(neighbors)
        if missing:
            raise CompileError(f"promise names unknown neighbors {sorted(missing)}")
        if tuple(sorted(promise.subset)) == tuple(sorted(neighbors)):
            return existential_graph(neighbors, recipient=recipient)
        return subset_minimum_graph(neighbors, promise.subset, recipient=recipient)
    if isinstance(promise, WithinKHops):
        # the conservative implementation: always export the shortest,
        # which satisfies within-k for every k
        return minimum_graph(neighbors, recipient=recipient)
    if isinstance(promise, NoLongerThanOthers):
        # promise 4 constrains outputs across recipients; the honest
        # implementation serves everyone the shared shortest route, so
        # the per-recipient plan is the Figure 1 minimum graph (the
        # cross-recipient half is enforced by attestation gossip)
        return minimum_graph(neighbors, recipient=recipient)
    if isinstance(promise, YouGetWhatYoureGiven):
        graph = RouteFlowGraph()
        names = []
        for index, neighbor in enumerate(neighbors, start=1):
            graph.add_input(input_name(index), party=neighbor)
            names.append(input_name(index))
        graph.add_output("ro", party=recipient)
        graph.add_operator("best", BGPBestPath(), inputs=names, output="ro")
        graph.validate()
        return graph
    raise CompileError(f"no compilation rule for {type(promise).__name__}")


def compile_policy(
    policy: Policy, neighbors: Sequence[str], recipient: str = "B"
) -> RouteFlowGraph:
    """Compile the *filtering* content of a route map into a graph.

    The result is: union of all neighbor inputs → one filter operator per
    compilable deny clause → best-path selection → output.  Permit-all
    clauses and the default disposition need no operator.
    """
    if not neighbors:
        raise CompileError("need at least one neighbor")
    if not policy.default_permit:
        raise CompileError(
            "default-deny policies are not compilable: 'deny the rest' "
            "would require a positive filter over the union of all permit "
            "clauses, which the current operator set cannot express "
            "faithfully (paper Section 4, 'More operators')"
        )
    graph = RouteFlowGraph()
    names = []
    for index, neighbor in enumerate(neighbors, start=1):
        graph.add_input(input_name(index), party=neighbor)
        names.append(input_name(index))
    graph.add_internal("all")
    graph.add_operator("union", Union(), inputs=names, output="all")

    current = "all"
    for index, clause in enumerate(policy.clauses):
        if clause.permit and not clause.matches and not clause.actions:
            break  # permit-all: every later clause is unreachable
        operator = _compile_clause(clause)
        if operator is None:
            continue
        var = f"filtered{index}"
        graph.add_internal(var)
        graph.add_operator(f"clause{index}", operator, inputs=[current], output=var)
        current = var

    graph.add_output("ro", party=recipient)
    graph.add_operator("best", BGPBestPath(), inputs=[current], output="ro")
    graph.validate()
    return graph


def _compile_clause(clause: Clause):
    """One route-map clause → one filter operator (or None for no-ops)."""
    if clause.permit:
        if clause.actions:
            raise CompileError(
                f"clause {clause.name or clause.describe()!r} rewrites "
                "attributes; attribute-rewriting has no filter-operator "
                "equivalent (paper Section 4, 'More operators')"
            )
        if clause.matches:
            raise CompileError(
                "a guarded permit clause is an early exit past later deny "
                "clauses; a filter chain cannot express first-match-wins "
                "semantics faithfully"
            )
        return None  # pure permit-all: routes pass through unchanged
    if len(clause.matches) != 1:
        raise CompileError(
            "deny clauses with conjunctive matches are not yet compilable"
        )
    match = clause.matches[0]
    if isinstance(match, MatchCommunity):
        return CommunityFilter(match.community, require=False)
    if isinstance(match, MatchASInPath):
        return ASAbsenceFilter(match.asn)
    raise CompileError(
        f"no filter operator for match type {type(match).__name__}"
    )


def scope_to_prefix(graph: RouteFlowGraph, prefix, position: str = "all"):
    """Narrow an existing compiled graph to one destination prefix by
    inserting a :class:`PrefixFilter` after the named variable.

    Returns a *new* graph; the input graph is not modified.  Used when a
    promise negotiated per prefix is implemented by a shared policy
    graph.
    """
    from repro.rfg.operators import PrefixFilter

    rebuilt = RouteFlowGraph()
    for vertex in graph.variables():
        if vertex.role == "input":
            rebuilt.add_input(vertex.name, party=vertex.party)
        elif vertex.role == "output":
            rebuilt.add_output(vertex.name, party=vertex.party)
        else:
            rebuilt.add_internal(vertex.name)
    if not graph.is_variable(position):
        raise CompileError(f"no variable {position!r} to scope at")
    scoped_var = f"{position}__scoped"
    rebuilt.add_internal(scoped_var)
    rebuilt.add_operator(
        f"scope-{position}", PrefixFilter(prefix), inputs=[position],
        output=scoped_var,
    )
    for op in graph.operators():
        inputs = [scoped_var if name == position else name for name in op.inputs]
        rebuilt.add_operator(op.name, op.operator, inputs=inputs,
                             output=op.output)
    rebuilt.validate()
    return rebuilt
