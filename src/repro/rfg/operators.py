"""Route-flow-graph operators (paper Section 2.1).

"A rule is an operation that takes some set of input routes and emits a
set of output routes (which may be a single route, or no route at all)."
Operators are *pure*: they map input values to an output value and carry a
machine-readable type tag, so that (a) the PVR layer can commit to the
operator type independently of its inputs (Section 3.7), and (b) the
static checker can reason about what a graph computes without running it.

Values flowing along edges are either a single :class:`Route` (or None) or
a tuple of routes (a route *set*).  ``normalize_routes`` coerces both
shapes into a tuple, which is what lets one operator feed another.

The two operators the paper builds protocols for — ``Existential``
(Section 3.2) and ``Min`` (Section 3.3) — are here, plus the operators
needed for the generalizations it sketches: filters over neighbors and
communities, union, the shorter-of combinator of Figure 2, the full BGP
pipeline as one black-box rule, and hierarchical composites (the
"structural privacy" challenge of Section 4).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.bgp.decision import decide, rank_key
from repro.bgp.route import Route

Value = object  # Route | None | tuple[Route, ...]


def normalize_routes(value: Value) -> Tuple[Route, ...]:
    """Coerce an edge value into a tuple of routes."""
    if value is None:
        return ()
    if isinstance(value, Route):
        return (value,)
    if isinstance(value, (tuple, list)):
        for item in value:
            if not isinstance(item, Route):
                raise TypeError(f"route set contains {type(item).__name__}")
        return tuple(value)
    raise TypeError(f"not a route value: {type(value).__name__}")


class Operator:
    """Base class: a named, typed rule.

    ``type_tag`` identifies *which function* the operator computes — it is
    the operator-vertex payload PVR commits to.  ``params()`` returns the
    tag's parameters (e.g. the subset of neighbors a filter keeps), which
    are part of the committed payload too: a network must not be able to
    claim after the fact that its filter had a different subset.
    """

    type_tag: str = "abstract"

    def params(self) -> tuple:
        return ()

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        raise NotImplementedError

    def describe(self) -> str:
        params = self.params()
        inner = ", ".join(repr(p) for p in params)
        return f"{self.type_tag}({inner})"

    def payload(self) -> tuple:
        """The committable identity: (type tag, parameters)."""
        return (self.type_tag, self.params())


class Min(Operator):
    """Select the route with minimal AS-path length (Section 3.3).

    Ties are broken deterministically by the full BGP rank key so that the
    operator is a function; the PVR minimum protocol only ever reasons
    about the *length* of the winner, so any tie-break satisfies the
    promise.
    """

    type_tag = "min-path-length"

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        candidates = [r for value in inputs for r in normalize_routes(value)]
        if not candidates:
            return None
        best_len = min(r.path_length for r in candidates)
        shortest = [r for r in candidates if r.path_length == best_len]
        return min(shortest, key=rank_key)


class Existential(Operator):
    """Emit a route whenever at least one input provides one (Section 3.2).

    Deterministically picks the rank-best of the available routes; the
    existential *promise* only constrains whether a route is emitted, not
    which.
    """

    type_tag = "existential"

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        candidates = [r for value in inputs for r in normalize_routes(value)]
        if not candidates:
            return None
        return min(candidates, key=rank_key)


class NeighborFilter(Operator):
    """Keep only routes learned from a fixed subset of neighbors.

    This is how "the shortest route out of those received from a specific
    subset of neighbors" (promise 2) is expressed: a filter feeding a Min.
    """

    type_tag = "neighbor-filter"

    def __init__(self, neighbors: Sequence[str]) -> None:
        self.neighbors = tuple(sorted(neighbors))

    def params(self) -> tuple:
        return (self.neighbors,)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        kept = [
            r
            for value in inputs
            for r in normalize_routes(value)
            if r.neighbor in self.neighbors
        ]
        return tuple(kept)


class CommunityFilter(Operator):
    """Keep only routes carrying (or lacking) a community tag.

    Covers the Section 4 challenge "operators that evaluate communities" —
    e.g. partial transit expressed as 'prefer routes tagged eu-peer'.
    """

    type_tag = "community-filter"

    def __init__(self, community: str, require: bool = True) -> None:
        self.community = community
        self.require = require

    def params(self) -> tuple:
        return (self.community, self.require)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        kept = [
            r
            for value in inputs
            for r in normalize_routes(value)
            if r.has_community(self.community) == self.require
        ]
        return tuple(kept)


class PrefixFilter(Operator):
    """Keep only routes for destinations covered by a prefix.

    The per-prefix scoping the paper's promises assume ("shortest-path
    routing to a given IP prefix", Section 1) expressed as a rule: a
    promise about 10.0.0.0/8 must not range over unrelated destinations.
    """

    type_tag = "prefix-filter"

    def __init__(self, prefix, exact: bool = False) -> None:
        self.prefix = prefix
        self.exact = exact

    def params(self) -> tuple:
        return (str(self.prefix), self.exact)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        kept = []
        for value in inputs:
            for r in normalize_routes(value):
                if self.exact:
                    if r.prefix == self.prefix:
                        kept.append(r)
                elif self.prefix.contains(r.prefix):
                    kept.append(r)
        return tuple(kept)


class ASAbsenceFilter(Operator):
    """Drop routes whose AS path traverses a given AS.

    Covers "check for the presence of particular ASes on the path"
    (Section 4) — the avoid-this-network policy.
    """

    type_tag = "as-absence-filter"

    def __init__(self, asn: str) -> None:
        self.asn = asn

    def params(self) -> tuple:
        return (self.asn,)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        kept = [
            r
            for value in inputs
            for r in normalize_routes(value)
            if not r.as_path.contains(self.asn)
        ]
        return tuple(kept)


class Union(Operator):
    """Merge route sets (deduplicating identical routes, order-stable)."""

    type_tag = "union"

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        seen = []
        for value in inputs:
            for route in normalize_routes(value):
                if route not in seen:
                    seen.append(route)
        return tuple(seen)


class ShorterOf(Operator):
    """Figure 2's combinator: emit the first input unless the second is
    shorter — i.e. "some route via N2..Nk unless N1 provides a shorter
    route" wires (min(r2..rk), r1) into this operator.

    Input order is (default, challenger).  The challenger wins only when
    strictly shorter.
    """

    type_tag = "shorter-of"

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        if len(inputs) != 2:
            raise ValueError("ShorterOf takes exactly (default, challenger)")
        default = normalize_routes(inputs[0])
        challenger = normalize_routes(inputs[1])
        best_default = min(default, key=rank_key) if default else None
        best_challenger = min(challenger, key=rank_key) if challenger else None
        if best_default is None:
            return best_challenger
        if best_challenger is None:
            return best_default
        if best_challenger.path_length < best_default.path_length:
            return best_challenger
        return best_default


class BGPBestPath(Operator):
    """The entire standard decision process as one black-box rule.

    "The entire BGP decision process could be modeled by a single
    black-box rule" (Section 2.1) — this is that rule, used when a network
    promises nothing finer-grained.
    """

    type_tag = "bgp-best-path"

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        candidates = [r for value in inputs for r in normalize_routes(value)]
        return decide(candidates)


class Composite(Operator):
    """A hierarchical operator hiding an inner route-flow graph.

    Addresses the paper's *structural privacy* challenge (Section 4): the
    composite's type tag reveals only "composite"; authorized neighbors
    may be shown the inner graph through the access-control layer, while
    others see a single opaque vertex.
    """

    type_tag = "composite"

    def __init__(self, inner_graph, input_names: Sequence[str], output_name: str,
                 label: str = "") -> None:
        self.inner = inner_graph
        self.input_names = tuple(input_names)
        self.output_name = output_name
        self.label = label

    def params(self) -> tuple:
        # Only the label is public; the inner structure is not part of the
        # committed operator identity visible to unauthorized parties.
        return (self.label,)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        if len(inputs) != len(self.input_names):
            raise ValueError(
                f"composite expects {len(self.input_names)} inputs, got {len(inputs)}"
            )
        assignment = dict(zip(self.input_names, inputs))
        values = self.inner.evaluate(assignment)
        return values[self.output_name]


class Const(Operator):
    """A constant route value (locally-originated routes enter this way)."""

    type_tag = "const"

    def __init__(self, value: Value) -> None:
        self.value = value

    def params(self) -> tuple:
        routes = normalize_routes(self.value)
        return (tuple(r.canonical() for r in routes),)

    def evaluate(self, inputs: Sequence[Value]) -> Value:
        if inputs:
            raise ValueError("Const takes no inputs")
        return self.value
