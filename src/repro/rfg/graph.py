"""Route-flow graphs: the paper's model of routing policy (Section 2.1).

A route-flow graph (RFG) is a bipartite DAG of *variable* vertices and
*operator* vertices.  "An edge (o, v) from an operator o to a variable v
indicates that v is computed by o; an edge (v, o) indicates that v is an
input to o" (Section 3.5).  Input variables correspond to incoming route
announcements; output variables to exported routes.

The graph both *executes* (the honest evaluation an AS performs) and
*describes itself* (the structural records PVR commits to, one per vertex:
predecessors, successors, payload — see :mod:`repro.pvr.vertex_info`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.rfg.operators import Operator, Value


class GraphError(Exception):
    """Raised on malformed graph construction or evaluation."""


@dataclass(frozen=True)
class VariableVertex:
    """A variable: holds a route (or route set) during evaluation.

    ``role`` is one of ``input`` (set by the environment: a route received
    from the named neighbor), ``internal``, or ``output`` (exported to the
    named neighbor).  ``party`` names the neighbor for input/output
    variables.
    """

    name: str
    role: str = "internal"
    party: Optional[str] = None

    def __post_init__(self) -> None:
        if self.role not in ("input", "internal", "output"):
            raise GraphError(f"invalid variable role {self.role!r}")
        if self.role in ("input", "output") and not self.party:
            raise GraphError(f"{self.role} variable {self.name!r} needs a party")


@dataclass(frozen=True)
class OperatorVertex:
    """An operator vertex: a rule applied to its input variables in order."""

    name: str
    operator: Operator
    inputs: Tuple[str, ...]
    output: str


class RouteFlowGraph:
    """A bipartite DAG of variables and operators.

    Construction is incremental (:meth:`add_input`, :meth:`add_operator`,
    …); :meth:`validate` checks well-formedness; :meth:`evaluate` runs the
    graph on an assignment of input variables.
    """

    def __init__(self) -> None:
        self._variables: Dict[str, VariableVertex] = {}
        self._operators: Dict[str, OperatorVertex] = {}
        self._producer: Dict[str, str] = {}  # variable -> operator computing it

    # -- construction ------------------------------------------------------

    def add_input(self, name: str, party: str) -> VariableVertex:
        return self._add_variable(VariableVertex(name=name, role="input", party=party))

    def add_internal(self, name: str) -> VariableVertex:
        return self._add_variable(VariableVertex(name=name, role="internal"))

    def add_output(self, name: str, party: str) -> VariableVertex:
        return self._add_variable(VariableVertex(name=name, role="output", party=party))

    def _add_variable(self, vertex: VariableVertex) -> VariableVertex:
        self._check_fresh(vertex.name)
        self._variables[vertex.name] = vertex
        return vertex

    def add_operator(
        self,
        name: str,
        operator: Operator,
        inputs: Sequence[str],
        output: str,
    ) -> OperatorVertex:
        """Wire ``operator`` to compute variable ``output`` from ``inputs``."""
        self._check_fresh(name)
        for var in list(inputs) + [output]:
            if var not in self._variables:
                raise GraphError(f"operator {name!r} references unknown variable {var!r}")
        if self._variables[output].role == "input":
            raise GraphError(f"operator {name!r} writes input variable {output!r}")
        if output in self._producer:
            raise GraphError(f"variable {output!r} already has a producer")
        vertex = OperatorVertex(
            name=name, operator=operator, inputs=tuple(inputs), output=output
        )
        self._operators[name] = vertex
        self._producer[output] = name
        return vertex

    def _check_fresh(self, name: str) -> None:
        if name in self._variables or name in self._operators:
            raise GraphError(f"duplicate vertex name {name!r}")

    # -- structure -----------------------------------------------------------

    def variables(self) -> Tuple[VariableVertex, ...]:
        return tuple(self._variables[n] for n in sorted(self._variables))

    def operators(self) -> Tuple[OperatorVertex, ...]:
        return tuple(self._operators[n] for n in sorted(self._operators))

    def variable(self, name: str) -> VariableVertex:
        try:
            return self._variables[name]
        except KeyError:
            raise GraphError(f"unknown variable {name!r}") from None

    def operator(self, name: str) -> OperatorVertex:
        try:
            return self._operators[name]
        except KeyError:
            raise GraphError(f"unknown operator {name!r}") from None

    def is_variable(self, name: str) -> bool:
        return name in self._variables

    def is_operator(self, name: str) -> bool:
        return name in self._operators

    def vertex_names(self) -> Tuple[str, ...]:
        return tuple(sorted(list(self._variables) + list(self._operators)))

    def inputs(self) -> Tuple[VariableVertex, ...]:
        return tuple(v for v in self.variables() if v.role == "input")

    def outputs(self) -> Tuple[VariableVertex, ...]:
        return tuple(v for v in self.variables() if v.role == "output")

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Vertices with an edge into ``name``."""
        if name in self._operators:
            return self._operators[name].inputs
        producer = self._producer.get(name)
        return (producer,) if producer else ()

    def successors(self, name: str) -> Tuple[str, ...]:
        """Vertices ``name`` has an edge to."""
        if name in self._operators:
            return (self._operators[name].output,)
        consumers = tuple(
            sorted(
                op.name
                for op in self._operators.values()
                if name in op.inputs
            )
        )
        return consumers

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check the graph is a well-formed DAG with producible outputs."""
        for vertex in self.variables():
            if vertex.role in ("internal", "output") and vertex.name not in self._producer:
                raise GraphError(f"variable {vertex.name!r} has no producer")
        self._topological_order()  # raises on cycles

    def _topological_order(self) -> List[str]:
        """Topological order over operator vertices."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

        def visit(op_name: str) -> None:
            status = state.get(op_name, 0)
            if status == 2:
                return
            if status == 1:
                raise GraphError(f"cycle through operator {op_name!r}")
            state[op_name] = 1
            for var in self._operators[op_name].inputs:
                producer = self._producer.get(var)
                if producer is not None:
                    visit(producer)
            state[op_name] = 2
            order.append(op_name)

        for op_name in sorted(self._operators):
            visit(op_name)
        return order

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, Value]) -> Dict[str, Value]:
        """Run the graph on input values; returns every variable's value.

        ``assignment`` maps input-variable names to route values; missing
        inputs default to None ("that neighbor announced nothing").
        Unknown names in the assignment are rejected — a typo here would
        otherwise silently verify the wrong thing.
        """
        self.validate()
        values: Dict[str, Value] = {}
        input_names = {v.name for v in self.inputs()}
        for name in assignment:
            if name not in input_names:
                raise GraphError(f"assignment names non-input variable {name!r}")
        for name in input_names:
            values[name] = assignment.get(name)
        for op_name in self._topological_order():
            op = self._operators[op_name]
            args = [values[var] for var in op.inputs]
            values[op.output] = op.operator.evaluate(args)
        return values

    def evaluate_output(self, assignment: Mapping[str, Value], output: str) -> Value:
        return self.evaluate(assignment)[output]

    # -- rendering ---------------------------------------------------------------

    def to_dot(self) -> str:
        """Render the graph in Graphviz dot syntax (variables as ellipses,
        operators as boxes) for documentation and debugging."""
        lines = ["digraph rfg {", "  rankdir=LR;"]
        for vertex in self.variables():
            style = {
                "input": 'shape=ellipse, style=filled, fillcolor="#dfefff"',
                "internal": "shape=ellipse",
                "output": 'shape=ellipse, style=filled, fillcolor="#e8ffe8"',
            }[vertex.role]
            label = vertex.name
            if vertex.party:
                label += f"\\n({vertex.party})"
            lines.append(f'  "{vertex.name}" [{style}, label="{label}"];')
        for op in self.operators():
            lines.append(
                f'  "{op.name}" [shape=box, label="{op.name}\\n'
                f'{op.operator.type_tag}"];'
            )
            for source in op.inputs:
                lines.append(f'  "{source}" -> "{op.name}";')
            lines.append(f'  "{op.name}" -> "{op.output}";')
        lines.append("}")
        return "\n".join(lines)
