"""Static verification of route-flow graphs against promises.

Two questions from the paper are answered here, both "based purely on
static inspection of the route-flow graph, tracing connections from input
variables to output variables" (Section 2.2):

1. **Does the visible graph implement the promise?**  (Section 4,
   "Minimum access", requirement (a).)  :func:`implements` runs a small
   abstract interpretation over the graph: each vertex is assigned a
   *descriptor* summarizing what its value provably is as a function of
   the input parties, and the output descriptor is checked against the
   promise's requirement.

2. **Are the access privileges sufficient to verify it?**  (Requirement
   (b).)  :func:`collectively_verifiable` checks that, under a given
   access-control policy, the participating neighbors can jointly see
   every operator on the input→output paths, each input's own party can
   see that input, and the recipient can see the output.

The descriptor algebra is sound but deliberately incomplete: an operator
the analysis does not understand yields an ``opaque`` descriptor, and
opaque graphs verify only the vacuous promise — mirroring the paper's
observation that an invisible derivation makes promises unverifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.promises.spec import (
    ExistentialPromise,
    NoLongerThanOthers,
    Promise,
    ShortestFromSubset,
    ShortestRoute,
    WithinKHops,
    YouGetWhatYoureGiven,
)
from repro.rfg.graph import RouteFlowGraph
from repro.rfg.operators import (
    ASAbsenceFilter,
    BGPBestPath,
    CommunityFilter,
    Existential,
    Min,
    NeighborFilter,
    PrefixFilter,
    ShorterOf,
    Union,
)


@dataclass(frozen=True)
class Descriptor:
    """What a vertex's value provably is.

    ``kind`` is one of:

    * ``routes`` — a set of routes announced by parties in ``parties``
      (possibly narrowed by filters; ``narrowed`` records whether some
      filter may have removed routes, which breaks minimality claims);
    * ``minsel`` — a single route of globally minimal AS-path length over
      the announcements of ``parties`` (None iff none announced);
    * ``anysel`` — a single route from ``parties``' announcements, present
      iff at least one exists, with no length guarantee;
    * ``opaque`` — derived from ``parties`` somehow; nothing guaranteed.
    """

    kind: str
    parties: FrozenSet[str]
    narrowed: bool = False


def _routes(parties, narrowed=False) -> Descriptor:
    return Descriptor(kind="routes", parties=frozenset(parties), narrowed=narrowed)


def describe_vertices(graph: RouteFlowGraph) -> Dict[str, Descriptor]:
    """Assign a descriptor to every variable vertex."""
    graph.validate()
    descriptors: Dict[str, Descriptor] = {}
    for vertex in graph.inputs():
        descriptors[vertex.name] = _routes({vertex.party})
    for op_name in graph._topological_order():
        op = graph.operator(op_name)
        args = [descriptors[name] for name in op.inputs]
        descriptors[op.output] = _apply(op.operator, args)
    return descriptors


def _apply(operator, args: List[Descriptor]) -> Descriptor:
    parties = frozenset().union(*(a.parties for a in args)) if args else frozenset()
    narrowed = any(a.narrowed for a in args)

    if isinstance(operator, Union):
        if all(a.kind in ("routes", "minsel", "anysel") for a in args):
            # selections re-enter as route sets; a selection is a narrowing
            selection = any(a.kind in ("minsel", "anysel") for a in args)
            return _routes(parties, narrowed=narrowed or selection)
        return Descriptor(kind="opaque", parties=parties)

    if isinstance(operator, NeighborFilter):
        if all(a.kind == "routes" for a in args):
            kept = parties & frozenset(operator.neighbors)
            # keeping exactly the routes of `kept` parties is not a
            # narrowing *within* those parties
            return _routes(kept, narrowed=narrowed)
        return Descriptor(kind="opaque", parties=parties)

    if isinstance(operator, (CommunityFilter, ASAbsenceFilter, PrefixFilter)):
        if all(a.kind == "routes" for a in args):
            return _routes(parties, narrowed=True)
        return Descriptor(kind="opaque", parties=parties)

    if isinstance(operator, Min):
        if all(a.kind == "routes" for a in args) and not narrowed:
            return Descriptor(kind="minsel", parties=parties)
        if all(a.kind in ("routes", "minsel") for a in args) and not narrowed:
            # min over (route sets | previous minima) is still the minimum
            # over the union of their parties
            return Descriptor(kind="minsel", parties=parties)
        return Descriptor(kind="anysel", parties=parties)

    if isinstance(operator, Existential):
        if all(a.kind in ("routes", "minsel", "anysel") for a in args) and not narrowed:
            return Descriptor(kind="anysel", parties=parties)
        return Descriptor(kind="opaque", parties=parties)

    if isinstance(operator, ShorterOf):
        if len(args) == 2 and not narrowed:
            a, b = args
            # shorter-of two minima (or a minimum and a raw announcement)
            # is the minimum over the combined parties
            if a.kind in ("minsel", "routes") and b.kind in ("minsel", "routes"):
                return Descriptor(kind="minsel", parties=parties)
        return Descriptor(kind="anysel", parties=parties)

    if isinstance(operator, BGPBestPath):
        if all(a.kind in ("routes", "minsel", "anysel") for a in args) and not narrowed:
            return Descriptor(kind="anysel", parties=parties)
        return Descriptor(kind="opaque", parties=parties)

    return Descriptor(kind="opaque", parties=parties)


def implements(
    graph: RouteFlowGraph, promise: Promise, output: str = "ro"
) -> bool:
    """Does a *correct* evaluation of ``graph`` always keep ``promise``?

    Sound: a True answer is a guarantee.  Incomplete: a False answer may
    just mean the analysis could not prove it.
    """
    descriptors = describe_vertices(graph)
    if output not in descriptors:
        return False
    desc = descriptors[output]
    all_parties = frozenset(v.party for v in graph.inputs())

    if isinstance(promise, YouGetWhatYoureGiven):
        return True
    if isinstance(promise, ShortestRoute):
        return desc.kind == "minsel" and desc.parties == all_parties
    if isinstance(promise, ShortestFromSubset):
        return desc.kind == "minsel" and desc.parties == frozenset(promise.subset)
    if isinstance(promise, WithinKHops):
        # the minimum is trivially within k of the best for every k >= 0
        return desc.kind == "minsel" and desc.parties == all_parties
    if isinstance(promise, ExistentialPromise):
        return (
            desc.kind in ("minsel", "anysel")
            and desc.parties == frozenset(promise.subset)
        )
    if isinstance(promise, NoLongerThanOthers):
        outputs = graph.outputs()
        descs = [descriptors[v.name] for v in outputs]
        return all(d.kind == "minsel" for d in descs) and len(
            {d.parties for d in descs}
        ) == 1
    return False


def reachable_vertices(graph: RouteFlowGraph, output: str) -> Tuple[str, ...]:
    """All vertices on some path from an input to ``output`` (inclusive)."""
    seen = set()
    frontier = [output]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(graph.predecessors(name))
    return tuple(sorted(seen))


def collectively_verifiable(
    graph: RouteFlowGraph,
    alpha,
    output: str = "ro",
) -> Tuple[bool, Tuple[str, ...]]:
    """Section 4 "Minimum access", requirement (b).

    ``alpha(network, vertex_name) -> bool`` is the access-control policy.
    The neighbors can collectively verify a promise about ``output`` when:

    * every *operator* on an input→output path is visible to at least one
      participating network,
    * every input variable is visible to its own party, and
    * the output variable is visible to its recipient.

    Returns ``(ok, blocked_vertices)`` where the second element lists the
    vertices failing their visibility requirement.
    """
    participants = sorted(
        {v.party for v in graph.inputs()} | {v.party for v in graph.outputs()}
    )
    blocked: List[str] = []
    for name in reachable_vertices(graph, output):
        if graph.is_operator(name):
            if not any(alpha(network, name) for network in participants):
                blocked.append(name)
        else:
            vertex = graph.variable(name)
            if vertex.role == "input" and not alpha(vertex.party, name):
                blocked.append(name)
            if vertex.role == "output" and not alpha(vertex.party, name):
                blocked.append(name)
    return (not blocked, tuple(sorted(blocked)))
