"""Builders for the canonical route-flow graphs of the paper.

These are the graphs of Figure 1 (single ``min`` operator), Section 3.2
(single ``existential`` operator) and Figure 2 (``min`` feeding a
``shorter-of``), parameterized by the neighbor set, plus a fluent
:class:`GraphBuilder` for assembling custom policies in the examples.

Naming convention matches the paper: inputs are ``r1 .. rk`` (one per
neighbor Ni), the output toward B is ``ro``, Figure 2's internal variable
is ``v``.
"""

from __future__ import annotations

from typing import Sequence

from repro.rfg.graph import RouteFlowGraph
from repro.rfg.operators import (
    Existential,
    Min,
    NeighborFilter,
    Operator,
    ShorterOf,
    Union,
)


def input_name(index: int) -> str:
    return f"r{index}"


def minimum_graph(neighbors: Sequence[str], recipient: str = "B") -> RouteFlowGraph:
    """Figure 1: ``ro = min(r1 .. rk)`` by AS-path length."""
    if not neighbors:
        raise ValueError("need at least one neighbor")
    graph = RouteFlowGraph()
    inputs = []
    for index, neighbor in enumerate(neighbors, start=1):
        graph.add_input(input_name(index), party=neighbor)
        inputs.append(input_name(index))
    graph.add_output("ro", party=recipient)
    graph.add_operator("min", Min(), inputs=inputs, output="ro")
    graph.validate()
    return graph


def existential_graph(neighbors: Sequence[str], recipient: str = "B") -> RouteFlowGraph:
    """Section 3.2: ``ro`` exists iff some ``ri`` exists."""
    if not neighbors:
        raise ValueError("need at least one neighbor")
    graph = RouteFlowGraph()
    inputs = []
    for index, neighbor in enumerate(neighbors, start=1):
        graph.add_input(input_name(index), party=neighbor)
        inputs.append(input_name(index))
    graph.add_output("ro", party=recipient)
    graph.add_operator("exists", Existential(), inputs=inputs, output="ro")
    graph.validate()
    return graph


def figure2_graph(neighbors: Sequence[str], recipient: str = "B") -> RouteFlowGraph:
    """Figure 2: "export some route via N2..Nk unless N1 provides a
    shorter route".

    ``v = min(r2 .. rk)``; ``ro = shorter-of(v, r1)``.
    """
    if len(neighbors) < 2:
        raise ValueError("Figure 2 needs at least two neighbors")
    graph = RouteFlowGraph()
    for index, neighbor in enumerate(neighbors, start=1):
        graph.add_input(input_name(index), party=neighbor)
    graph.add_internal("v")
    graph.add_output("ro", party=recipient)
    rest = [input_name(i) for i in range(2, len(neighbors) + 1)]
    graph.add_operator("min", Min(), inputs=rest, output="v")
    graph.add_operator(
        "unless-shorter", ShorterOf(), inputs=["v", "r1"], output="ro"
    )
    graph.validate()
    return graph


def subset_minimum_graph(
    neighbors: Sequence[str],
    subset: Sequence[str],
    recipient: str = "B",
) -> RouteFlowGraph:
    """Promise 2 in general form: min over routes from a declared subset.

    All neighbors feed a union; a neighbor filter keeps the subset; a min
    picks the winner.  The filter's parameters are part of its committed
    payload, so B can verify the min really ranged over the agreed subset.
    """
    if not neighbors:
        raise ValueError("need at least one neighbor")
    unknown = set(subset) - set(neighbors)
    if unknown:
        raise ValueError(f"subset names unknown neighbors: {sorted(unknown)}")
    graph = RouteFlowGraph()
    inputs = []
    for index, neighbor in enumerate(neighbors, start=1):
        graph.add_input(input_name(index), party=neighbor)
        inputs.append(input_name(index))
    graph.add_internal("all")
    graph.add_internal("eligible")
    graph.add_output("ro", party=recipient)
    graph.add_operator("union", Union(), inputs=inputs, output="all")
    graph.add_operator(
        "filter", NeighborFilter(subset), inputs=["all"], output="eligible"
    )
    graph.add_operator("min", Min(), inputs=["eligible"], output="ro")
    graph.validate()
    return graph


class GraphBuilder:
    """Fluent construction helper used by the examples.

    >>> g = (GraphBuilder()
    ...      .input("r1", party="N1")
    ...      .input("r2", party="N2")
    ...      .output("ro", party="B")
    ...      .op("min", Min(), ["r1", "r2"], "ro")
    ...      .build())
    """

    def __init__(self) -> None:
        self._graph = RouteFlowGraph()

    def input(self, name: str, party: str) -> "GraphBuilder":
        self._graph.add_input(name, party=party)
        return self

    def internal(self, name: str) -> "GraphBuilder":
        self._graph.add_internal(name)
        return self

    def output(self, name: str, party: str) -> "GraphBuilder":
        self._graph.add_output(name, party=party)
        return self

    def op(
        self,
        name: str,
        operator: Operator,
        inputs: Sequence[str],
        output: str,
    ) -> "GraphBuilder":
        self._graph.add_operator(name, operator, inputs=inputs, output=output)
        return self

    def build(self) -> RouteFlowGraph:
        self._graph.validate()
        return self._graph
