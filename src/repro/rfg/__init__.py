"""Route-flow graphs: the paper's verifiable model of routing policy.

Variables and operators form a bipartite DAG (Section 2.1); the canonical
graphs of Figure 1, Section 3.2 and Figure 2 are provided as builders;
:mod:`repro.rfg.static_check` answers whether a graph implements a given
promise and whether an access-control policy suffices to verify it; and
:mod:`repro.rfg.compiler` translates promises and route-map policies into
graphs.
"""

from repro.rfg.builder import (
    GraphBuilder,
    existential_graph,
    figure2_graph,
    input_name,
    minimum_graph,
    subset_minimum_graph,
)
from repro.rfg.compiler import CompileError, compile_policy, compile_promise
from repro.rfg.graph import (
    GraphError,
    OperatorVertex,
    RouteFlowGraph,
    VariableVertex,
)
from repro.rfg.operators import (
    ASAbsenceFilter,
    BGPBestPath,
    CommunityFilter,
    Composite,
    Const,
    Existential,
    Min,
    NeighborFilter,
    Operator,
    PrefixFilter,
    ShorterOf,
    Union,
    normalize_routes,
)
from repro.rfg.static_check import (
    Descriptor,
    collectively_verifiable,
    describe_vertices,
    implements,
    reachable_vertices,
)

__all__ = [
    "GraphBuilder",
    "existential_graph",
    "figure2_graph",
    "input_name",
    "minimum_graph",
    "subset_minimum_graph",
    "CompileError",
    "compile_policy",
    "compile_promise",
    "GraphError",
    "OperatorVertex",
    "RouteFlowGraph",
    "VariableVertex",
    "ASAbsenceFilter",
    "BGPBestPath",
    "CommunityFilter",
    "Composite",
    "Const",
    "Existential",
    "Min",
    "NeighborFilter",
    "Operator",
    "PrefixFilter",
    "ShorterOf",
    "Union",
    "normalize_routes",
    "Descriptor",
    "collectively_verifiable",
    "describe_vertices",
    "implements",
    "reachable_vertices",
]
